"""PCY: hash-based candidate pruning for pair counting ([PCY95]).

Park, Chen and Yu's observation: the first Apriori scan has spare cycles —
while counting 1-itemsets, also hash every pair occurring in each
transaction into a bucket array.  A pair can only be frequent if its
bucket's total count reaches the support bar, so the bitmap of frequent
buckets prunes 2-itemset candidates beyond what downward closure alone
manages.  Levels above 2 fall back to standard Apriori generation.

The paper under reproduction cites [PCY95] among the interchangeable
Phase II algorithms ("other classical association rule algorithms may be
used", §4.3.2); this backend plugs into the same
:class:`~repro.classic.itemsets.FrequentItemsets` interface.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, FrozenSet, Set, Tuple

from repro.classic.itemsets import FrequentItemsets, generate_candidates
from repro.classic.transactions import Item, TransactionSet

__all__ = ["pcy_itemsets"]

Itemset = FrozenSet[Item]


def _bucket(pair: Tuple[Item, Item], n_buckets: int) -> int:
    return hash(pair) % n_buckets


def pcy_itemsets(
    transactions: TransactionSet,
    min_support: float,
    max_size: int = 0,
    n_buckets: int = 4_096,
) -> FrequentItemsets:
    """Frequent itemsets via PCY; same contract as ``apriori_itemsets``.

    ``n_buckets`` trades memory for pruning power; with enough buckets the
    candidate set for level 2 approaches the true frequent pairs.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be a fraction in [0, 1]")
    if n_buckets < 1:
        raise ValueError("n_buckets must be positive")
    n = len(transactions)
    min_count = max(1, math.ceil(round(min_support * n, 9)))

    # Scan 1: 1-itemset counts + pair bucket counts.
    singleton_counts: Dict[Itemset, int] = {}
    buckets = [0] * n_buckets
    for transaction in transactions:
        items = sorted(transaction)
        for item in items:
            singleton = frozenset([item])
            singleton_counts[singleton] = singleton_counts.get(singleton, 0) + 1
        for pair in combinations(items, 2):
            buckets[_bucket(pair, n_buckets)] += 1

    frequent_buckets = [count >= min_count for count in buckets]
    counts: Dict[Itemset, int] = {
        itemset: count
        for itemset, count in singleton_counts.items()
        if count >= min_count
    }
    frequent_items: Set[Item] = {item for itemset in counts for item in itemset}

    if max_size == 1 or not counts:
        return FrequentItemsets(counts=counts, n_transactions=n, min_count=min_count)

    # Scan 2: pairs of frequent items whose bucket is frequent.
    pair_counts: Dict[Itemset, int] = {}
    for transaction in transactions:
        items = sorted(item for item in transaction if item in frequent_items)
        for pair in combinations(items, 2):
            if frequent_buckets[_bucket(pair, n_buckets)]:
                key = frozenset(pair)
                pair_counts[key] = pair_counts.get(key, 0) + 1
    frequent: Dict[Itemset, int] = {
        itemset: count for itemset, count in pair_counts.items() if count >= min_count
    }
    counts.update(frequent)

    # Levels >= 3: standard Apriori candidate generation.
    size = 3
    while frequent and (max_size == 0 or size <= max_size):
        candidates = generate_candidates(frequent.keys(), size)
        if not candidates:
            break
        level_counts = {candidate: 0 for candidate in candidates}
        for transaction in transactions:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    level_counts[candidate] += 1
        frequent = {
            itemset: count
            for itemset, count in level_counts.items()
            if count >= min_count
        }
        counts.update(frequent)
        size += 1

    return FrequentItemsets(counts=counts, n_transactions=n, min_count=min_count)
