"""Unified frequent-itemset mining interface across algorithms.

Section 4.3.2: "Although we have described Phase II using the a priori
algorithm, other classical association rule algorithms may be used."  The
available backends (all exact on their final output):

* ``apriori``  — level-wise scan/prune ([AS94]; the paper's default);
* ``pcy``      — hash-bucket pruning of pair candidates ([PCY95]);
* ``son``      — two-pass partition algorithm ([SON95]);
* ``toivonen`` — sampling with negative-border verification ([Toi96]);
  non-exact rounds are retried with progressively larger samples until
  exact (bounded), so the returned itemsets are always correct.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.classic.itemsets import FrequentItemsets, apriori_itemsets
from repro.classic.pcy import pcy_itemsets
from repro.classic.sampling import toivonen_itemsets
from repro.classic.son import son_itemsets
from repro.classic.transactions import TransactionSet

__all__ = ["ITEMSET_BACKENDS", "mine_itemsets"]


def _toivonen_exact(
    transactions: TransactionSet, min_support: float, max_size: int = 0
) -> FrequentItemsets:
    """Toivonen with retries: grow the sample until a round is exact."""
    sample_fraction = 0.25
    for attempt in range(4):
        result = toivonen_itemsets(
            transactions,
            min_support,
            max_size=max_size,
            sample_fraction=min(1.0, sample_fraction),
            seed=attempt,
        )
        if result.exact:
            return result.itemsets
        sample_fraction *= 2
    # Final fallback: the full "sample" (always exact).
    return toivonen_itemsets(
        transactions, min_support, max_size=max_size, sample_fraction=1.0
    ).itemsets


ITEMSET_BACKENDS: Dict[str, Callable[..., FrequentItemsets]] = {
    "apriori": apriori_itemsets,
    "pcy": pcy_itemsets,
    "son": son_itemsets,
    "toivonen": _toivonen_exact,
}


def mine_itemsets(
    transactions: TransactionSet,
    min_support: float,
    method: str = "apriori",
    max_size: int = 0,
) -> FrequentItemsets:
    """Mine frequent itemsets with the named backend."""
    try:
        backend = ITEMSET_BACKENDS[method]
    except KeyError:
        raise KeyError(
            f"unknown itemset backend {method!r}; "
            f"available: {sorted(ITEMSET_BACKENDS)}"
        ) from None
    return backend(transactions, min_support, max_size=max_size)
