"""Toivonen's sampling algorithm with negative-border verification ([Toi96]).

Mine a random sample at a *lowered* threshold, then make one full pass
counting both the sample's frequent itemsets and their **negative border**
(minimal itemsets not frequent in the sample whose proper subsets all
are).  If nothing on the border turns out globally frequent, the result is
provably exact; otherwise the miss is reported so the caller can rerun
(typically with a larger sample or lower sample threshold).

Deterministic given ``seed``.  One of the interchangeable Phase II
algorithms the paper points to (§4.3.2 cites [Toi96] alongside Apriori).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Set

import numpy as np

from repro.classic.itemsets import FrequentItemsets, apriori_itemsets
from repro.classic.transactions import Item, TransactionSet

__all__ = ["SamplingResult", "toivonen_itemsets", "negative_border"]

Itemset = FrozenSet[Item]


@dataclass
class SamplingResult:
    """Output of one sampling round.

    ``exact`` is True when no negative-border itemset was globally
    frequent — then ``itemsets`` equals the true frequent collection.
    ``border_misses`` lists the border itemsets that WERE globally
    frequent (evidence the sample under-represented them).
    """

    itemsets: FrequentItemsets
    exact: bool
    border_misses: List[Itemset]


def negative_border(frequent: Set[Itemset], universe: Set[Item]) -> Set[Itemset]:
    """Minimal itemsets outside ``frequent`` whose proper subsets are all in it.

    Computed level-wise: border singletons are the non-frequent items;
    border k-itemsets are Apriori-style joins of frequent (k-1)-itemsets
    that are not themselves frequent.
    """
    border: Set[Itemset] = {
        frozenset([item])
        for item in universe
        if frozenset([item]) not in frequent
    }
    max_size = max((len(itemset) for itemset in frequent), default=0)
    for size in range(2, max_size + 2):
        previous = [itemset for itemset in frequent if len(itemset) == size - 1]
        seen: Set[Itemset] = set()
        for i, a in enumerate(previous):
            for b in previous[i + 1 :]:
                candidate = a | b
                if len(candidate) != size or candidate in frequent:
                    continue
                if candidate in seen:
                    continue
                seen.add(candidate)
                if all(
                    frozenset(subset) in frequent
                    for subset in combinations(sorted(candidate), size - 1)
                ):
                    border.add(candidate)
    return border


def toivonen_itemsets(
    transactions: TransactionSet,
    min_support: float,
    max_size: int = 0,
    sample_fraction: float = 0.25,
    threshold_slack: float = 0.8,
    seed: int = 0,
) -> SamplingResult:
    """One round of Toivonen's algorithm.

    The sample is mined at ``threshold_slack * min_support`` (the lowered
    threshold that makes misses unlikely); the full pass then assigns
    exact counts.  Returned counts and the frequency bar refer to the FULL
    data, so downstream rule generation is unaffected by sampling.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be a fraction in [0, 1]")
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    if not 0.0 < threshold_slack <= 1.0:
        raise ValueError("threshold_slack must be in (0, 1]")
    n = len(transactions)
    min_count = max(1, math.ceil(round(min_support * n, 9)))
    if n == 0:
        empty = FrequentItemsets(counts={}, n_transactions=0, min_count=min_count)
        return SamplingResult(itemsets=empty, exact=True, border_misses=[])

    rng = np.random.default_rng(seed)
    sample_size = max(1, int(round(sample_fraction * n)))
    indices = rng.choice(n, size=sample_size, replace=False)
    sample = TransactionSet(transactions[int(i)] for i in indices)

    lowered = threshold_slack * min_support
    local = apriori_itemsets(sample, lowered, max_size=max_size)
    sample_frequent: Set[Itemset] = set(local.counts)
    border = negative_border(sample_frequent, set(transactions.items()))

    # Full pass: exact counts for candidates and their negative border.
    to_count = sample_frequent | border
    global_counts: Dict[Itemset, int] = {itemset: 0 for itemset in to_count}
    for transaction in transactions:
        for itemset in to_count:
            if itemset <= transaction:
                global_counts[itemset] += 1

    counts = {
        itemset: count
        for itemset, count in global_counts.items()
        if itemset in sample_frequent and count >= min_count
    }
    misses = sorted(
        (
            itemset
            for itemset in border
            if global_counts[itemset] >= min_count
        ),
        key=lambda itemset: (len(itemset), sorted(map(str, itemset))),
    )
    result = FrequentItemsets(counts=counts, n_transactions=n, min_count=min_count)
    return SamplingResult(itemsets=result, exact=not misses, border_misses=misses)
