"""Taxonomies over nominal values and multi-level association rules.

Section 3 of the paper: "a group may be a semantic generalization of a set
of data values (we can store one count for all cars rather than a separate
count for Hondas, Fords, etc.)" — the [SA95]/[HF95] approach for taming
large *nominal* domains, which the paper contrasts with its distance-based
approach for interval domains.  Implemented here so the nominal side of a
mixed relation can be generalized the standard way:

* :class:`Taxonomy` — an is-a forest over attribute values;
* :func:`extend_transactions` — the [SA95] encoding: each transaction also
  contains every ancestor of its items, so one Apriori run mines all
  levels at once;
* :func:`mine_multilevel_rules` — mining plus the two standard cleanups:
  dropping rules that relate a value to its own ancestor (vacuously true)
  and [SA95]'s R-interestingness filter (a rule is uninteresting when a
  mined generalization already predicts its support to within a factor R).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Tuple

from repro.classic.itemsets import apriori_itemsets
from repro.classic.rules import ClassicalRule, generate_rules
from repro.classic.transactions import Item, TransactionSet

__all__ = ["Taxonomy", "extend_transactions", "mine_multilevel_rules"]


class Taxonomy:
    """An is-a forest: each value has at most one parent.

    >>> taxonomy = Taxonomy({"honda": "car", "ford": "car", "car": "vehicle"})
    >>> taxonomy.ancestors("honda")
    ('car', 'vehicle')
    """

    def __init__(self, parents: Mapping[Hashable, Hashable]):
        self._parents: Dict[Hashable, Hashable] = dict(parents)
        for child, parent in self._parents.items():
            if child == parent:
                raise ValueError(f"value {child!r} is its own parent")
        # Reject cycles by walking every chain with a visited set.
        for start in self._parents:
            seen = {start}
            node = self._parents.get(start)
            while node is not None:
                if node in seen:
                    raise ValueError(f"taxonomy cycle through {node!r}")
                seen.add(node)
                node = self._parents.get(node)

    @classmethod
    def from_nested(cls, tree: Mapping[Hashable, object]) -> "Taxonomy":
        """Build from nested dicts/lists:

        >>> Taxonomy.from_nested(
        ...     {"vehicle": {"car": ["honda", "ford"], "bike": ["bmx"]}}
        ... ).parent("ford")
        'car'
        """
        parents: Dict[Hashable, Hashable] = {}

        def walk(node: object, parent: Optional[Hashable]) -> None:
            if isinstance(node, Mapping):
                for value, children in node.items():
                    if parent is not None:
                        parents[value] = parent
                    walk(children, value)
            elif isinstance(node, (list, tuple, set, frozenset)):
                for value in node:
                    walk(value, parent)
            else:
                if parent is not None:
                    parents[node] = parent

        walk(tree, None)
        return cls(parents)

    def parent(self, value: Hashable) -> Optional[Hashable]:
        """Immediate parent of ``value`` (``None`` for roots/unknown)."""
        return self._parents.get(value)

    def ancestors(self, value: Hashable) -> Tuple[Hashable, ...]:
        """All ancestors, nearest first (empty for roots/unknown values)."""
        chain: List[Hashable] = []
        node = self._parents.get(value)
        while node is not None:
            chain.append(node)
            node = self._parents.get(node)
        return tuple(chain)

    def is_ancestor(self, ancestor: Hashable, value: Hashable) -> bool:
        """Whether ``ancestor`` appears anywhere above ``value``."""
        return ancestor in self.ancestors(value)

    def roots(self) -> FrozenSet[Hashable]:
        """Values that have children but no parent."""
        values = set(self._parents) | set(self._parents.values())
        return frozenset(v for v in values if v not in self._parents)

    def depth(self, value: Hashable) -> int:
        """Number of ancestors above ``value`` (0 for roots)."""
        return len(self.ancestors(value))

    def __contains__(self, value: object) -> bool:
        return value in self._parents or value in self._parents.values()


def extend_transactions(
    transactions: TransactionSet, taxonomy: Taxonomy
) -> TransactionSet:
    """The [SA95] encoding: each item brings its ancestors along.

    Ancestor items share the original item's attribute, so ``item=honda``
    in a transaction implies ``item=car`` and ``item=vehicle`` items too.
    """
    extended = []
    for transaction in transactions:
        items = set(transaction)
        for item in transaction:
            for ancestor in taxonomy.ancestors(item.value):
                items.add(Item(item.attribute, ancestor))
        extended.append(items)
    return TransactionSet(extended)


def _crosses_levels(rule: ClassicalRule, taxonomy: Taxonomy) -> bool:
    """True when the rule relates a value to its own ancestor (vacuous)."""
    items = list(rule.items)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if a.attribute != b.attribute:
                continue
            if taxonomy.is_ancestor(a.value, b.value) or taxonomy.is_ancestor(
                b.value, a.value
            ):
                return True
    return False


def _one_step_generalizations(
    rule: ClassicalRule, taxonomy: Taxonomy
) -> List[Tuple[Item, Item, FrozenSet[Item], FrozenSet[Item]]]:
    """(old item, parent item, generalized antecedent, generalized consequent)."""
    results = []
    for side_name in ("antecedent", "consequent"):
        side: FrozenSet[Item] = getattr(rule, side_name)
        for item in side:
            parent_value = taxonomy.parent(item.value)
            if parent_value is None:
                continue
            parent_item = Item(item.attribute, parent_value)
            new_side = (side - {item}) | {parent_item}
            if side_name == "antecedent":
                results.append((item, parent_item, frozenset(new_side), rule.consequent))
            else:
                results.append((item, parent_item, rule.antecedent, frozenset(new_side)))
    return results


def mine_multilevel_rules(
    transactions: TransactionSet,
    taxonomy: Taxonomy,
    min_support: float,
    min_confidence: float,
    interest_ratio: Optional[float] = 1.1,
    max_size: int = 0,
) -> List[ClassicalRule]:
    """Mine rules across all taxonomy levels, with the standard cleanups.

    ``interest_ratio`` enables [SA95]'s R-interestingness filter: a rule is
    dropped when some mined one-step generalization predicts its support
    (scaled by the child/parent frequency ratio of the specialized item)
    to within the ratio — the specialized rule then carries no information
    beyond its generalization.  Pass ``None`` to keep every rule.
    """
    extended = extend_transactions(transactions, taxonomy)
    itemsets = apriori_itemsets(extended, min_support, max_size=max_size)
    rules = [
        rule
        for rule in generate_rules(itemsets, min_confidence)
        if not _crosses_levels(rule, taxonomy)
    ]
    if interest_ratio is None:
        return rules

    by_sides = {(rule.antecedent, rule.consequent): rule for rule in rules}
    n = len(extended)

    def item_support(item: Item) -> float:
        count = itemsets.counts.get(frozenset([item]))
        if count is None:
            return 0.0
        return count / n if n else 0.0

    interesting: List[ClassicalRule] = []
    for rule in rules:
        predicted = False
        for item, parent_item, g_antecedent, g_consequent in _one_step_generalizations(
            rule, taxonomy
        ):
            generalization = by_sides.get((g_antecedent, g_consequent))
            if generalization is None:
                continue
            parent_support = item_support(parent_item)
            if parent_support == 0:
                continue
            share = item_support(item) / parent_support
            expected = generalization.support * share
            if expected > 0 and rule.support < interest_ratio * expected:
                predicted = True
                break
        if not predicted:
            interesting.append(rule)
    return interesting
