"""Additional rule-interest measures for classical rules ([PS91]).

The paper frames rule mining around Piatetsky-Shapiro's treatment of rule
interest ("Rules are typically ranked by some measure of interest",
Section 1, citing [PS91]).  Beyond support and confidence this module
provides the standard complements:

* **lift** — confidence relative to the consequent's base rate; 1 means
  independence, >1 positive association;
* **leverage** — Piatetsky-Shapiro's own measure: P(AB) − P(A)P(B), the
  absolute support gained over independence (his axioms: 0 at
  independence, monotone in P(AB), anti-monotone in P(A) and P(B));
* **conviction** — P(A)P(not B) / P(A and not B); infinite for exact
  rules, 1 at independence.

All take the rule plus the consequent's support, so they are computable
from the same counts Apriori already has — no rescans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.classic.itemsets import FrequentItemsets
from repro.classic.rules import ClassicalRule

__all__ = ["RuleMeasures", "measure_rule", "measure_rules", "rank_by"]


@dataclass(frozen=True)
class RuleMeasures:
    """The full interest profile of one classical rule."""

    rule: ClassicalRule
    lift: float
    leverage: float
    conviction: float

    @property
    def support(self) -> float:
        """The rule's fractional support (pass-through)."""
        return self.rule.support

    @property
    def confidence(self) -> float:
        """The rule's confidence (pass-through)."""
        return self.rule.confidence


def measure_rule(rule: ClassicalRule, consequent_support: float) -> RuleMeasures:
    """Compute lift/leverage/conviction from the rule and P(consequent).

    ``consequent_support`` must be the fractional support of the rule's
    consequent itemset in the same data the rule was mined from.
    """
    if not 0.0 <= consequent_support <= 1.0:
        raise ValueError("consequent_support must be a fraction in [0, 1]")
    antecedent_support = (
        rule.support / rule.confidence if rule.confidence > 0 else 0.0
    )
    lift = (
        rule.confidence / consequent_support if consequent_support > 0 else math.inf
    )
    leverage = rule.support - antecedent_support * consequent_support
    if rule.confidence >= 1.0:
        conviction = math.inf
    else:
        conviction = (1.0 - consequent_support) / (1.0 - rule.confidence)
    return RuleMeasures(rule=rule, lift=lift, leverage=leverage, conviction=conviction)


def measure_rules(
    rules: Iterable[ClassicalRule], itemsets: FrequentItemsets
) -> List[RuleMeasures]:
    """Measure every rule against the itemset counts it was mined from.

    Consequent supports come straight from ``itemsets``; a consequent
    absent from the counts (possible when it is itself infrequent but the
    full rule was generated from a frequent superset — cannot happen with
    this package's generators, but guard anyway) raises ``KeyError``.
    """
    measured = []
    n = max(itemsets.n_transactions, 1)
    for rule in rules:
        count = itemsets.counts.get(rule.consequent)
        if count is None:
            raise KeyError(
                f"no support count for consequent {sorted(map(str, rule.consequent))}"
            )
        measured.append(measure_rule(rule, count / n))
    return measured


def rank_by(
    measured: Iterable[RuleMeasures], key: str = "leverage", top_k: Optional[int] = None
) -> List[RuleMeasures]:
    """Sort by one measure, descending; ``key`` in {lift, leverage, conviction,
    support, confidence}."""
    valid = ("lift", "leverage", "conviction", "support", "confidence")
    if key not in valid:
        raise ValueError(f"key must be one of {valid}")
    ordered = sorted(
        measured,
        key=lambda m: (-(getattr(m, key)), str(m.rule)),
    )
    return ordered[:top_k] if top_k else ordered
