"""Transaction representations for classical association-rule mining.

Classical association rules (Section 1 of the paper) are defined over
boolean tables, "often represented in an unnormalized form as a list of
tuple identifiers paired with a set of values".  An :class:`Item` here is an
``(attribute, value)`` equality predicate; a transaction is the set of items
a tuple satisfies.  Relations over arbitrary domains are itemized column by
column, which is exactly the [SA96] mapping the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.data.relation import Relation

__all__ = ["Item", "Transaction", "TransactionSet", "relation_to_transactions"]


@dataclass(frozen=True, order=True)
class Item:
    """An equality predicate ``attribute = value`` (or a bare market-basket item)."""

    attribute: str
    value: Hashable

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


Transaction = FrozenSet[Item]


class TransactionSet:
    """An ordered collection of transactions with itemization helpers."""

    def __init__(self, transactions: Iterable[Iterable[Item]]):
        self._transactions: List[Transaction] = [
            frozenset(transaction) for transaction in transactions
        ]

    @classmethod
    def from_baskets(
        cls, baskets: Iterable[Iterable[Hashable]], attribute: str = "item"
    ) -> "TransactionSet":
        """Market-basket input: each basket is a set of bare values."""
        return cls(
            [Item(attribute, value) for value in basket] for basket in baskets
        )

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self):
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    def items(self) -> FrozenSet[Item]:
        """The universe of items appearing in any transaction."""
        universe: set = set()
        for transaction in self._transactions:
            universe |= transaction
        return frozenset(universe)

    def count(self, itemset: FrozenSet[Item]) -> int:
        """Number of transactions containing every item of ``itemset``."""
        return sum(1 for transaction in self._transactions if itemset <= transaction)

    def support(self, itemset: FrozenSet[Item]) -> float:
        """Fractional support |C|/|r| (the [AIS93] definition)."""
        if not self._transactions:
            return 0.0
        return self.count(itemset) / len(self._transactions)


def relation_to_transactions(
    relation: Relation, attributes: Optional[Sequence[str]] = None
) -> TransactionSet:
    """Itemize a relation: one ``attribute=value`` item per cell.

    ``attributes`` defaults to every attribute.  Numeric values are kept
    as-is; mining equality items over dense interval data is exactly the
    failure mode the paper critiques, which makes this mapping useful for
    building the contrast experiments.
    """
    names: Tuple[str, ...] = tuple(attributes or relation.schema.names)
    columns = [relation.column(name) for name in names]
    transactions = []
    for i in range(len(relation)):
        transactions.append(
            frozenset(Item(name, column[i]) for name, column in zip(names, columns))
        )
    return TransactionSet(transactions)
