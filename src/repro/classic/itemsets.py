"""Frequent-itemset mining: the Apriori scan/prune loop of Section 3.

The paper's outline:

    Scan 1   count 1-itemsets
    REPEAT
      Prune i  discard candidates below the threshold s0
      Scan i   count candidate i-itemsets whose (i-1)-subsets are frequent

Candidate generation joins frequent (k-1)-itemsets sharing a (k-2)-prefix
and prunes candidates with any infrequent subset (downward closure, [AS94]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.classic.transactions import Item, TransactionSet

__all__ = ["FrequentItemsets", "apriori_itemsets", "generate_candidates"]

Itemset = FrozenSet[Item]


@dataclass
class FrequentItemsets:
    """All frequent itemsets with their absolute counts, grouped by size."""

    counts: Dict[Itemset, int]
    n_transactions: int
    min_count: int

    def support(self, itemset: Itemset) -> float:
        """Fractional support of ``itemset`` (0 with no transactions)."""
        if self.n_transactions == 0:
            return 0.0
        return self.counts[itemset] / self.n_transactions

    def by_size(self, size: int) -> List[Itemset]:
        """All frequent itemsets with exactly ``size`` items."""
        return [itemset for itemset in self.counts if len(itemset) == size]

    @property
    def max_size(self) -> int:
        """Size of the largest frequent itemset (0 if none)."""
        return max((len(itemset) for itemset in self.counts), default=0)

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, itemset: object) -> bool:
        return itemset in self.counts


def generate_candidates(frequent: Iterable[Itemset], size: int) -> Set[Itemset]:
    """Join frequent (size-1)-itemsets, then prune by downward closure."""
    previous = [tuple(sorted(itemset)) for itemset in frequent]
    previous_set = {frozenset(itemset) for itemset in previous}
    candidates: Set[Itemset] = set()
    by_prefix: Dict[Tuple[Item, ...], List[Tuple[Item, ...]]] = {}
    for itemset in previous:
        by_prefix.setdefault(itemset[:-1], []).append(itemset)
    for prefix, group in by_prefix.items():
        group.sort()
        for a_index in range(len(group)):
            for b_index in range(a_index + 1, len(group)):
                candidate = frozenset(group[a_index]) | {group[b_index][-1]}
                if len(candidate) != size:
                    continue
                if all(
                    frozenset(subset) in previous_set
                    for subset in combinations(sorted(candidate), size - 1)
                ):
                    candidates.add(candidate)
    return candidates


def apriori_itemsets(
    transactions: TransactionSet,
    min_support: float,
    max_size: int = 0,
) -> FrequentItemsets:
    """All itemsets with fractional support at least ``min_support``.

    ``max_size = 0`` means unbounded (stop when a level comes up empty, as
    in the paper's outline).  ``min_support`` is the fraction ``s0/|r|``;
    the absolute count bar is ``ceil(min_support * |r|)`` with a floor of 1
    so ``min_support = 0`` still requires at least one occurrence.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be a fraction in [0, 1]")
    n = len(transactions)
    # Round before ceil to dodge float artifacts on e.g. 0.3 * 10 == 2.9999....
    min_count = max(1, math.ceil(round(min_support * n, 9)))

    counts: Dict[Itemset, int] = {}

    # Scan 1: 1-itemset counts.
    level_counts: Dict[Itemset, int] = {}
    for transaction in transactions:
        for item in transaction:
            singleton = frozenset([item])
            level_counts[singleton] = level_counts.get(singleton, 0) + 1
    frequent = {
        itemset: count for itemset, count in level_counts.items() if count >= min_count
    }
    counts.update(frequent)

    size = 2
    while frequent and (max_size == 0 or size <= max_size):
        candidates = generate_candidates(frequent.keys(), size)
        if not candidates:
            break
        level_counts = {candidate: 0 for candidate in candidates}
        for transaction in transactions:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    level_counts[candidate] += 1
        frequent = {
            itemset: count
            for itemset, count in level_counts.items()
            if count >= min_count
        }
        counts.update(frequent)
        size += 1

    return FrequentItemsets(counts=counts, n_transactions=n, min_count=min_count)
