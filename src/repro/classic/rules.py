"""Classical association rules: support/confidence rule generation.

Given the frequent itemsets, every partition of a frequent itemset into a
non-empty antecedent and consequent whose confidence
``|C1 and C2| / |C1|`` meets the bar is emitted ([AIS93]/[AS94]).  These
rules — and their interest measures — are the baseline the paper argues is
unintuitive on interval data (Section 2, Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterator, List, Tuple

from repro.classic.itemsets import FrequentItemsets, apriori_itemsets
from repro.classic.transactions import Item, TransactionSet

__all__ = ["ClassicalRule", "generate_rules", "mine_classical_rules"]


@dataclass(frozen=True)
class ClassicalRule:
    """An implication ``antecedent => consequent`` with its interest measures."""

    antecedent: FrozenSet[Item]
    consequent: FrozenSet[Item]
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ValueError("antecedent and consequent must be non-empty")
        if self.antecedent & self.consequent:
            raise ValueError("antecedent and consequent must be disjoint")

    @property
    def items(self) -> FrozenSet[Item]:
        """Antecedent and consequent items as one set."""
        return self.antecedent | self.consequent

    def __str__(self) -> str:
        lhs = " & ".join(sorted(map(str, self.antecedent)))
        rhs = " & ".join(sorted(map(str, self.consequent)))
        return f"{lhs} => {rhs} (sup={self.support:.3f}, conf={self.confidence:.3f})"


def _splits(
    itemset: Tuple[Item, ...]
) -> Iterator[Tuple[FrozenSet[Item], FrozenSet[Item]]]:
    """All (antecedent, consequent) bipartitions with both sides non-empty."""
    universe = frozenset(itemset)
    for size in range(1, len(itemset)):
        for antecedent in combinations(itemset, size):
            antecedent_set = frozenset(antecedent)
            yield antecedent_set, universe - antecedent_set


def generate_rules(
    itemsets: FrequentItemsets, min_confidence: float
) -> List[ClassicalRule]:
    """Emit every rule meeting ``min_confidence`` from frequent itemsets.

    Support and confidence come from the stored counts, so no data rescans
    are needed (the antecedent of any frequent itemset is itself frequent
    by downward closure, hence counted).
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be a fraction in [0, 1]")
    rules: List[ClassicalRule] = []
    for itemset, count in itemsets.counts.items():
        if len(itemset) < 2:
            continue
        ordered = tuple(sorted(itemset))
        for antecedent, consequent in _splits(ordered):
            antecedent_count = itemsets.counts.get(antecedent)
            if antecedent_count is None or antecedent_count == 0:
                continue
            confidence = count / antecedent_count
            if confidence >= min_confidence:
                rules.append(
                    ClassicalRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=count / max(itemsets.n_transactions, 1),
                        confidence=confidence,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
    return rules


def mine_classical_rules(
    transactions: TransactionSet,
    min_support: float,
    min_confidence: float,
    max_size: int = 0,
) -> List[ClassicalRule]:
    """End-to-end classical mining: Apriori itemsets, then rule generation."""
    itemsets = apriori_itemsets(transactions, min_support, max_size=max_size)
    return generate_rules(itemsets, min_confidence)
