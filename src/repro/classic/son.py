"""SON: the two-pass partition algorithm ([SON95]).

Savasere, Omiecinski and Navathe: split the transactions into memory-sized
chunks, mine each chunk *completely* at the proportional local threshold
(any globally frequent itemset must be locally frequent in at least one
chunk), union the local results as global candidates, then make one final
counting pass to keep the true positives.  Exactly two scans regardless of
itemset size — attractive when the data does not fit in memory, which is
the same operating constraint the paper's adaptive trees target.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Set

from repro.classic.itemsets import FrequentItemsets, apriori_itemsets
from repro.classic.transactions import Item, TransactionSet

__all__ = ["son_itemsets"]

Itemset = FrozenSet[Item]


def son_itemsets(
    transactions: TransactionSet,
    min_support: float,
    max_size: int = 0,
    n_partitions: int = 4,
) -> FrequentItemsets:
    """Frequent itemsets via the partition algorithm.

    Exact: returns the same itemsets and counts as plain Apriori (property
    tests assert this).  ``n_partitions`` is capped at the transaction
    count; an empty input yields an empty result.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be a fraction in [0, 1]")
    if n_partitions < 1:
        raise ValueError("n_partitions must be positive")
    n = len(transactions)
    min_count = max(1, math.ceil(round(min_support * n, 9)))
    if n == 0:
        return FrequentItemsets(counts={}, n_transactions=0, min_count=min_count)

    n_partitions = min(n_partitions, n)
    chunk_size = math.ceil(n / n_partitions)

    # Pass 1: mine each chunk at the same fractional threshold.
    candidates: Set[Itemset] = set()
    all_transactions = list(transactions)
    for start in range(0, n, chunk_size):
        chunk = TransactionSet(all_transactions[start : start + chunk_size])
        local = apriori_itemsets(chunk, min_support, max_size=max_size)
        candidates.update(local.counts)

    # Pass 2: count every candidate globally, keep the truly frequent.
    global_counts: Dict[Itemset, int] = {candidate: 0 for candidate in candidates}
    for transaction in all_transactions:
        for candidate in candidates:
            if candidate <= transaction:
                global_counts[candidate] += 1
    counts = {
        itemset: count
        for itemset, count in global_counts.items()
        if count >= min_count
    }
    return FrequentItemsets(counts=counts, n_transactions=n, min_count=min_count)
