"""Classical association-rule mining — the paper's baseline and Phase II
substrate, with interchangeable itemset backends (Apriori, PCY, SON,
Toivonen sampling)."""

from repro.classic.backends import ITEMSET_BACKENDS, mine_itemsets
from repro.classic.itemsets import (
    FrequentItemsets,
    apriori_itemsets,
    generate_candidates,
)
from repro.classic.measures import RuleMeasures, measure_rule, measure_rules, rank_by
from repro.classic.pcy import pcy_itemsets
from repro.classic.sampling import SamplingResult, negative_border, toivonen_itemsets
from repro.classic.son import son_itemsets
from repro.classic.taxonomy import (
    Taxonomy,
    extend_transactions,
    mine_multilevel_rules,
)
from repro.classic.rules import ClassicalRule, generate_rules, mine_classical_rules
from repro.classic.transactions import (
    Item,
    Transaction,
    TransactionSet,
    relation_to_transactions,
)

__all__ = [
    "ITEMSET_BACKENDS",
    "mine_itemsets",
    "FrequentItemsets",
    "apriori_itemsets",
    "generate_candidates",
    "RuleMeasures",
    "measure_rule",
    "measure_rules",
    "rank_by",
    "pcy_itemsets",
    "SamplingResult",
    "negative_border",
    "toivonen_itemsets",
    "son_itemsets",
    "Taxonomy",
    "extend_transactions",
    "mine_multilevel_rules",
    "ClassicalRule",
    "generate_rules",
    "mine_classical_rules",
    "Item",
    "Transaction",
    "TransactionSet",
    "relation_to_transactions",
]
