"""Self-contained single-file HTML run reports (zero dependencies).

Renders everything the observability layer records — span waterfall,
metric tables, health status, benchmark trajectories — into **one** HTML
string with inline CSS and inline SVG: no external stylesheets, no
scripts, no fonts, no network fetches of any kind, so a report written on
an air-gapped production box opens anywhere a browser does.

Two entry points:

* :func:`render_run_report` — one mine's report (``repro mine --report
  out.html``): run metadata, health banner, span waterfall, metrics
  table, top rules.
* :func:`render_bench_report` — the perf trajectory dashboard (``repro
  bench report``): per-scenario wall-time sparklines, regression
  verdicts, and the recent-record table from every ``BENCH_*.json``.
* :func:`render_serve_page` — the rule server's landing page (``GET /``
  on ``repro serve``): published-snapshot status, health checks, and the
  live ``repro_serve_*`` metric table.

Charts follow fixed mark specs (2px lines, thin rounded bars, hairline
grid, muted ink for text; series colors never carry text) with a
light/dark palette switched purely by CSS ``prefers-color-scheme`` —
the SVG marks reference CSS custom properties, so one document serves
both modes.  Hover details ride native SVG ``<title>`` elements, which
need no JavaScript.
"""

from __future__ import annotations

import html
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "render_run_report",
    "render_bench_report",
    "render_serve_page",
    "write_report",
]

# Categorical palette (validated order — see the dataviz reference): each
# span category keeps a fixed slot so colors follow the entity across
# reports, never the rank.  Light / dark steps of the same hues.
_CATEGORY_SLOTS = ("phase1", "phase2", "streaming", "checkpoint", "mine", "cli")
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500", "#d55181", "#008300")
_OTHER_LIGHT, _OTHER_DARK = "#898781", "#898781"

_STATUS_COLOR = {"ok": "#0ca30c", "warn": "#fab219", "crit": "#d03b3b"}
_STATUS_ICON = {"ok": "●", "warn": "▲", "crit": "✖"}

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --cat-other: #898781;
  %LIGHT_SLOTS%
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    %DARK_SLOTS%
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 22px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 0 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 0 0 16px;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 10px 4px 0; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
thead th { color: var(--ink-3); font-weight: 500; border-bottom: 1px solid var(--grid); }
tbody tr { border-bottom: 1px solid var(--grid); }
tbody tr:last-child { border-bottom: none; }
.badge {
  display: inline-block; padding: 1px 10px; border-radius: 999px;
  border: 1px solid var(--border); font-size: 12px; font-weight: 600;
}
.kv { color: var(--ink-2); font-size: 13px; }
.kv b { color: var(--ink-1); font-weight: 600; }
.legend { color: var(--ink-2); font-size: 12px; margin-top: 8px; }
.legend .key {
  display: inline-block; width: 10px; height: 10px; border-radius: 3px;
  margin: 0 5px 0 14px; vertical-align: baseline;
}
.hero { font-size: 48px; font-weight: 600; line-height: 1.1; }
.hero-label { color: var(--ink-2); font-size: 13px; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--ink-3); }
svg .lbl { fill: var(--ink-2); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def _category_var(category: str) -> str:
    if category in _CATEGORY_SLOTS:
        return f"--cat-{category}"
    return "--cat-other"


def _css() -> str:
    light = " ".join(
        f"--cat-{name}: {color};"
        for name, color in zip(_CATEGORY_SLOTS, _SERIES_LIGHT)
    )
    dark = " ".join(
        f"--cat-{name}: {color};"
        for name, color in zip(_CATEGORY_SLOTS, _SERIES_DARK)
    )
    return _CSS.replace("%LIGHT_SLOTS%", light).replace("%DARK_SLOTS%", dark)


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}µs"


def _fmt_bytes(value: Optional[Union[int, float]]) -> str:
    if value is None:
        return "—"
    size = float(value)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024 or unit == "GB":
            return f"{size:.0f}{unit}" if unit == "B" else f"{size:.1f}{unit}"
        size /= 1024
    return f"{size:.1f}GB"  # pragma: no cover - unreachable


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, dict):
        return " ".join(f"{k}={_fmt_value(v)}" for k, v in value.items())
    return str(value)


def _page(title: str, subtitle: str, sections: Sequence[str]) -> str:
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_css()}</style>\n"
        "</head>\n<body>\n<main>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="sub">{_esc(subtitle)}</p>\n'
        f"{body}\n"
        "</main>\n</body>\n</html>\n"
    )


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------


def _status_badge(status: str) -> str:
    color = _STATUS_COLOR.get(status, _STATUS_COLOR["warn"])
    icon = _STATUS_ICON.get(status, "▲")
    return (
        f'<span class="badge"><span style="color:{color}">{icon}</span> '
        f"{_esc(status.upper())}</span>"
    )


def _health_section(report: Mapping[str, Any]) -> str:
    rows = []
    for check in report.get("checks", []):
        rows.append(
            "<tr>"
            f"<td>{_status_badge(str(check.get('status', 'warn')))}</td>"
            f"<td>{_esc(check.get('name', ''))}</td>"
            f'<td class="num">{_fmt_value(check.get("value", ""))}</td>'
            f'<td class="kv">{_esc(check.get("detail", ""))}</td>'
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>status</th><th>check</th>"
        '<th class="num">value</th><th>detail</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>"
        if rows
        else '<p class="kv">(no checks recorded)</p>'
    )
    overall = str(report.get("status", "ok"))
    return (
        '<section class="card"><h2>Health '
        f"{_status_badge(overall)}</h2>{table}</section>"
    )


def _slo_section(report: Mapping[str, Any]) -> str:
    """An SLO panel from an :meth:`~repro.obs.slo.SLOReport.to_dict`."""
    rows = []
    for result in report.get("results", []):
        status = str(result.get("status", "skip"))
        badge = (
            '<span class="badge">– SKIP</span>'
            if status == "skip"
            else _status_badge(status)
        )
        value = result.get("value")
        shown = "absent" if value is None else _fmt_value(value)
        rows.append(
            "<tr>"
            f"<td>{badge}</td>"
            f"<td>{_esc(result.get('rule', ''))}</td>"
            f'<td class="num">{_esc(shown)}</td>'
            f'<td class="kv">want {_esc(result.get("stat", "value"))}'
            f'({_esc(result.get("metric", ""))}) {_esc(result.get("op", "<="))} '
            f'{_esc(result.get("threshold", ""))}</td>'
            f'<td class="kv">{_esc(result.get("detail", ""))}</td>'
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>status</th><th>rule</th>"
        '<th class="num">value</th><th>objective</th><th>detail</th></tr>'
        f"</thead><tbody>{''.join(rows)}</tbody></table>"
        if rows
        else '<p class="kv">(no SLO rules evaluated)</p>'
    )
    overall = str(report.get("status", "ok"))
    return (
        '<section class="card"><h2>SLOs '
        f"{_status_badge(overall)}</h2>{table}</section>"
    )


def _normalize_span(record: Any) -> Dict[str, Any]:
    if isinstance(record, Mapping):
        return dict(record)
    return record.to_dict()


def _waterfall_section(spans: Iterable[Any], max_spans: int = 160) -> str:
    """The span waterfall: one thin bar per span on a shared time axis."""
    records = sorted(
        (_normalize_span(s) for s in spans), key=lambda r: r.get("start", 0.0)
    )
    records = [r for r in records if r.get("end", 0.0)]
    truncated = len(records) - max_spans
    if truncated > 0:
        records = records[:max_spans]
    if not records:
        return (
            '<section class="card"><h2>Span waterfall</h2>'
            '<p class="kv">(no spans recorded — run with tracing enabled)</p>'
            "</section>"
        )

    epoch = min(r["start"] for r in records)
    horizon = max(r["end"] for r in records) - epoch or 1e-9
    depths: Dict[int, int] = {}
    by_id = {r.get("span_id"): r for r in records}
    for r in records:
        depth, parent = 0, r.get("parent_id", 0)
        while parent and parent in by_id:
            depth += 1
            parent = by_id[parent].get("parent_id", 0)
        depths[id(r)] = depth

    width, label_w, row_h, bar_h = 960, 260, 20, 12
    plot_w = width - label_w - 90
    height = len(records) * row_h + 26
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'height="{height}" role="img" aria-label="span waterfall">'
    ]
    # Hairline grid: quarters of the horizon.
    for quarter in range(5):
        x = label_w + plot_w * quarter / 4
        parts.append(
            f'<line x1="{x:.1f}" y1="18" x2="{x:.1f}" y2="{height - 4}" '
            'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="12" text-anchor="middle">'
            f"{_esc(_fmt_seconds(horizon * quarter / 4))}</text>"
        )
    categories_seen: List[str] = []
    for index, r in enumerate(records):
        y = 22 + index * row_h
        x = label_w + (r["start"] - epoch) / horizon * plot_w
        w = max((r["end"] - r["start"]) / horizon * plot_w, 2.0)
        category = _category(str(r.get("name", "")))
        if category not in categories_seen:
            categories_seen.append(category)
        indent = min(depths[id(r)], 8) * 10
        name = str(r.get("name", "?"))
        seconds = r.get("seconds", r["end"] - r["start"])
        attrs = r.get("attributes") or {}
        detail = " ".join(f"{k}={v}" for k, v in list(attrs.items())[:6])
        parts.append(
            f'<text class="lbl" x="{indent + 4}" y="{y + bar_h - 2}">'
            f"{_esc(name[:34])}</text>"
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{bar_h}" '
            f'rx="4" fill="var({_category_var(category)})">'
            f"<title>{_esc(name)} — {_esc(_fmt_seconds(seconds))}"
            f"{_esc(' | ' + detail if detail else '')}</title></rect>"
        )
        parts.append(
            f'<text x="{x + w + 5:.1f}" y="{y + bar_h - 2}">'
            f"{_esc(_fmt_seconds(seconds))}</text>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="key" style="background:var({_category_var(c)})"></span>'
        f"{_esc(c)}"
        for c in categories_seen
    )
    note = (
        f'<p class="kv">(showing the first {max_spans} of '
        f"{max_spans + truncated} spans)</p>"
        if truncated > 0
        else ""
    )
    return (
        '<section class="card"><h2>Span waterfall</h2>'
        + "".join(parts)
        + f'<div class="legend">{legend}</div>{note}</section>'
    )


def _metrics_section(snapshot: Mapping[str, Any]) -> str:
    if not snapshot:
        return (
            '<section class="card"><h2>Metrics</h2>'
            '<p class="kv">(no metrics recorded — run with metrics enabled)</p>'
            "</section>"
        )
    rows = "".join(
        f"<tr><td>{_esc(name)}</td>"
        f'<td class="num">{_esc(_fmt_value(value))}</td></tr>'
        for name, value in sorted(snapshot.items())
    )
    return (
        '<section class="card"><h2>Metrics</h2>'
        "<table><thead><tr><th>metric</th>"
        '<th class="num">value</th></tr></thead>'
        f"<tbody>{rows}</tbody></table></section>"
    )


def _sparkline(
    values: Sequence[float],
    *,
    width: int = 280,
    height: int = 56,
    title: str = "",
) -> str:
    """A 2px series line with an end dot (surface ring) and min/max ink."""
    pad, right = 6, 46
    if not values:
        return ""
    lo, hi = min(values), max(values)
    spread = (hi - lo) or (abs(hi) or 1.0) * 0.1
    lo_y, hi_y = height - pad, pad

    def point(i: int, v: float) -> str:
        n = max(len(values) - 1, 1)
        x = pad + (width - pad - right) * (i / n)
        y = lo_y - (v - lo) / spread * (lo_y - hi_y)
        return f"{x:.1f},{y:.1f}"

    pts = [point(i, v) for i, v in enumerate(values)]
    last_x, last_y = pts[-1].split(",")
    area = (
        f'<polygon points="{pad},{lo_y} {" ".join(pts)} {last_x},{lo_y}" '
        'fill="var(--cat-phase1)" opacity="0.1"/>'
    )
    line = (
        f'<polyline points="{" ".join(pts)}" fill="none" '
        'stroke="var(--cat-phase1)" stroke-width="2" '
        'stroke-linejoin="round" stroke-linecap="round"/>'
    )
    dot = (
        f'<circle cx="{last_x}" cy="{last_y}" r="6" fill="var(--surface-1)"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="4" fill="var(--cat-phase1)"/>'
    )
    label = (
        f'<text class="lbl" x="{float(last_x) + 9:.1f}" y="{float(last_y) + 4:.1f}">'
        f"{_esc(_fmt_seconds(values[-1]))}</text>"
    )
    hover = f"<title>{_esc(title)}</title>" if title else ""
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="{_esc(title or "trend")}">{hover}'
        f'<line x1="{pad}" y1="{lo_y}" x2="{width - right}" y2="{lo_y}" '
        'stroke="var(--baseline)" stroke-width="1"/>'
        f"{area}{line}{dot}{label}</svg>"
    )


def _rules_section(result: Any, top_k: int = 10) -> str:
    rules = list(getattr(result, "rules", []) or [])
    if not rules:
        return ""
    try:
        from repro.report.describe import describe_rule

        described = [describe_rule(rule) for rule in rules[:top_k]]
    except Exception:
        described = [str(rule) for rule in rules[:top_k]]
    rows = "".join(f"<tr><td><code>{_esc(text)}</code></td></tr>" for text in described)
    more = (
        f'<p class="kv">(+{len(rules) - top_k} more rules)</p>'
        if len(rules) > top_k
        else ""
    )
    return (
        f'<section class="card"><h2>Rules (top {min(top_k, len(rules))})</h2>'
        f"<table><tbody>{rows}</tbody></table>{more}</section>"
    )


def _meta_section(metadata: Mapping[str, Any], hero: Optional[str]) -> str:
    pairs = " · ".join(
        f"{_esc(key)} <b>{_esc(value)}</b>" for key, value in metadata.items()
    )
    hero_html = (
        f'<div class="hero">{_esc(hero)}</div>'
        '<div class="hero-label">rules mined</div>'
        if hero is not None
        else ""
    )
    return f'<section class="card">{hero_html}<p class="kv">{pairs}</p></section>'


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def render_run_report(
    *,
    title: str = "repro run report",
    result: Any = None,
    spans: Optional[Iterable[Any]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    health: Optional[Mapping[str, Any]] = None,
    slo: Optional[Mapping[str, Any]] = None,
    metadata: Optional[Mapping[str, Any]] = None,
) -> str:
    """One mine's report as a self-contained HTML document string.

    ``spans`` accepts :class:`~repro.obs.trace.Span` objects or their
    ``to_dict`` rows; ``metrics`` is a registry
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; ``health`` a
    :meth:`~repro.obs.health.HealthReport.to_dict`; ``slo`` an
    :meth:`~repro.obs.slo.SLOReport.to_dict`; ``metadata`` free-form
    key/value pairs for the header card.  Every argument is optional —
    missing sections render an explanatory placeholder, never an error.
    """
    generated = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M:%SZ")
    meta = dict(metadata or {})
    hero = None
    if result is not None:
        rules = list(getattr(result, "rules", []) or [])
        hero = str(len(rules))
        meta.setdefault("frequency bar", getattr(result, "frequency_count", "?"))
        phase2 = getattr(result, "phase2", None)
        if phase2 is not None:
            meta.setdefault("clusters", getattr(phase2, "n_clusters", "?"))
            meta.setdefault("cliques", getattr(phase2, "n_cliques", "?"))
            engine = getattr(phase2, "engine", "")
            if engine:
                meta.setdefault("phase2 engine", engine)
    sections = [_meta_section(meta, hero)]
    if health is not None:
        sections.append(_health_section(health))
    if slo is not None:
        sections.append(_slo_section(slo))
    sections.append(_waterfall_section(spans or []))
    sections.append(_metrics_section(metrics or {}))
    if result is not None:
        sections.append(_rules_section(result))
    return _page(title, f"generated {generated} · self-contained, no external assets", sections)


def _bench_scenario_section(
    scenario: str, records: Sequence[Any], comparison: Optional[Any]
) -> str:
    dicts = [r.to_dict() if hasattr(r, "to_dict") else dict(r) for r in records]
    walls = [float(r.get("wall_seconds", 0.0)) for r in dicts]
    spark = _sparkline(
        walls,
        title=f"{scenario}: wall seconds over {len(walls)} runs",
    )
    badge = ""
    verdict_lines = ""
    if comparison is not None:
        state = comparison.to_dict() if hasattr(comparison, "to_dict") else dict(comparison)
        label = str(state.get("status", "no-baseline"))
        status = {"regression": "crit", "improvement": "ok", "noise": "ok"}.get(
            label, "warn"
        )
        color = _STATUS_COLOR[status]
        icon = _STATUS_ICON[status]
        badge = (
            f'<span class="badge"><span style="color:{color}">{icon}</span> '
            f"{_esc(label)}</span>"
        )
        details = []
        for verdict in state.get("verdicts", []):
            ratio = verdict.get("ratio")
            suffix = f" ({(ratio - 1) * 100:+.1f}% vs baseline)" if ratio else ""
            details.append(
                f"{_esc(verdict.get('quantity', '?'))}: "
                f"{_esc(verdict.get('classification', '?'))}{_esc(suffix)}"
            )
        if details:
            verdict_lines = f'<p class="kv">{" · ".join(details)}</p>'
    rows = []
    for r in dicts[-8:]:
        rows.append(
            "<tr>"
            f"<td>{_esc(r.get('started_at', '?'))}</td>"
            f"<td><code>{_esc(str(r.get('git_sha', '?'))[:12])}</code>"
            f"{'*' if r.get('git_dirty') else ''}</td>"
            f'<td class="num">{_esc(_fmt_seconds(float(r.get("wall_seconds", 0.0))))}</td>'
            f'<td class="num">{_esc(_fmt_bytes(r.get("peak_rss_bytes")))}</td>'
            f'<td class="kv">py {_esc(r.get("environment", {}).get("python", "?"))} '
            f'numpy {_esc(r.get("environment", {}).get("numpy", "?"))}</td>'
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>when</th><th>commit</th>"
        '<th class="num">wall</th><th class="num">peak RSS</th>'
        "<th>environment</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    return (
        f'<section class="card"><h2>{_esc(scenario)} {badge}</h2>'
        f"{verdict_lines}{spark}{table}</section>"
    )


def render_bench_report(
    trajectories: Mapping[str, Sequence[Any]],
    comparisons: Optional[Mapping[str, Any]] = None,
    *,
    title: str = "repro benchmark trajectories",
) -> str:
    """The ``BENCH_*.json`` dashboard as a self-contained HTML string.

    ``trajectories`` maps scenario name to its
    :class:`~repro.obs.bench.BenchRecord` list (oldest first);
    ``comparisons`` optionally maps scenario name to a
    :class:`~repro.obs.regress.Comparison` whose status is shown as the
    scenario's badge.
    """
    generated = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M:%SZ")
    comparisons = dict(comparisons or {})
    sections = []
    if not trajectories:
        sections.append(
            '<section class="card"><p class="kv">No BENCH_*.json trajectory '
            "files found — run <code>repro bench run --scenario NAME</code> "
            "first.</p></section>"
        )
    for scenario in sorted(trajectories):
        sections.append(
            _bench_scenario_section(
                scenario, list(trajectories[scenario]), comparisons.get(scenario)
            )
        )
    return _page(
        title,
        f"generated {generated} · {len(trajectories)} scenario(s) · "
        "self-contained, no external assets",
        sections,
    )


def render_serve_page(
    *,
    status: Mapping[str, Any],
    metrics: Optional[Mapping[str, Any]] = None,
    uptime_seconds: float = 0.0,
    title: str = "repro rule server",
) -> str:
    """The rule server's ``GET /`` landing page as a self-contained document.

    ``status`` is a :meth:`~repro.serve.publisher.SnapshotPublisher.to_dict`
    (snapshot version, rule count, created-at, partitions, health report);
    ``metrics`` a registry snapshot filtered to whatever the caller wants
    shown (the server passes the full snapshot).  Renders the same
    light/dark, zero-asset HTML as the run and bench reports, so the page
    works from an air-gapped box with nothing but a browser.
    """
    generated = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M:%SZ")
    version = status.get("version", 0)
    n_rules = status.get("n_rules", 0)
    partitions = status.get("partitions") or ()
    meta: Dict[str, Any] = {
        "snapshot version": version if version else "(none published)",
        "rules": n_rules,
        "uptime": _fmt_seconds(max(float(uptime_seconds), 0.0)),
    }
    if status.get("created_at"):
        meta["compiled at"] = status["created_at"]
    if partitions:
        meta["partitions"] = ", ".join(str(p) for p in partitions)
    sections = [_meta_section(meta, str(n_rules))]
    health = status.get("health")
    if health is not None:
        sections.append(_health_section(health))
    slo = status.get("slo")
    if slo is not None:
        sections.append(_slo_section(slo))
    serve_metrics = {
        name: value
        for name, value in (metrics or {}).items()
        if str(name).startswith("repro_serve_")
    } or dict(metrics or {})
    sections.append(_metrics_section(serve_metrics))
    sections.append(
        '<section class="card"><h2>Endpoints</h2><p class="kv">'
        "<code>GET /rules?targets=...&amp;min_degree=...</code> — query the "
        "published snapshot · <code>GET /healthz</code> — health JSON · "
        "<code>GET /metrics</code> — Prometheus text format</p></section>"
    )
    return _page(
        title,
        f"generated {generated} · snapshot v{version} · "
        "self-contained, no external assets",
        sections,
    )


def write_report(document: str, path: Union[str, Path]) -> Path:
    """Write an HTML document produced by the renderers above to ``path``.

    The write is atomic (temp file + rename) so an interrupt mid-write
    never leaves a truncated report behind.
    """
    import os

    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(document)
    os.replace(tmp, target)
    return target
