"""Fixed-width text tables for the benchmark harness.

Every experiment in ``benchmarks/`` prints the rows/series the paper
reports through this renderer, so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["Table"]


class Table:
    """A minimal fixed-width table with a title and typed-ish cells."""

    def __init__(self, title: str, headers: Sequence[str]):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers: List[str] = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        """The table as an aligned multi-line string."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Iterable[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        separator = "-+-".join("-" * width for width in widths)
        body = [line(self.headers), separator]
        body.extend(line(row) for row in self.rows)
        underline = "=" * max(len(self.title), len(separator))
        return "\n".join([self.title, underline] + body)

    def print(self) -> None:
        """Render to stdout, padded with blank lines."""
        print()
        print(self.render())
        print()
