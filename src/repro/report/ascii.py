"""Plain-text sketches of columns and cluster layouts.

Terminal-friendly summaries for the CLI and quick interactive inspection:

* :func:`histogram` — a fixed-width bar chart of a numeric column;
* :func:`cluster_strip` — clusters drawn as spans on one axis, making the
  Figure 1 situation (groups vs gaps) visible at a glance.

Everything is pure text; no plotting dependencies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["histogram", "cluster_strip"]

_BAR = "#"


def histogram(
    values: Sequence[float], bins: int = 10, width: int = 40
) -> str:
    """A left-to-right bar chart: one row per bin, bars scaled to ``width``.

    >>> print(histogram([1, 1, 2, 9], bins=2, width=4))   # doctest: +SKIP
    [1, 5)  ### 3
    [5, 9]  #   1
    """
    if bins < 1:
        raise ValueError("bins must be at least 1")
    if width < 1:
        raise ValueError("width must be at least 1")
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return "(no values)"
    if not np.all(np.isfinite(data)):
        raise ValueError("histogram of non-finite values is undefined")
    counts, edges = np.histogram(data, bins=bins)
    peak = max(int(counts.max()), 1)
    label_pairs: List[Tuple[str, int]] = []
    for i, count in enumerate(counts):
        closer = "]" if i == len(counts) - 1 else ")"
        label_pairs.append(
            (f"[{edges[i]:.4g}, {edges[i + 1]:.4g}{closer}", int(count))
        )
    label_width = max(len(label) for label, _ in label_pairs)
    lines = []
    for label, count in label_pairs:
        bar = _BAR * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)} {count}")
    return "\n".join(lines)


def cluster_strip(
    spans: Sequence[Tuple[float, float]],
    lo: float = None,
    hi: float = None,
    width: int = 60,
) -> str:
    """Clusters as bracketed spans on a shared axis.

    ``spans`` are (lo, hi) pairs (e.g. cluster bounding boxes on one
    attribute).  Each span renders on its own row against a common scale,
    with an axis line underneath — gaps between clusters are as visible as
    the clusters themselves.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    if not spans:
        return "(no clusters)"
    for span_lo, span_hi in spans:
        if span_lo > span_hi:
            raise ValueError(f"empty span ({span_lo}, {span_hi})")
    axis_lo = min(s[0] for s in spans) if lo is None else lo
    axis_hi = max(s[1] for s in spans) if hi is None else hi
    if axis_hi == axis_lo:
        axis_hi = axis_lo + 1.0
    scale = (width - 1) / (axis_hi - axis_lo)

    def column_of(value: float) -> int:
        return int(round((value - axis_lo) * scale))

    lines = []
    for span_lo, span_hi in sorted(spans):
        start = max(column_of(span_lo), 0)
        end = min(column_of(span_hi), width - 1)
        row = [" "] * width
        if end == start:
            row[start] = "|"
        else:
            row[start] = "["
            row[end] = "]"
            for i in range(start + 1, end):
                row[i] = "="
        lines.append("".join(row) + f"  [{span_lo:.4g}, {span_hi:.4g}]")
    axis = "-" * width
    labels = f"{axis_lo:<.4g}".ljust(width - 8) + f"{axis_hi:>.4g}"
    lines.append(axis)
    lines.append(labels)
    return "\n".join(lines)
