"""Human-readable descriptions of clusters and rules.

Section 7.2: "A cluster can be described by its centroid, but we have found
that this is not the most meaningful description. ... we have chosen to
describe a cluster by its smallest bounding box."  The formatters here
render bounding boxes, the full rule syntax of Dfn 5.3, and compact
summaries of mining results.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.cluster import Cluster
from repro.core.miner import DARResult
from repro.core.rules import DistanceRule

__all__ = ["describe_cluster", "describe_rule", "describe_result", "format_rules"]


def describe_cluster(cluster: Cluster, precision: int = 6) -> str:
    """``partition[lo, hi] x ... (n=..., d=...)`` bounding-box description."""
    lo, hi = cluster.bounding_box()
    spans = []
    for i, name in enumerate(cluster.partition.attributes):
        spans.append(f"{name} in [{lo[i]:.{precision}g}, {hi[i]:.{precision}g}]")
    body = " x ".join(spans)
    return f"{body} (n={cluster.n}, diameter={cluster.diameter:.{precision}g})"


def describe_rule(rule: DistanceRule, precision: int = 4) -> str:
    """Full Dfn 5.3 syntax with per-consequent degrees."""
    lhs = " AND ".join(describe_cluster(c, precision) for c in rule.antecedent)
    rhs = " AND ".join(describe_cluster(c, precision) for c in rule.consequent)
    extras = [f"degree={rule.degree:.{precision}g}"]
    if rule.support_count is not None:
        extras.append(f"support={rule.support_count}")
    return f"IF {lhs} THEN {rhs} [{', '.join(extras)}]"


def format_rules(rules: Iterable[DistanceRule], limit: int = 0) -> str:
    """One rule per line, strongest (smallest degree) first."""
    ordered = sorted(rules, key=lambda rule: (rule.degree, str(rule)))
    if limit:
        ordered = ordered[:limit]
    return "\n".join(describe_rule(rule) for rule in ordered)


def describe_result(result: DARResult) -> str:
    """A run summary: thresholds, cluster counts, graph shape, top rules."""
    lines: List[str] = []
    lines.append("Distance-based association rule mining result")
    lines.append(f"  frequency threshold (count): {result.frequency_count}")
    for name in sorted(result.density_thresholds):
        lines.append(
            f"  partition {name}: d0={result.density_thresholds[name]:.4g}, "
            f"D0={result.degree_thresholds[name]:.4g}, "
            f"clusters={len(result.all_clusters.get(name, []))}, "
            f"frequent={len(result.frequent_clusters.get(name, []))}"
        )
    if result.graph is not None:
        lines.append(
            f"  clustering graph: {result.graph.n_nodes} nodes, "
            f"{result.graph.n_edges} edges, "
            f"{result.phase2.n_non_trivial_cliques} non-trivial cliques"
        )
    lines.append(f"  rules found: {len(result.rules)}")
    top = result.rules_sorted()[:10]
    for rule in top:
        lines.append(f"    {describe_rule(rule)}")
    return "\n".join(lines)
