"""JSON export of mining results.

Serializes clusters (bounding box, centroid, size, diameter) and rules
(sides, degree, per-consequent degrees, optional support) into plain JSON
structures — the integration surface for dashboards or downstream jobs.
Everything is converted to built-in types so ``json.dumps`` works without
custom encoders.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.birch.birch import Phase1Stats
from repro.core.cluster import Cluster
from repro.core.miner import DARResult, Phase2Stats
from repro.core.rules import DistanceRule

__all__ = [
    "cluster_to_dict",
    "rule_to_dict",
    "phase1_stats_to_dict",
    "phase2_stats_to_dict",
    "result_to_dict",
    "result_to_json",
]


def cluster_to_dict(cluster: Cluster) -> Dict:
    """JSON-ready dict describing one cluster."""
    lo, hi = cluster.bounding_box()
    return {
        "uid": cluster.uid,
        "partition": cluster.partition.name,
        "attributes": list(cluster.partition.attributes),
        "n": cluster.n,
        "diameter": float(cluster.diameter),
        "centroid": [float(v) for v in cluster.centroid],
        "bounding_box": {
            "lo": [float(v) for v in lo],
            "hi": [float(v) for v in hi],
        },
    }


def rule_to_dict(rule: DistanceRule) -> Dict:
    """JSON-ready dict describing one rule (clusters by uid)."""
    return {
        "antecedent": [cluster.uid for cluster in rule.antecedent],
        "consequent": [cluster.uid for cluster in rule.consequent],
        "degree": float(rule.degree),
        "degrees": {str(uid): float(d) for uid, d in rule.degrees.items()},
        "support_count": rule.support_count,
    }


def phase1_stats_to_dict(stats: Phase1Stats) -> Dict:
    """One partition's Phase I diagnostics as built-in types."""
    out = {
        "points_inserted": stats.points_inserted,
        "rebuilds": stats.rebuilds,
        "threshold_history": [float(t) for t in stats.threshold_history],
        "pages_out": stats.pages_out,
        "paged_entries": stats.paged_entries,
        "seconds": float(stats.seconds),
        "final_entry_count": stats.final_entry_count,
        "final_tree_bytes": stats.final_tree_bytes,
    }
    if stats.scan is not None:
        out["scan"] = {
            "points": stats.scan.points,
            "entries": stats.scan.entries,
            "absorbed": stats.scan.absorbed,
            "new_entries": stats.scan.new_entries,
            "splits": stats.scan.splits,
            "rebuilds": stats.scan.rebuilds,
            "batches": stats.scan.batches,
            "flushes": stats.scan.flushes,
            "seconds_total": float(stats.scan.seconds_total),
        }
    return out


def phase2_stats_to_dict(stats: Phase2Stats) -> Dict:
    """Phase II diagnostics, including the per-stage timing breakdown."""
    return {
        "seconds": float(stats.seconds),
        "engine": stats.engine,
        "n_clusters": stats.n_clusters,
        "n_frequent_clusters": stats.n_frequent_clusters,
        "n_edges": stats.n_edges,
        "n_cliques": stats.n_cliques,
        "n_non_trivial_cliques": stats.n_non_trivial_cliques,
        "comparisons": stats.comparisons,
        "comparisons_skipped": stats.comparisons_skipped,
        "n_rules": stats.n_rules,
        "stage_seconds": {
            name: float(value) for name, value in stats.stage_breakdown().items()
        },
        "events": [str(event) for event in stats.events],
    }


def result_to_dict(result: DARResult) -> Dict:
    """Whole-run export: thresholds, clusters (by partition), rules, stats."""
    return {
        "frequency_count": result.frequency_count,
        "density_thresholds": {
            name: float(value) for name, value in result.density_thresholds.items()
        },
        "degree_thresholds": {
            name: float(value) for name, value in result.degree_thresholds.items()
        },
        "clusters": {
            name: [cluster_to_dict(cluster) for cluster in clusters]
            for name, clusters in result.frequent_clusters.items()
        },
        "rules": [rule_to_dict(rule) for rule in result.rules_sorted()],
        "phase1": {
            name: phase1_stats_to_dict(stats)
            for name, stats in result.phase1.items()
        },
        "phase2": phase2_stats_to_dict(result.phase2),
    }


def result_to_json(result: DARResult, indent: int = 2) -> str:
    """``result_to_dict`` rendered as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)
