"""JSON export of mining results.

Serializes clusters (bounding box, centroid, size, diameter) and rules
(sides, degree, per-consequent degrees, optional support) into plain JSON
structures — the integration surface for dashboards or downstream jobs.
Everything is converted to built-in types so ``json.dumps`` works without
custom encoders.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.core.cluster import Cluster
from repro.core.miner import DARResult
from repro.core.rules import DistanceRule

__all__ = ["cluster_to_dict", "rule_to_dict", "result_to_dict", "result_to_json"]


def cluster_to_dict(cluster: Cluster) -> Dict:
    lo, hi = cluster.bounding_box()
    return {
        "uid": cluster.uid,
        "partition": cluster.partition.name,
        "attributes": list(cluster.partition.attributes),
        "n": cluster.n,
        "diameter": float(cluster.diameter),
        "centroid": [float(v) for v in cluster.centroid],
        "bounding_box": {
            "lo": [float(v) for v in lo],
            "hi": [float(v) for v in hi],
        },
    }


def rule_to_dict(rule: DistanceRule) -> Dict:
    return {
        "antecedent": [cluster.uid for cluster in rule.antecedent],
        "consequent": [cluster.uid for cluster in rule.consequent],
        "degree": float(rule.degree),
        "degrees": {str(uid): float(d) for uid, d in rule.degrees.items()},
        "support_count": rule.support_count,
    }


def result_to_dict(result: DARResult) -> Dict:
    """Whole-run export: thresholds, clusters (by partition), rules."""
    return {
        "frequency_count": result.frequency_count,
        "density_thresholds": {
            name: float(value) for name, value in result.density_thresholds.items()
        },
        "degree_thresholds": {
            name: float(value) for name, value in result.degree_thresholds.items()
        },
        "clusters": {
            name: [cluster_to_dict(cluster) for cluster in clusters]
            for name, clusters in result.frequent_clusters.items()
        },
        "rules": [rule_to_dict(rule) for rule in result.rules_sorted()],
        "phase2": {
            "n_edges": result.phase2.n_edges,
            "n_cliques": result.phase2.n_cliques,
            "n_non_trivial_cliques": result.phase2.n_non_trivial_cliques,
            "comparisons": result.phase2.comparisons,
            "comparisons_skipped": result.phase2.comparisons_skipped,
        },
    }


def result_to_json(result: DARResult, indent: int = 2) -> str:
    """``result_to_dict`` rendered as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)
