"""Rendering: descriptions, result tables, and self-contained HTML reports."""

from repro.report.ascii import cluster_strip, histogram
from repro.report.dashboard import (
    render_bench_report,
    render_run_report,
    write_report,
)
from repro.report.describe import (
    describe_cluster,
    describe_result,
    describe_rule,
    format_rules,
)
from repro.report.export import (
    cluster_to_dict,
    phase1_stats_to_dict,
    phase2_stats_to_dict,
    result_to_dict,
    result_to_json,
    rule_to_dict,
)
from repro.report.tables import Table

__all__ = [
    "cluster_strip",
    "histogram",
    "describe_cluster",
    "describe_result",
    "describe_rule",
    "format_rules",
    "cluster_to_dict",
    "phase1_stats_to_dict",
    "phase2_stats_to_dict",
    "result_to_dict",
    "result_to_json",
    "rule_to_dict",
    "Table",
    "render_bench_report",
    "render_run_report",
    "write_report",
]
