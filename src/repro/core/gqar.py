"""Generalized quantitative association rules (Dfn 4.4, Section 4.3).

The paper's intermediate system: classical association rules whose items
are *clusters* rather than equi-depth intervals.  The algorithm is exactly
Section 4.3 — BIRCH clusters each attribute partition (Phase I), every
tuple is labeled with its closest frequent-cluster centroid (Section 4.3.2),
and the a-priori algorithm mines the label table with the usual support and
confidence thresholds (Phase II).

This addresses Goal 1 (distance-aware groupings) but not Goals 2/3, which
is why the paper develops the distance-based rules in :mod:`repro.core.miner`;
keeping both systems makes the contrast experiments possible.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.birch.birch import BirchClusterer, BirchOptions, assign_to_centroids
from repro.classic.backends import mine_itemsets
from repro.classic.rules import ClassicalRule, generate_rules
from repro.classic.transactions import Item, TransactionSet
from repro.core.cluster import Cluster
from repro.data.relation import AttributePartition, Relation, default_partitions

__all__ = ["GQARConfig", "GQARRule", "GQARResult", "GQARMiner"]


@dataclass(frozen=True)
class GQARConfig:
    """Thresholds of the generalized-QAR problem statement (Section 4.2)."""

    min_support: float = 0.05
    min_confidence: float = 0.5
    density_fraction: float = 0.15
    density_thresholds: Dict[str, float] = field(default_factory=dict)
    max_rule_size: int = 0
    itemset_backend: str = "apriori"
    birch: BirchOptions = field(default_factory=BirchOptions)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError("min_support must be in [0, 1]")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if self.density_fraction <= 0:
            raise ValueError("density_fraction must be positive")
        from repro.classic.backends import ITEMSET_BACKENDS

        if self.itemset_backend not in ITEMSET_BACKENDS:
            raise ValueError(
                f"unknown itemset backend {self.itemset_backend!r}; "
                f"available: {sorted(ITEMSET_BACKENDS)}"
            )


@dataclass(frozen=True)
class GQARRule:
    """A cluster-itemized rule ``C_X1...C_Xx => C_Y1...C_Yy`` (Dfn 4.4)."""

    antecedent: Tuple[Cluster, ...]
    consequent: Tuple[Cluster, ...]
    support: float
    confidence: float

    def __str__(self) -> str:
        lhs = " & ".join(str(cluster) for cluster in self.antecedent)
        rhs = " & ".join(str(cluster) for cluster in self.consequent)
        return f"{lhs} => {rhs} (sup={self.support:.3f}, conf={self.confidence:.3f})"


@dataclass
class GQARResult:
    """Clusters, per-partition labels and the rules mined from them."""
    rules: List[GQARRule]
    clusters: Dict[str, List[Cluster]]
    labels: Dict[str, np.ndarray]


class GQARMiner:
    """Cluster-then-Apriori mining of generalized quantitative rules."""

    def __init__(self, config: GQARConfig = GQARConfig()):
        self.config = config

    def mine(
        self,
        relation: Relation,
        partitions: Optional[Sequence[AttributePartition]] = None,
    ) -> GQARResult:
        """Cluster each partition, then Apriori over cluster memberships."""
        if len(relation) == 0:
            raise ValueError("cannot mine an empty relation")
        partition_list = list(
            partitions if partitions is not None else default_partitions(relation.schema)
        )
        if not partition_list:
            raise ValueError("no interval attributes to mine over")

        n = len(relation)
        min_count = max(1, math.ceil(self.config.min_support * n))
        uid = itertools.count()
        clusters_by_partition: Dict[str, List[Cluster]] = {}
        labels_by_partition: Dict[str, np.ndarray] = {}

        # Phase I: cluster each partition independently (no cross moments —
        # Phase II here counts itemsets, it never measures image distances).
        for partition in partition_list:
            points = relation.matrix(partition.attributes)
            threshold = self.config.density_thresholds.get(partition.name)
            if threshold is None:
                from repro.birch.features import CF

                threshold = self.config.density_fraction * CF.of_points(points).rms_diameter
                if threshold <= 0:
                    threshold = 1e-9
            options = replace(
                self.config.birch,
                initial_threshold=threshold,
                frequency_fraction=self.config.min_support,
            )
            result = BirchClusterer(partition, (), options).fit_arrays(points, {})
            frequent = result.frequent(min_count)
            if not frequent:
                # Section 4.3.2: omit partitions with no frequent clusters.
                continue
            clusters = [
                Cluster(uid=next(uid), partition=partition, acf=acf)
                for acf in frequent
            ]
            clusters_by_partition[partition.name] = clusters
            centroids = np.stack([cluster.centroid for cluster in clusters])
            labels_by_partition[partition.name] = assign_to_centroids(points, centroids)

        # Phase II: Apriori over cluster-membership items.
        cluster_index: Dict[Tuple[str, int], Cluster] = {}
        for name, clusters in clusters_by_partition.items():
            for index, cluster in enumerate(clusters):
                cluster_index[(name, index)] = cluster

        transactions = TransactionSet(
            [
                Item(name, int(labels_by_partition[name][i]))
                for name in clusters_by_partition
            ]
            for i in range(n)
        )
        itemsets = mine_itemsets(
            transactions,
            self.config.min_support,
            method=self.config.itemset_backend,
            max_size=self.config.max_rule_size,
        )
        classical = generate_rules(itemsets, self.config.min_confidence)
        rules = [self._to_cluster_rule(rule, cluster_index) for rule in classical]
        return GQARResult(
            rules=rules, clusters=clusters_by_partition, labels=labels_by_partition
        )

    @staticmethod
    def _to_cluster_rule(
        rule: ClassicalRule, cluster_index: Dict[Tuple[str, int], Cluster]
    ) -> GQARRule:
        def convert(items) -> Tuple[Cluster, ...]:
            return tuple(
                cluster_index[(item.attribute, int(item.value))]
                for item in sorted(items)
            )

        return GQARRule(
            antecedent=convert(rule.antecedent),
            consequent=convert(rule.consequent),
            support=rule.support,
            confidence=rule.confidence,
        )
