"""Clusters as first-class objects (Dfn 4.2) backed by ACF summaries.

A :class:`Cluster` is the Phase I output unit: a set of tuples restricted on
one attribute partition, represented compactly by its ACF.  All Phase II
computations — image distances, the clustering graph, degrees of
association — go through this wrapper and therefore never touch raw data
(Theorem 6.1, ACF Representativity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.birch.features import ACF, CF
from repro.data.relation import AttributePartition

__all__ = ["Cluster", "image_distance", "CLUSTER_METRICS"]


@dataclass(frozen=True)
class Cluster:
    """A cluster ``C_X`` defined on the attribute partition ``X``.

    ``uid`` is unique across all partitions within one mining run and is
    what the clustering graph and cliques refer to.
    """

    uid: int
    partition: AttributePartition
    acf: ACF = field(compare=False, hash=False, repr=False)

    @property
    def n(self) -> int:
        """|C_X| — the number of supporting tuples."""
        return self.acf.n

    @property
    def dimension(self) -> int:
        """|X| — the dimension of the cluster (Dfn 4.2)."""
        return self.partition.dimension

    @property
    def centroid(self) -> np.ndarray:
        """Centroid of the cluster's own-partition summary."""
        return self.acf.centroid

    @property
    def diameter(self) -> float:
        """RMS diameter over the defining partition (the ``d`` of Dfn 4.1)."""
        return self.acf.rms_diameter

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Smallest bounding box — the user-facing description (§7.2)."""
        return self.acf.bounding_box()

    def image(self, partition_name: str) -> CF:
        """CF of this cluster's image ``C[Y]`` on partition ``partition_name``."""
        return self.acf.image(partition_name, self.partition.name)

    def image_diameter(self, partition_name: str) -> float:
        """RMS diameter of the image on another partition (the §6.2 heuristic
        uses this to skip poor-density images)."""
        return self.image(partition_name).rms_diameter

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cluster):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __str__(self) -> str:
        lo, hi = self.bounding_box()
        parts = ", ".join(
            f"{name}:[{lo[i]:g}, {hi[i]:g}]"
            for i, name in enumerate(self.partition.attributes)
        )
        return f"C{self.uid}({parts}; n={self.n})"


def _d1(a: CF, b: CF) -> float:
    return a.d1(b)


def _d2(a: CF, b: CF) -> float:
    return a.rms_d2(b)


#: Cluster-distance metrics usable in Phase II, by name.  ``d1`` is the
#: centroid Manhattan distance (Eq. 5); ``d2`` the (RMS) average
#: inter-cluster distance (Eq. 6).  Both are exact functions of the ACFs.
CLUSTER_METRICS = {"d1": _d1, "d2": _d2}


def image_distance(a: Cluster, b: Cluster, on: str, metric: str = "d2") -> float:
    """D(a[on], b[on]) — the inter-cluster distance between two images.

    ``on`` names the partition whose attributes the images are projected
    onto.  This is the ``D`` of Dfn 5.1/5.3 and Dfn 6.1.

    Images over qualitative attributes (the Section 8 mixed-data
    extension, :mod:`repro.mixed`) are value histograms rather than CFs;
    for those the 0/1-metric D2 is used regardless of ``metric``, since a
    centroid distance has no meaning on an unordered domain.
    """
    if metric not in CLUSTER_METRICS:
        raise KeyError(
            f"unknown cluster metric {metric!r}; available: {sorted(CLUSTER_METRICS)}"
        )
    image_a = a.image(on)
    image_b = b.image(on)
    if isinstance(image_a, CF) and isinstance(image_b, CF):
        return CLUSTER_METRICS[metric](image_a, image_b)
    if hasattr(image_a, "d2") and hasattr(image_b, "counts"):
        return image_a.d2(image_b)
    raise TypeError(
        f"incompatible images on {on!r}: {type(image_a).__name__} vs "
        f"{type(image_b).__name__}"
    )
