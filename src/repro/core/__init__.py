"""The paper's primary contribution: distance-based association rules."""

from repro.core.cliques import maximal_cliques, non_trivial_cliques
from repro.core.cluster import CLUSTER_METRICS, Cluster, image_distance
from repro.core.config import DARConfig
from repro.core.gqar import GQARConfig, GQARMiner, GQARResult, GQARRule
from repro.core.graph import (
    GRAPH_ENGINES,
    ClusteringGraph,
    GraphStats,
    build_clustering_graph,
)
from repro.core.interest import (
    RuleInterest,
    classical_rule_interest,
    confidence_from_degree,
    degree_from_confidence,
    distance_rule_interest,
    nominal_cluster_degree,
    nominal_cluster_diameter,
)
from repro.core.miner import DARMiner, DARResult, Phase2Stats
from repro.core.phase2_kernel import ImageMoments, Phase2Kernel
from repro.core.postprocess import (
    filter_by_antecedent,
    filter_by_consequent,
    prune_redundant,
    select_rules,
)
from repro.core.rules import DistanceRule, validate_rule_partitions
from repro.core.streaming import StreamingDARMiner
from repro.core.validate import RuleAudit, audit_result, audit_rule

__all__ = [
    "maximal_cliques",
    "non_trivial_cliques",
    "CLUSTER_METRICS",
    "Cluster",
    "image_distance",
    "DARConfig",
    "GQARConfig",
    "GQARMiner",
    "GQARResult",
    "GQARRule",
    "ClusteringGraph",
    "GraphStats",
    "GRAPH_ENGINES",
    "build_clustering_graph",
    "ImageMoments",
    "Phase2Kernel",
    "RuleInterest",
    "classical_rule_interest",
    "confidence_from_degree",
    "degree_from_confidence",
    "distance_rule_interest",
    "nominal_cluster_degree",
    "nominal_cluster_diameter",
    "DARMiner",
    "DARResult",
    "Phase2Stats",
    "DistanceRule",
    "validate_rule_partitions",
    "filter_by_antecedent",
    "filter_by_consequent",
    "prune_redundant",
    "select_rules",
    "RuleAudit",
    "audit_result",
    "audit_rule",
    "StreamingDARMiner",
]
