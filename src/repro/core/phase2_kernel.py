"""Vectorized Phase II distance kernel.

Phase II never touches raw data (Thm 6.1): every quantity it needs — the
Dfn 6.1 clustering-graph edge tests, the §6.2 density-pruning mask, the
``assoc`` sets and degrees of association of §6.2 rule formation — is a
function of the image CFs ``(N, LS, SS)`` carried by the frequent
clusters' ACFs.  The scalar path re-derives both image CFs and one
distance per Python call, which makes graph construction O(k²) slow
Python work.  :class:`Phase2Kernel` instead extracts every cluster's
image moments **once** per partition into stacked numpy matrices and
computes whole pairwise D1 (Eq. 5) / RMS-D2 (Eq. 6) distance matrices
with blocked array ops.

The kernel is decision-equivalent to the scalar path: it evaluates the
same formulas (``repro.metrics.cluster``) over the same moments, in the
same cluster (uid) order, with the same threshold comparisons — the
equivalence suite in ``tests/core/test_phase2_kernel.py`` pins identical
edge sets, identical :class:`~repro.core.graph.GraphStats` accounting and
distances within 1e-9 of the scalar values.

Clusters whose images are not plain CFs (the Section 8 mixed-data
extension uses value histograms for nominal projections) are outside the
kernel's domain; :func:`Phase2Kernel.supports` reports that and callers
fall back to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.birch.features import CF
from repro.core.cluster import CLUSTER_METRICS, Cluster
from repro.obs import metrics as obs_metrics
from repro.obs.profile import profiled
from repro.obs.trace import span

__all__ = ["ImageMoments", "Phase2Kernel", "pairwise_block", "require_finite"]


def pairwise_block(
    metric: str,
    n: np.ndarray,
    ls: np.ndarray,
    ss: np.ndarray,
    start: int,
    stop: int,
) -> np.ndarray:
    """Rows ``[start, stop)`` of the pairwise image-distance matrix.

    This is the unit of work of the blocked computation — the serial
    kernel loops over it and the parallel kernel ships one call per
    worker task.  Both paths evaluate this exact function on the same
    float64 moments, so a distance matrix assembled from worker tiles is
    bit-identical to the serially computed one (same expressions, same
    operand shapes, same BLAS calls).
    """
    if metric == "d1":
        centroids = ls / n[:, None]
        return np.abs(
            centroids[start:stop, None, :] - centroids[None, :, :]
        ).sum(axis=2)
    # d2 — RMS average inter-cluster distance from moments
    ss_over_n = ss / n
    # <LS_i, LS_j> / (N_i N_j), the cross term of Eq. (6).
    cross = (ls[start:stop] @ ls.T) / np.outer(n[start:stop], n)
    squared = ss_over_n[start:stop, None] + ss_over_n[None, :] - 2.0 * cross
    return np.sqrt(np.maximum(squared, 0.0))


def require_finite(array: np.ndarray, what: str, partition_name: str) -> None:
    """Post-condition: every entry of ``array`` is finite.

    Phase II math is closed over finite moments, so a NaN/inf here means
    the input moments were already degenerate (non-finite data values, a
    corrupted checkpoint, a bad merge) — raise a clear error naming the
    partition instead of letting NaN propagate silently through the
    threshold comparisons, where it would compare false and quietly drop
    edges.
    """
    if np.isfinite(array).all():
        return
    bad = int(np.count_nonzero(~np.isfinite(array)))
    raise ValueError(
        f"partition {partition_name!r}: {what} has {bad} non-finite "
        f"entr{'y' if bad == 1 else 'ies'} — the cluster moments feeding "
        f"Phase II are degenerate (non-finite input values?)"
    )

#: Row-block size for pairwise-distance materialization.  D1 needs a
#: (block, k, dim) intermediate; 256 rows keeps that under a few MB for
#: realistic dimensions while leaving the inner loops fully vectorized.
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class ImageMoments:
    """Stacked image moments of every cluster on one partition.

    Row ``i`` summarizes cluster ``i``'s image (in kernel order): ``n[i]``
    tuples, linear sum ``ls[i]`` and scalar sum of squared norms
    ``ss[i]`` — exactly the ``(N, LS, SS)`` of Eq. (3) that Theorem 6.1
    shows suffice for all Phase II distances.
    """

    n: np.ndarray  # (k,) float64
    ls: np.ndarray  # (k, dim) float64
    ss: np.ndarray  # (k,) float64

    @property
    def k(self) -> int:
        """Number of clusters (rows) in the stack."""
        return self.n.shape[0]

    @property
    def centroids(self) -> np.ndarray:
        """Per-cluster centroids, ``(k, dim)``."""
        return self.ls / self.n[:, None]

    def rms_diameters(self) -> np.ndarray:
        """Per-row RMS diameter (vectorized ``rms_diameter_from_moments``).

        Singleton images (``n < 2``) have diameter 0 by definition; they
        are routed around the division explicitly rather than computing
        ``0/0`` under a suppressed-warning block, so any *other* division
        problem (corrupt moments, non-finite sums) still surfaces as a
        real floating-point warning instead of being masked.
        """
        n = self.n
        singleton = n < 2.0
        denominator = np.where(singleton, 1.0, n * (n - 1.0))
        squared = (
            2.0 * n * self.ss - 2.0 * np.einsum("ij,ij->i", self.ls, self.ls)
        ) / denominator
        return np.where(singleton, 0.0, np.sqrt(np.maximum(squared, 0.0)))


class Phase2Kernel:
    """Blocked pairwise image distances over one frequent-cluster population.

    The kernel is built once per mining run from the flat list of frequent
    clusters.  Construction performs the image-moment extraction; distance
    matrices are materialized lazily, once per partition, and cached — the
    clustering-graph build, the ``assoc``-set computation and the
    rule-formation degree lookups all read the same cached matrices.
    """

    def __init__(
        self,
        clusters: Sequence[Cluster],
        metric: str = "d2",
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if metric not in CLUSTER_METRICS:
            raise KeyError(
                f"unknown cluster metric {metric!r}; available: "
                f"{sorted(CLUSTER_METRICS)}"
            )
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.metric = metric
        self.block_size = int(block_size)

        ordered = sorted(clusters, key=lambda c: c.uid)
        self.clusters: Dict[int, Cluster] = {}
        for cluster in ordered:
            if cluster.uid in self.clusters:
                raise ValueError(f"duplicate cluster uid {cluster.uid}")
            self.clusters[cluster.uid] = cluster
        self.order: List[Cluster] = ordered
        self.uids: np.ndarray = np.array([c.uid for c in ordered], dtype=np.int64)
        self.index: Dict[int, int] = {c.uid: i for i, c in enumerate(ordered)}

        self.partition_names: List[str] = sorted(
            {c.partition.name for c in ordered}
        )
        name_index = {name: i for i, name in enumerate(self.partition_names)}
        self.partition_of: np.ndarray = np.array(
            [name_index[c.partition.name] for c in ordered], dtype=np.int64
        )

        # ---------------- image-moment extraction (once per cluster) ----
        self._moments: Dict[str, ImageMoments] = {}
        for name in self.partition_names:
            images = [c.image(name) for c in ordered]
            for cluster, image in zip(ordered, images):
                if not isinstance(image, CF):
                    raise TypeError(
                        f"cluster {cluster.uid} has a non-CF image on "
                        f"{name!r} ({type(image).__name__}); the vectorized "
                        f"kernel requires CF images — use the scalar path"
                    )
            self._moments[name] = ImageMoments(
                n=np.array([cf.n for cf in images], dtype=np.float64),
                ls=np.stack([cf.ls for cf in images]) if images else np.zeros((0, 0)),
                ss=np.array([cf.ss_total for cf in images], dtype=np.float64),
            )

        self._distances: Dict[str, np.ndarray] = {}
        self._diameters: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Capability probe
    # ------------------------------------------------------------------

    @staticmethod
    def supports(clusters: Sequence[Cluster]) -> bool:
        """Whether every cluster has a CF image on every partition present.

        Mixed-data clusters carry histogram images for nominal partitions
        and are out of scope; populations with missing cross moments are
        left to the scalar path so they fail (or succeed) exactly as
        before.
        """
        names = {c.partition.name for c in clusters}
        try:
            return all(
                isinstance(c.image(name), CF) for c in clusters for name in names
            )
        except KeyError:
            return False

    # ------------------------------------------------------------------
    # Cached matrices
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of clusters the kernel was built over."""
        return len(self.order)

    def moments_on(self, partition_name: str) -> ImageMoments:
        """The stacked image moments of every cluster on one partition."""
        return self._moments[partition_name]

    def image_diameters_on(self, partition_name: str) -> np.ndarray:
        """RMS diameter of every cluster's image on ``partition_name``
        (the quantity the §6.2 pre-filter thresholds)."""
        cached = self._diameters.get(partition_name)
        if cached is None:
            cached = self._moments[partition_name].rms_diameters()
            require_finite(cached, "image RMS diameters", partition_name)
            self._diameters[partition_name] = cached
        return cached

    def pairwise_on(self, partition_name: str) -> np.ndarray:
        """The full k x k image-distance matrix on one partition.

        ``result[i, j]`` is ``D(C_i[P], C_j[P])`` under the kernel's
        metric, rows/columns in kernel (uid-sorted) order.  Computed
        blocked on first use and cached.
        """
        cached = self._distances.get(partition_name)
        if cached is None:
            cached = self._compute_pairwise(self._moments[partition_name])
            require_finite(cached, "pairwise image distances", partition_name)
            self._distances[partition_name] = cached
        return cached

    def _compute_pairwise(self, moments: ImageMoments) -> np.ndarray:
        k = moments.k
        n_blocks = -(-k // self.block_size) if k else 0
        with span(
            "phase2.kernel.pairwise", k=k, blocks=n_blocks
        ), profiled("phase2.kernel.pairwise"):
            if obs_metrics.metrics_enabled():
                obs_metrics.set_gauge(
                    "repro_kernel_block_size",
                    self.block_size,
                    help="Row-block size of the Phase II pairwise kernel",
                )
                obs_metrics.inc(
                    "repro_kernel_blocks_total",
                    n_blocks,
                    help="Row blocks materialized by the pairwise kernel",
                )
            return self._pairwise_blocked(moments)

    def _pairwise_blocked(self, moments: ImageMoments) -> np.ndarray:
        """The blocked distance-matrix computation behind ``pairwise_on``.

        The parallel kernel overrides this to run the same
        :func:`pairwise_block` calls on a worker pool and reassemble the
        tiles; everything else (caching, graph build, assoc sets) is
        shared.
        """
        k = moments.k
        out = np.zeros((k, k), dtype=np.float64)
        for start in range(0, k, self.block_size):
            stop = min(start + self.block_size, k)
            out[start:stop] = pairwise_block(
                self.metric, moments.n, moments.ls, moments.ss, start, stop
            )
        return out

    def distance(self, a_uid: int, b_uid: int, on: str) -> float:
        """``D(a[on], b[on])`` looked up from the cached matrices."""
        return float(self.pairwise_on(on)[self.index[a_uid], self.index[b_uid]])

    # ------------------------------------------------------------------
    # Graph build (Dfn 6.1 + §6.2 pruning)
    # ------------------------------------------------------------------

    def viability_mask(
        self,
        density_thresholds: Mapping[str, float],
        pruning_diameter_factor: float,
    ) -> np.ndarray:
        """``mask[i, p]`` — may cluster ``i`` be compared against partition
        ``p`` (kernel partition order)?  False where the cluster's image on
        ``p`` has RMS diameter above ``factor x d0_p`` (§6.2); a cluster is
        always viable against its own partition (never compared anyway).
        """
        k, n_parts = self.k, len(self.partition_names)
        mask = np.ones((k, n_parts), dtype=bool)
        for p, name in enumerate(self.partition_names):
            bound = pruning_diameter_factor * density_thresholds[name]
            viable = self.image_diameters_on(name) <= bound
            own = self.partition_of == p
            mask[:, p] = viable | own
        return mask

    def build_graph(
        self,
        density_thresholds: Mapping[str, float],
        use_density_pruning: bool = True,
        pruning_diameter_factor: float = 2.0,
    ):
        """The Dfn 6.1 clustering graph, identical to the scalar builder.

        Returns a :class:`~repro.core.graph.ClusteringGraph` whose
        adjacency, edge set and :class:`~repro.core.graph.GraphStats`
        accounting (comparisons / skipped / edges) match
        ``build_clustering_graph(engine="scalar")`` exactly.
        """
        from repro.core.graph import ClusteringGraph, GraphStats

        for cluster in self.order:
            if cluster.partition.name not in density_thresholds:
                raise ValueError(
                    f"no density threshold for partition "
                    f"{cluster.partition.name!r}"
                )

        adjacency: Dict[int, Set[int]] = {uid: set() for uid in self.clusters}
        stats = GraphStats(engine="vector")
        names = self.partition_names
        thresholds = {name: float(density_thresholds[name]) for name in names}

        viable: Optional[np.ndarray] = None
        if use_density_pruning:
            viable = self.viability_mask(thresholds, pruning_diameter_factor)

        uids = self.uids
        for pa in range(len(names)):
            rows = np.nonzero(self.partition_of == pa)[0]
            if rows.size == 0:
                continue
            for pb in range(pa + 1, len(names)):
                cols = np.nonzero(self.partition_of == pb)[0]
                if cols.size == 0:
                    continue
                name_a, name_b = names[pa], names[pb]
                if viable is not None:
                    # Pair survives the §6.2 pre-filter only if A's image is
                    # dense on B's partition and vice versa.
                    pair_ok = viable[rows, pb][:, None] & viable[cols, pa][None, :]
                    n_ok = int(np.count_nonzero(pair_ok))
                    stats.skipped += rows.size * cols.size - n_ok
                    stats.comparisons += n_ok
                else:
                    pair_ok = None
                    stats.comparisons += rows.size * cols.size
                close = (
                    self.pairwise_on(name_a)[np.ix_(rows, cols)]
                    <= thresholds[name_a]
                ) & (
                    self.pairwise_on(name_b)[np.ix_(rows, cols)]
                    <= thresholds[name_b]
                )
                if pair_ok is not None:
                    close &= pair_ok
                edge_rows, edge_cols = np.nonzero(close)
                stats.edges += edge_rows.size
                for i, j in zip(uids[rows[edge_rows]], uids[cols[edge_cols]]):
                    adjacency[int(i)].add(int(j))
                    adjacency[int(j)].add(int(i))

        return ClusteringGraph(
            clusters=dict(self.clusters), adjacency=adjacency, stats=stats
        )

    # ------------------------------------------------------------------
    # Rule formation (§6.2) support
    # ------------------------------------------------------------------

    def assoc_sets(
        self,
        degree_thresholds: Mapping[str, float],
        targets: Optional[frozenset] = None,
    ) -> Dict[int, Set[int]]:
        """``assoc(C_Y)`` for every (target) cluster, from cached matrices.

        ``assoc(C_Y)`` is the set of frequent clusters over *other*
        partitions whose image on Y's partition lies within ``D0_Y`` of
        ``C_Y`` — the antecedent candidate pool of §6.2 rule formation.
        """
        assoc: Dict[int, Set[int]] = {}
        uids = self.uids
        for p, name in enumerate(self.partition_names):
            if targets is not None and name not in targets:
                continue
            rows = np.nonzero(self.partition_of == p)[0]
            if rows.size == 0:
                continue
            threshold = float(degree_thresholds[name])
            others = self.partition_of != p
            distances = self.pairwise_on(name)
            for row in rows:
                members = others & (distances[row] <= threshold)
                assoc[int(uids[row])] = {int(u) for u in uids[members]}
        return assoc
