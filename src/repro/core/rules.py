"""Distance-based association rules (Dfn 5.1, 5.2, 5.3).

A DAR ``C_X1 ... C_Xx => C_Y1 ... C_Yy`` asserts that tuples whose ``X_i``
values fall in the antecedent clusters have ``Y_j`` values *close to* the
consequent clusters.  Its interest measures replace the classical pair:

* the *degree of association* — the worst-case image distance
  ``D(C_Yj[Yj], C_Xi[Yj])`` — replaces confidence (smaller is stronger);
* the density conditions between co-antecedent (and co-consequent)
  clusters replace support on the combined itemset; the frequency
  threshold survives only on the individual clusters (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.cluster import Cluster

__all__ = ["DistanceRule", "RuleList", "validate_rule_partitions"]


def validate_rule_partitions(
    antecedent: Tuple[Cluster, ...], consequent: Tuple[Cluster, ...]
) -> None:
    """Dfn 5.3 requires all X_i and Y_j to be pairwise disjoint attribute sets.

    With named partitions, disjointness is simply name uniqueness across
    both sides.  Raises ``ValueError`` on violation or on an empty side.
    """
    if not antecedent or not consequent:
        raise ValueError("both rule sides must be non-empty")
    names = [cluster.partition.name for cluster in antecedent + consequent]
    if len(set(names)) != len(names):
        raise ValueError(f"rule partitions are not pairwise disjoint: {names}")


@dataclass(frozen=True)
class DistanceRule:
    """A DAR with its measured degree of association.

    ``degree`` is the maximum image distance over all (antecedent,
    consequent) cluster pairs — the rule "holds with degree D0" for any
    ``D0 >= degree``.  ``degrees`` records the per-consequent detail and
    ``support_count`` is filled only when the optional post-scan of
    Section 6.2 is enabled.
    """

    antecedent: Tuple[Cluster, ...]
    consequent: Tuple[Cluster, ...]
    degree: float
    degrees: Dict[int, float] = field(default_factory=dict, compare=False, hash=False)
    support_count: Optional[int] = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        validate_rule_partitions(self.antecedent, self.consequent)
        if self.degree < 0:
            raise ValueError("degree of association cannot be negative")

    @property
    def arity(self) -> Tuple[int, int]:
        """(x, y) — antecedent and consequent cluster counts."""
        return len(self.antecedent), len(self.consequent)

    @property
    def is_one_to_one(self) -> bool:
        """Whether the rule has exactly one cluster on each side."""
        return self.arity == (1, 1)

    @property
    def antecedent_uids(self) -> frozenset:
        """Uids of the antecedent clusters."""
        return frozenset(cluster.uid for cluster in self.antecedent)

    @property
    def consequent_uids(self) -> frozenset:
        """Uids of the consequent clusters."""
        return frozenset(cluster.uid for cluster in self.consequent)

    def key(self) -> Tuple[frozenset, frozenset]:
        """Identity for deduplication across clique pairs."""
        return self.antecedent_uids, self.consequent_uids

    def __str__(self) -> str:
        lhs = " & ".join(str(cluster) for cluster in self.antecedent)
        rhs = " & ".join(str(cluster) for cluster in self.consequent)
        suffix = f" (degree={self.degree:.4g}"
        if self.support_count is not None:
            suffix += f", support={self.support_count}"
        return f"{lhs} => {rhs}{suffix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceRule):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class RuleList(list):
    """A rule list that is also the unified query surface.

    ``DARResult.rules`` is one of these: it behaves exactly like the
    plain list it always was (iteration, indexing, ``len``), and calling
    it filters through :func:`repro.serve.query.apply_query` — the same
    semantics the snapshot query engine and the HTTP endpoint use::

        result.rules(RuleQuery(targets=("claims",), top_k=5))
        result.rules(targets="claims", top_k=5)       # keyword form

    The deprecated ad-hoc keywords (``target=``, ``partition_names=``)
    keep working through the warn-once shim in
    :meth:`~repro.serve.query.RuleQuery.coerce`.
    """

    def __call__(self, query=None, **kwargs) -> "RuleList":
        """Filter and rank per a :class:`~repro.serve.query.RuleQuery`."""
        from repro.serve.query import apply_query

        return RuleList(apply_query(self, query, **kwargs))
