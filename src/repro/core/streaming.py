"""Streaming (anytime) distance-based rule mining.

The whole point of building Phase I on BIRCH is that summaries are
*incremental*: "clusters can be incrementally identified and refined in a
single pass over the data" (Section 4.3.1).  This module exposes that
directly — a :class:`StreamingDARMiner` keeps one live ACF-tree per
partition, absorbs tuple batches as they arrive, and can materialize the
current rule set at any moment by running the summary-only Phase II.  No
batch is ever rescanned.

Because density thresholds cannot be derived from data that has not
arrived yet, they are fixed up front: either explicitly per partition or
from the first batch (``density_fraction`` of its spread), mirroring how
the batch miner derives them from the full relation.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

import numpy as np

from repro.birch.batch import ScanStats
from repro.birch.birch import Phase1Stats
from repro.birch.features import CF
from repro.birch.memory import MemoryModel, ThresholdSchedule
from repro.birch.rebuild import rebuild_tree
from repro.birch.tree import ACFTree
from repro.core.cliques import maximal_cliques, non_trivial_cliques
from repro.core.cluster import Cluster
from repro.core.config import DARConfig
from repro.core.graph import build_clustering_graph
from repro.core.miner import DARMiner, DARResult, Phase2Stats
from repro.core.phase2_kernel import Phase2Kernel
from repro.data.relation import AttributePartition, Relation

__all__ = ["StreamingDARMiner"]


class StreamingDARMiner:
    """Incrementally mines DARs from arriving tuple batches.

    >>> from repro.data.relation import AttributePartition
    >>> partitions = [AttributePartition("x", ("x",)),
    ...               AttributePartition("y", ("y",))]
    >>> miner = StreamingDARMiner(partitions)   # doctest: +SKIP
    >>> miner.update(first_batch)               # doctest: +SKIP
    >>> early_rules = miner.rules()             # doctest: +SKIP
    >>> miner.update(second_batch)              # doctest: +SKIP
    >>> refined = miner.rules()                 # doctest: +SKIP
    """

    def __init__(
        self,
        partitions: Sequence[AttributePartition],
        config: DARConfig = DARConfig(),
        density_thresholds: Optional[Mapping[str, float]] = None,
    ):
        partition_list = list(partitions)
        if not partition_list:
            raise ValueError("at least one partition is required")
        names = [p.name for p in partition_list]
        if len(set(names)) != len(names):
            raise ValueError(f"partition names must be unique, got {names}")
        self.partitions = partition_list
        self.config = config
        self._explicit_density = dict(density_thresholds or {})
        self._density: Optional[Dict[str, float]] = None
        self._trees: Dict[str, ACFTree] = {}
        self._schedules: Dict[str, ThresholdSchedule] = {}
        self._memory_models: Dict[str, MemoryModel] = {}
        self._scan_stats: Dict[str, ScanStats] = {
            p.name: ScanStats() for p in partition_list
        }
        self._n_points = 0

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Tuples absorbed so far."""
        return self._n_points

    @property
    def scan_stats(self) -> Dict[str, ScanStats]:
        """Per-partition batch-scan instrumentation, accumulated over updates."""
        return dict(self._scan_stats)

    @property
    def density_thresholds(self) -> Dict[str, float]:
        if self._density is None:
            raise RuntimeError("no data yet: thresholds are fixed by the first batch")
        return dict(self._density)

    def update(self, relation: Relation) -> None:
        """Absorb one batch of tuples (schema must cover every partition)."""
        if len(relation) == 0:
            return
        matrices = {
            p.name: relation.matrix(p.attributes) for p in self.partitions
        }
        self.update_arrays(matrices)

    def update_arrays(self, matrices: Mapping[str, np.ndarray]) -> None:
        """Absorb a batch given as per-partition matrices with equal rows."""
        missing = [p.name for p in self.partitions if p.name not in matrices]
        if missing:
            raise ValueError(f"batch lacks matrices for partitions: {missing}")
        lengths = {np.atleast_2d(matrices[p.name]).shape[0] for p in self.partitions}
        if len(lengths) != 1:
            raise ValueError(f"ragged batch: row counts {sorted(lengths)}")
        (n_rows,) = lengths
        if n_rows == 0:
            return
        for name, matrix in matrices.items():
            if not np.all(np.isfinite(np.asarray(matrix, dtype=np.float64))):
                raise ValueError(f"batch contains non-finite values in {name!r}")

        if self._density is None:
            self._initialize(matrices)

        for partition in self.partitions:
            tree = self._trees[partition.name]
            points = np.atleast_2d(np.asarray(matrices[partition.name], float))
            cross = {
                p.name: np.atleast_2d(np.asarray(matrices[p.name], float))
                for p in self.partitions
                if p.name != partition.name
            }
            tree.insert_points(points, cross, stats=self._scan_stats[partition.name])
            self._enforce_budget(partition.name)
        self._n_points += n_rows

    # ------------------------------------------------------------------

    def _initialize(self, matrices: Mapping[str, np.ndarray]) -> None:
        density: Dict[str, float] = {}
        for partition in self.partitions:
            explicit = self._explicit_density.get(partition.name)
            if explicit is not None:
                density[partition.name] = float(explicit)
            else:
                spread = CF.of_points(
                    np.atleast_2d(np.asarray(matrices[partition.name], float))
                ).rms_diameter
                derived = self.config.density_fraction * spread
                density[partition.name] = derived if derived > 0 else 1e-9
        self._density = density
        for partition in self.partitions:
            cross_dimensions = {
                p.name: p.dimension for p in self.partitions if p.name != partition.name
            }
            self._trees[partition.name] = ACFTree(
                dimension=partition.dimension,
                threshold=density[partition.name],
                branching=self.config.birch.branching,
                leaf_capacity=self.config.birch.leaf_capacity,
                cross_dimensions=cross_dimensions,
            )
            self._schedules[partition.name] = ThresholdSchedule(
                growth_factor=self.config.birch.threshold_growth
            )
            self._memory_models[partition.name] = MemoryModel(
                dimension=partition.dimension,
                cross_dimensions=cross_dimensions,
                branching=self.config.birch.branching,
                leaf_capacity=self.config.birch.leaf_capacity,
            )

    def _enforce_budget(self, name: str) -> None:
        budget = self.config.birch.memory_limit_bytes
        if budget is None:
            return
        tree = self._trees[name]
        model = self._memory_models[name]
        attempts = 0
        while (
            model.tree_bytes(*tree.summary_counts()) > budget
            and attempts < self.config.birch.max_rebuilds_per_overflow
        ):
            tree = rebuild_tree(
                tree,
                self._schedules[name].next_threshold(tree),
                stats=self._scan_stats[name],
            )
            attempts += 1
        self._trees[name] = tree

    # ------------------------------------------------------------------

    def rules(self) -> DARResult:
        """Materialize the current rule set from the live summaries.

        Runs the summary-only Phase II (graph, cliques, assoc sets) on a
        snapshot of each tree's entries.  Cheap relative to the stream —
        the paper's §7.2 point that Phase II cost tracks data complexity,
        not data volume, is exactly what makes an anytime API viable.
        """
        if self._density is None or self._n_points == 0:
            raise RuntimeError("no data absorbed yet")
        frequency_count = max(
            1, math.ceil(self.config.frequency_fraction * self._n_points)
        )
        degree = {
            p.name: self.config.degree_threshold(p.name, self._density[p.name])
            for p in self.partitions
        }

        uid = itertools.count()
        all_clusters: Dict[str, List[Cluster]] = {}
        frequent_clusters: Dict[str, List[Cluster]] = {}
        for partition in self.partitions:
            clusters = [
                Cluster(uid=next(uid), partition=partition, acf=acf.copy())
                for acf in self._trees[partition.name].entries()
            ]
            all_clusters[partition.name] = clusters
            frequent = [c for c in clusters if c.n >= frequency_count]
            if frequent:
                frequent_clusters[partition.name] = frequent

        phase2 = Phase2Stats()
        started = time.perf_counter()
        flat = [c for group in frequent_clusters.values() for c in group]
        phase2.n_clusters = sum(len(g) for g in all_clusters.values())
        phase2.n_frequent_clusters = len(flat)

        graph = None
        cliques: List[FrozenSet[int]] = []
        rules = []
        if len(frequent_clusters) >= 2:
            engine = self.config.phase2_engine
            if engine == "auto":
                engine = "vector" if Phase2Kernel.supports(flat) else "scalar"
            phase2.engine = engine
            kernel = (
                Phase2Kernel(flat, metric=self.config.metric)
                if engine == "vector"
                else None
            )
            lenient = {
                name: self.config.phase2_leniency * threshold
                for name, threshold in self._density.items()
            }
            if kernel is not None:
                graph = kernel.build_graph(
                    lenient,
                    use_density_pruning=self.config.use_density_pruning,
                    pruning_diameter_factor=self.config.pruning_diameter_factor,
                )
            else:
                graph = build_clustering_graph(
                    flat,
                    lenient,
                    metric=self.config.metric,
                    use_density_pruning=self.config.use_density_pruning,
                    pruning_diameter_factor=self.config.pruning_diameter_factor,
                    engine="scalar",
                )
            cliques = maximal_cliques(graph.adjacency)
            helper = DARMiner(self.config)
            rules = helper._rules_from_cliques(graph, cliques, degree, kernel=kernel)
            phase2.n_edges = graph.n_edges
            phase2.comparisons = graph.stats.comparisons
            phase2.comparisons_skipped = graph.stats.skipped
        phase2.n_cliques = len(cliques)
        phase2.n_non_trivial_cliques = len(non_trivial_cliques(cliques))
        phase2.n_rules = len(rules)
        phase2.seconds = time.perf_counter() - started

        # A streaming run has no single Phase I pass; expose the live
        # per-partition scan instrumentation in the same slot the batch
        # miner uses so downstream reporting is uniform.
        phase1 = {
            p.name: Phase1Stats(
                points_inserted=self._n_points,
                final_entry_count=len(all_clusters[p.name]),
                scan=self._scan_stats[p.name],
            )
            for p in self.partitions
        }

        return DARResult(
            rules=rules,
            frequent_clusters=frequent_clusters,
            all_clusters=all_clusters,
            graph=graph,
            cliques=cliques,
            density_thresholds=dict(self._density),
            degree_thresholds=degree,
            frequency_count=frequency_count,
            phase1=phase1,
            phase2=phase2,
        )
