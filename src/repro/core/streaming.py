"""Streaming (anytime) distance-based rule mining.

The whole point of building Phase I on BIRCH is that summaries are
*incremental*: "clusters can be incrementally identified and refined in a
single pass over the data" (Section 4.3.1).  This module exposes that
directly — a :class:`StreamingDARMiner` keeps one live ACF-tree per
partition, absorbs tuple batches as they arrive, and can materialize the
current rule set at any moment by running the summary-only Phase II.  No
batch is ever rescanned.

Because density thresholds cannot be derived from data that has not
arrived yet, they are fixed up front: either explicitly per partition or
from the first batch (``density_fraction`` of its spread), mirroring how
the batch miner derives them from the full relation.

Long streams are exactly where crashes land, so the miner is
checkpointable: :meth:`StreamingDARMiner.save_checkpoint` serializes the
complete state (every tree's exact node graph, thresholds, scan stats,
row counters) through :mod:`repro.resilience.checkpoint`, and
:meth:`StreamingDARMiner.from_checkpoint` restores a miner that absorbs
the remaining batches with bit-identical results — the ACF Additivity
Theorem (Eq. 7) is what makes the serialized summaries a *complete*
checkpoint.  Ingestion can also run leniently: pass a
:class:`~repro.resilience.sink.RowSink` to :meth:`update` and rows with
non-finite values are quarantined instead of aborting the stream.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.birch.batch import ScanStats
from repro.birch.birch import Phase1Stats
from repro.birch.features import CF
from repro.birch.memory import MemoryModel, ThresholdSchedule
from repro.birch.rebuild import rebuild_tree
from repro.birch.tree import ACFTree
from repro.core.cliques import maximal_cliques, non_trivial_cliques
from repro.core.cluster import Cluster
from repro.core.config import DARConfig
from repro.core.graph import build_clustering_graph
from repro.core.miner import DARMiner, DARResult, Phase2Stats
from repro.core.phase2_kernel import Phase2Kernel
from repro.data.relation import AttributePartition, Relation
from repro.obs import metrics as obs_metrics
from repro.obs.health import HealthMonitor, HealthReport, HealthThresholds
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.errors import CheckpointCorruptError, ValidationError
from repro.resilience.events import record_guard_event

__all__ = ["StreamingDARMiner"]

_CHECKPOINT_KIND = "streaming-darminer"


class StreamingDARMiner:
    """Incrementally mines DARs from arriving tuple batches.

    >>> from repro.data.relation import AttributePartition
    >>> partitions = [AttributePartition("x", ("x",)),
    ...               AttributePartition("y", ("y",))]
    >>> miner = StreamingDARMiner(partitions)   # doctest: +SKIP
    >>> miner.update(first_batch)               # doctest: +SKIP
    >>> early_rules = miner.rules()             # doctest: +SKIP
    >>> miner.update(second_batch)              # doctest: +SKIP
    >>> refined = miner.rules()                 # doctest: +SKIP
    """

    def __init__(
        self,
        partitions: Sequence[AttributePartition],
        config: DARConfig = DARConfig(),
        density_thresholds: Optional[Mapping[str, float]] = None,
    ):
        partition_list = list(partitions)
        if not partition_list:
            raise ValueError("at least one partition is required")
        names = [p.name for p in partition_list]
        if len(set(names)) != len(names):
            raise ValueError(f"partition names must be unique, got {names}")
        self.partitions = partition_list
        self.config = config
        self._explicit_density = dict(density_thresholds or {})
        self._density: Optional[Dict[str, float]] = None
        self._trees: Dict[str, ACFTree] = {}
        self._schedules: Dict[str, ThresholdSchedule] = {}
        self._memory_models: Dict[str, MemoryModel] = {}
        self._scan_stats: Dict[str, ScanStats] = {
            p.name: ScanStats() for p in partition_list
        }
        self._n_points = 0
        self._rows_seen = 0
        self._last_checkpoint_monotonic: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Tuples absorbed so far."""
        return self._n_points

    @property
    def rows_seen(self) -> int:
        """Rows *offered* so far, including any diverted to a sink.

        This is the stream position — what a resuming driver uses to skip
        already-processed input — whereas :attr:`n_points` counts only the
        rows the trees absorbed.
        """
        return self._rows_seen

    @property
    def scan_stats(self) -> Dict[str, ScanStats]:
        """Per-partition batch-scan instrumentation, accumulated over updates."""
        return dict(self._scan_stats)

    @property
    def density_thresholds(self) -> Dict[str, float]:
        """Per-partition ``d0`` fixed by the first batch; raises before data."""
        if self._density is None:
            raise RuntimeError("no data yet: thresholds are fixed by the first batch")
        return dict(self._density)

    def update(self, relation: Relation, sink=None) -> None:
        """Absorb one batch of tuples (schema must cover every partition).

        With ``sink`` (a :class:`~repro.resilience.sink.RowSink`), rows
        containing non-finite values are diverted to it instead of
        aborting the batch; without one any non-finite value raises.
        """
        if len(relation) == 0:
            return
        matrices = {
            p.name: relation.matrix(p.attributes) for p in self.partitions
        }
        self.update_arrays(matrices, sink=sink)

    def update_arrays(self, matrices: Mapping[str, np.ndarray], sink=None) -> None:
        """Absorb a batch given as per-partition matrices with equal rows.

        When observability is enabled the update is traced as a
        ``streaming.update`` span and the per-partition scan deltas are
        published to the metrics registry (see ``docs/OBSERVABILITY.md``).
        """
        before = (
            {name: stats.to_dict() for name, stats in self._scan_stats.items()}
            if obs_metrics.metrics_enabled()
            else None
        )
        with span("streaming.update") as update_span:
            self._update_arrays(matrices, sink=sink)
            update_span.set("rows_seen", self._rows_seen)
            update_span.set("points", self._n_points)
        if before is not None:
            for name, stats in self._scan_stats.items():
                stats.publish(name, since=before[name])
            if self._density is not None:
                self.health().publish()

    def _update_arrays(self, matrices: Mapping[str, np.ndarray], sink=None) -> None:
        faults.fire("streaming.update")
        missing = [p.name for p in self.partitions if p.name not in matrices]
        if missing:
            raise ValueError(f"batch lacks matrices for partitions: {missing}")
        arrays = {
            p.name: np.atleast_2d(np.asarray(matrices[p.name], dtype=np.float64))
            for p in self.partitions
        }
        lengths = {arrays[p.name].shape[0] for p in self.partitions}
        if len(lengths) != 1:
            raise ValueError(f"ragged batch: row counts {sorted(lengths)}")
        (n_rows,) = lengths
        if n_rows == 0:
            return

        offered = n_rows
        if sink is None:
            for name, matrix in arrays.items():
                if not np.all(np.isfinite(matrix)):
                    raise ValidationError(
                        f"batch contains non-finite values in {name!r}"
                    )
        else:
            arrays, n_rows = self._divert_bad_rows(arrays, n_rows, sink)
            if n_rows == 0:
                self._rows_seen += offered
                return

        if self._density is None:
            self._initialize(arrays)

        for partition in self.partitions:
            faults.fire("streaming.partition")
            tree = self._trees[partition.name]
            points = arrays[partition.name]
            cross = {
                p.name: arrays[p.name]
                for p in self.partitions
                if p.name != partition.name
            }
            tree.insert_points(points, cross, stats=self._scan_stats[partition.name])
            self._enforce_budget(partition.name)
        self._n_points += n_rows
        self._rows_seen += offered

    def _divert_bad_rows(self, arrays, n_rows: int, sink):
        """Quarantine rows with non-finite values; return the clean rest.

        Row numbers reported to the sink are *stream* positions (offset by
        :attr:`rows_seen`), so quarantine records stay meaningful across
        batches.
        """
        finite = np.ones(n_rows, dtype=bool)
        per_partition = {}
        for partition in self.partitions:
            ok = np.isfinite(arrays[partition.name]).all(axis=1)
            per_partition[partition.name] = ok
            finite &= ok
        bad_indices = np.flatnonzero(~finite)
        for index in bad_indices:
            culprits = [
                name for name, ok in per_partition.items() if not ok[index]
            ]
            values = tuple(
                value
                for partition in self.partitions
                for value in arrays[partition.name][index].tolist()
            )
            sink.divert(
                self._rows_seen + int(index),
                "non-finite value in partition(s) " + ", ".join(culprits),
                values,
            )
        n_good = int(finite.sum())
        sink.note_ok(n_good)
        if n_good == n_rows:
            return arrays, n_rows
        return (
            {name: matrix[finite] for name, matrix in arrays.items()},
            n_good,
        )

    # ------------------------------------------------------------------

    def _initialize(self, matrices: Mapping[str, np.ndarray]) -> None:
        density: Dict[str, float] = {}
        for partition in self.partitions:
            explicit = self._explicit_density.get(partition.name)
            if explicit is not None:
                density[partition.name] = float(explicit)
            else:
                spread = CF.of_points(
                    np.atleast_2d(np.asarray(matrices[partition.name], float))
                ).rms_diameter
                derived = self.config.density_fraction * spread
                density[partition.name] = derived if derived > 0 else 1e-9
        self._density = density
        for partition in self.partitions:
            cross_dimensions = {
                p.name: p.dimension for p in self.partitions if p.name != partition.name
            }
            self._trees[partition.name] = ACFTree(
                dimension=partition.dimension,
                threshold=density[partition.name],
                branching=self.config.birch.branching,
                leaf_capacity=self.config.birch.leaf_capacity,
                cross_dimensions=cross_dimensions,
            )
            self._schedules[partition.name] = ThresholdSchedule(
                growth_factor=self.config.birch.threshold_growth
            )
            self._memory_models[partition.name] = MemoryModel(
                dimension=partition.dimension,
                cross_dimensions=cross_dimensions,
                branching=self.config.birch.branching,
                leaf_capacity=self.config.birch.leaf_capacity,
            )

    def _enforce_budget(self, name: str) -> None:
        budget = self.config.birch.memory_limit_bytes
        if budget is None:
            return
        tree = self._trees[name]
        model = self._memory_models[name]
        attempts = 0
        while (
            model.tree_bytes(*tree.summary_counts()) > budget
            and attempts < self.config.birch.max_rebuilds_per_overflow
        ):
            tree = rebuild_tree(
                tree,
                self._schedules[name].next_threshold(tree),
                stats=self._scan_stats[name],
            )
            attempts += 1
        self._trees[name] = tree

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The miner's complete state as plain built-in types.

        Everything needed for an exact resume: config, partition layout,
        the density thresholds fixed by the first batch, every tree's
        structural state (see :meth:`ACFTree.state_dict` — this also
        quiesces the trees' batch engines so the checkpointed run and a
        resumed run evolve identically from here on), threshold schedules,
        accumulated scan stats, and the row counters.
        """
        return {
            "kind": _CHECKPOINT_KIND,
            "config": asdict(self.config),
            "partitions": [
                {
                    "name": p.name,
                    "attributes": list(p.attributes),
                    "metric": p.metric,
                }
                for p in self.partitions
            ],
            "explicit_density": dict(self._explicit_density),
            "density": dict(self._density) if self._density is not None else None,
            "trees": {
                name: tree.state_dict() for name, tree in self._trees.items()
            },
            "schedules": {
                name: schedule.state_dict()
                for name, schedule in self._schedules.items()
            },
            "scan_stats": {
                name: stats.to_dict() for name, stats in self._scan_stats.items()
            },
            "n_points": self._n_points,
            "rows_seen": self._rows_seen,
        }

    def save_checkpoint(self, path: Union[str, Path]):
        """Write the full state to ``path`` atomically.

        Returns a :class:`~repro.resilience.checkpoint.CheckpointInfo`
        (size and timing, surfaced by the CLI ``--stats``).  A crash
        mid-save leaves any previous checkpoint at ``path`` intact.
        """
        from repro.resilience.checkpoint import write_checkpoint

        info = write_checkpoint(self.state_dict(), path)
        self._last_checkpoint_monotonic = time.monotonic()
        return info

    @classmethod
    def from_checkpoint(cls, path: Union[str, Path]) -> "StreamingDARMiner":
        """Restore a miner from :meth:`save_checkpoint` output.

        The restored miner absorbs subsequent batches with bit-identical
        results to the original: leaf moments, routing decisions and the
        eventual rule set all match an uninterrupted run fed the same
        stream.  Raises the :mod:`repro.resilience.errors` checkpoint
        errors on damaged or incompatible files.
        """
        from repro.resilience.checkpoint import read_checkpoint

        state = read_checkpoint(path)
        if state.get("kind") != _CHECKPOINT_KIND:
            raise CheckpointCorruptError(
                f"{path}: checkpoint holds a {state.get('kind')!r} state, "
                f"not a {_CHECKPOINT_KIND!r}"
            )
        try:
            miner = cls._from_state(state)
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptError(
                f"{path}: checkpoint payload is structurally invalid: {error}"
            ) from error
        return miner

    @classmethod
    def _from_state(cls, state: Mapping[str, object]) -> "StreamingDARMiner":
        config = DARConfig.from_mapping(state["config"])
        partitions = [
            AttributePartition(
                name=p["name"],
                attributes=tuple(p["attributes"]),
                metric=p.get("metric", "euclidean"),
            )
            for p in state["partitions"]
        ]
        miner = cls(
            partitions,
            config,
            density_thresholds={
                name: float(value)
                for name, value in state["explicit_density"].items()
            },
        )
        density = state["density"]
        if density is not None:
            miner._density = {name: float(value) for name, value in density.items()}
            miner._trees = {
                name: ACFTree.from_state(tree_state)
                for name, tree_state in state["trees"].items()
            }
            miner._schedules = {
                name: ThresholdSchedule.from_state(schedule_state)
                for name, schedule_state in state["schedules"].items()
            }
            # Memory models carry no evolving state; recreate them exactly
            # as _initialize does.
            for partition in miner.partitions:
                miner._memory_models[partition.name] = MemoryModel(
                    dimension=partition.dimension,
                    cross_dimensions={
                        p.name: p.dimension
                        for p in miner.partitions
                        if p.name != partition.name
                    },
                    branching=config.birch.branching,
                    leaf_capacity=config.birch.leaf_capacity,
                )
            missing = {p.name for p in miner.partitions} - set(miner._trees)
            if missing:
                raise ValueError(f"trees missing for partitions {sorted(missing)}")
        miner._scan_stats = {
            name: ScanStats.from_dict(stats_state)
            for name, stats_state in state["scan_stats"].items()
        }
        miner._n_points = int(state["n_points"])
        miner._rows_seen = int(state["rows_seen"])
        # The checkpoint we just read is, by definition, current.
        miner._last_checkpoint_monotonic = time.monotonic()
        return miner

    # ------------------------------------------------------------------

    def health(
        self, thresholds: Optional[HealthThresholds] = None
    ) -> HealthReport:
        """Grade the miner's live state as ``ok`` / ``warn`` / ``crit``.

        Monitors the slow failure modes of a long stream: total leaf
        entries across trees, density-threshold inflation relative to the
        first batch (memory-pressure escalations coarsen summaries), the
        accumulated rebuild count, the quarantine rate (rows offered but
        not absorbed), and — once checkpointing has started — the age of
        the last successful checkpoint.  See
        :class:`repro.obs.health.HealthThresholds` for the trip points.
        """
        if self._density is None:
            raise RuntimeError("no data yet: health is defined after the first batch")
        leaf_entries = {
            name: tree.summary_counts()[0] for name, tree in self._trees.items()
        }
        inflation = {
            name: (tree.threshold / self._density[name])
            if self._density[name] > 0
            else 1.0
            for name, tree in self._trees.items()
        }
        rebuilds = {
            name: stats.rebuilds for name, stats in self._scan_stats.items()
        }
        age = (
            time.monotonic() - self._last_checkpoint_monotonic
            if self._last_checkpoint_monotonic is not None
            else None
        )
        return HealthMonitor(thresholds).evaluate(
            leaf_entries=leaf_entries,
            threshold_inflation=inflation,
            rebuilds=rebuilds,
            rows_seen=self._rows_seen,
            rows_quarantined=self._rows_seen - self._n_points,
            checkpoint_age_seconds=age,
            checkpointing=self._last_checkpoint_monotonic is not None,
        )

    def rules(self) -> DARResult:
        """Materialize the current rule set from the live summaries.

        Runs the summary-only Phase II (graph, cliques, assoc sets) on a
        snapshot of each tree's entries.  Cheap relative to the stream —
        the paper's §7.2 point that Phase II cost tracks data complexity,
        not data volume, is exactly what makes an anytime API viable.
        """
        if self._density is None or self._n_points == 0:
            raise RuntimeError("no data absorbed yet")
        frequency_count = max(
            1, math.ceil(self.config.frequency_fraction * self._n_points)
        )
        degree = {
            p.name: self.config.degree_threshold(p.name, self._density[p.name])
            for p in self.partitions
        }

        uid = itertools.count()
        all_clusters: Dict[str, List[Cluster]] = {}
        frequent_clusters: Dict[str, List[Cluster]] = {}
        for partition in self.partitions:
            clusters = [
                Cluster(uid=next(uid), partition=partition, acf=acf.copy())
                for acf in self._trees[partition.name].entries()
            ]
            all_clusters[partition.name] = clusters
            frequent = [c for c in clusters if c.n >= frequency_count]
            if frequent:
                frequent_clusters[partition.name] = frequent

        phase2 = Phase2Stats()
        started = time.perf_counter()
        flat = [c for group in frequent_clusters.values() for c in group]
        phase2.n_clusters = sum(len(g) for g in all_clusters.values())
        phase2.n_frequent_clusters = len(flat)

        graph = None
        cliques: List[FrozenSet[int]] = []
        rules = []
        with span("phase2", frequent_clusters=len(flat), streaming=True):
            if len(frequent_clusters) >= 2:
                engine = self.config.phase2_engine
                if engine == "auto":
                    engine = "vector" if Phase2Kernel.supports(flat) else "scalar"
                lenient = {
                    name: self.config.phase2_leniency * threshold
                    for name, threshold in self._density.items()
                }
                kernel = None
                stage = time.perf_counter()
                with span("phase2.graph") as graph_span:
                    if engine == "vector":
                        try:
                            faults.fire("phase2.kernel")
                            kernel = Phase2Kernel(flat, metric=self.config.metric)
                            graph = kernel.build_graph(
                                lenient,
                                use_density_pruning=self.config.use_density_pruning,
                                pruning_diameter_factor=self.config.pruning_diameter_factor,
                            )
                        except Exception as error:
                            phase2.events.append(record_guard_event(
                                "kernel_fallback",
                                f"vector Phase II kernel failed ({error}); "
                                f"degraded to the scalar engine",
                            ))
                            engine = "scalar"
                            kernel = None
                            graph = None
                    if kernel is None:
                        graph = build_clustering_graph(
                            flat,
                            lenient,
                            metric=self.config.metric,
                            use_density_pruning=self.config.use_density_pruning,
                            pruning_diameter_factor=self.config.pruning_diameter_factor,
                            engine="scalar",
                        )
                    graph_span.set("engine", engine)
                    graph_span.set("edges", graph.n_edges)
                phase2.engine = engine
                phase2.graph_seconds = time.perf_counter() - stage

                stage = time.perf_counter()
                with span("phase2.cliques") as clique_span:
                    cliques = maximal_cliques(graph.adjacency)
                    clique_span.set("cliques", len(cliques))
                phase2.clique_seconds = time.perf_counter() - stage

                stage = time.perf_counter()
                with span("phase2.rules") as rules_span:
                    helper = DARMiner(self.config)
                    rules = helper._rules_from_cliques(
                        graph, cliques, degree, kernel=kernel
                    )
                    rules_span.set("rules", len(rules))
                phase2.rules_seconds = time.perf_counter() - stage

                phase2.n_edges = graph.n_edges
                phase2.comparisons = graph.stats.comparisons
                phase2.comparisons_skipped = graph.stats.skipped
            phase2.n_cliques = len(cliques)
            phase2.n_non_trivial_cliques = len(non_trivial_cliques(cliques))
            phase2.n_rules = len(rules)
        phase2.seconds = time.perf_counter() - started
        phase2.publish()

        # A streaming run has no single Phase I pass; expose the live
        # per-partition scan instrumentation in the same slot the batch
        # miner uses so downstream reporting is uniform.
        phase1 = {
            p.name: Phase1Stats(
                points_inserted=self._n_points,
                final_entry_count=len(all_clusters[p.name]),
                scan=self._scan_stats[p.name],
            )
            for p in self.partitions
        }

        return DARResult(
            rules=rules,
            frequent_clusters=frequent_clusters,
            all_clusters=all_clusters,
            graph=graph,
            cliques=cliques,
            density_thresholds=dict(self._density),
            degree_thresholds=degree,
            frequency_count=frequency_count,
            phase1=phase1,
            phase2=phase2,
        )
