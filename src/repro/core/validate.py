"""Raw-data validation of mined rules.

Phase II works on summaries (ACFs); its image distances are exact for D1
and moment-based (RMS) for D2, and cluster membership is the approximate
closest-centroid assignment of §4.3.2.  This module recomputes a rule's
measures from the raw relation:

* the *raw degree* — Eq. 6's average inter-cluster distance between the
  actual tuple sets' projections;
* the *raw diameters* of each participating cluster (Eq. 2);
* classical support/confidence of the rule under closest-centroid
  membership.

Useful for auditing a mining run ("how far are the summary-based degrees
from the raw ones?") and used by the validation ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.birch.birch import assign_to_centroids
from repro.core.cluster import Cluster
from repro.core.miner import DARResult
from repro.core.rules import DistanceRule
from repro.data.relation import Relation
from repro.metrics.cluster import d2_average_inter_cluster
from repro.metrics.distance import euclidean

__all__ = ["RuleAudit", "audit_rule", "audit_result"]


@dataclass(frozen=True)
class RuleAudit:
    """Summary-based vs raw measures for one rule."""

    rule: DistanceRule
    summary_degree: float
    raw_degree: float
    support_count: int
    confidence: float

    @property
    def degree_gap(self) -> float:
        """|summary - raw| relative to the raw degree (0 when both are 0)."""
        if self.raw_degree == 0:
            return abs(self.summary_degree)
        return abs(self.summary_degree - self.raw_degree) / self.raw_degree


def _membership_masks(
    relation: Relation, clusters_by_partition: Mapping[str, Sequence[Cluster]]
) -> Dict[int, np.ndarray]:
    """Closest-centroid membership mask per cluster uid (§4.3.2 labeling)."""
    masks: Dict[int, np.ndarray] = {}
    for name, clusters in clusters_by_partition.items():
        if not clusters:
            continue
        attributes = clusters[0].partition.attributes
        points = relation.matrix(attributes)
        centroids = np.stack([cluster.centroid for cluster in clusters])
        labels = assign_to_centroids(points, centroids)
        for index, cluster in enumerate(clusters):
            masks[cluster.uid] = labels == index
    return masks


def audit_rule(
    rule: DistanceRule,
    relation: Relation,
    masks: Mapping[int, np.ndarray],
) -> RuleAudit:
    """Recompute one rule's degree and classical measures from raw data.

    ``masks`` maps cluster uid to its membership mask (see
    :func:`audit_result` for the standard construction).  The raw degree
    follows Dfn 5.3: the max over (antecedent, consequent) pairs of the
    Eq. 6 average inter-cluster distance between the consequent cluster
    and the antecedent's image, both projected on the consequent's
    partition.
    """
    raw_degree = 0.0
    for consequent in rule.consequent:
        projections = relation.matrix(consequent.partition.attributes)
        consequent_points = projections[masks[consequent.uid]]
        if consequent_points.shape[0] == 0:
            raise ValueError(f"cluster {consequent.uid} has no member tuples")
        for antecedent in rule.antecedent:
            antecedent_points = projections[masks[antecedent.uid]]
            if antecedent_points.shape[0] == 0:
                raise ValueError(f"cluster {antecedent.uid} has no member tuples")
            raw_degree = max(
                raw_degree,
                d2_average_inter_cluster(
                    consequent_points, antecedent_points, metric=euclidean
                ),
            )

    joint: Optional[np.ndarray] = None
    antecedent_mask: Optional[np.ndarray] = None
    for cluster in rule.antecedent:
        mask = masks[cluster.uid]
        antecedent_mask = mask if antecedent_mask is None else antecedent_mask & mask
    joint = antecedent_mask.copy()
    for cluster in rule.consequent:
        joint &= masks[cluster.uid]
    support_count = int(np.count_nonzero(joint))
    antecedent_count = int(np.count_nonzero(antecedent_mask))
    confidence = support_count / antecedent_count if antecedent_count else 0.0

    return RuleAudit(
        rule=rule,
        summary_degree=rule.degree,
        raw_degree=raw_degree,
        support_count=support_count,
        confidence=confidence,
    )


def audit_result(result: DARResult, relation: Relation) -> List[RuleAudit]:
    """Audit every rule of a mining run against the raw relation."""
    masks = _membership_masks(relation, result.frequent_clusters)
    return [audit_rule(rule, relation, masks) for rule in result.rules]
