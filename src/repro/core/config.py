"""Configuration for the distance-based association rule miner.

The thresholds mirror the paper's notation:

* ``d0[X]`` — per-partition *density* (diameter) thresholds of Dfn 4.2,
  which also gate clustering-graph edges (Dfn 6.1);
* ``s0`` — the *frequency* threshold, expressed as a fraction of ``|r|``
  (the paper's experiments use 3%);
* ``D0[Y]`` — per-partition *degree of association* thresholds of
  Dfn 5.1/5.3.

Each threshold may be given explicitly per partition; otherwise it is
derived from the data: ``d0[X] = density_fraction x`` (RMS diameter of the
whole column), and ``D0[Y] = degree_factor x d0[Y]``.  Phase II uses
``phase2_leniency x d0`` for graph edges — the paper reports that "using a
more lenient (higher) threshold in Phase II produces a better set of
rules" (Section 6.2).

The cluster-distance metric is named ``metric`` everywhere (config field,
``image_distance``, ``build_clustering_graph``); the former
``cluster_metric`` spelling survives as a deprecation shim — both the
constructor keyword and the attribute warn once per process and forward
to ``metric``.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Optional

from repro.birch.birch import BirchOptions

__all__ = ["DARConfig"]


_WARNED_DEPRECATIONS: set = set()

#: Environment flag turning every deprecation shim into a hard error.
#: CI's deprecation job sets it so deprecated spellings cannot creep back
#: into the codebase; local runs keep the friendly warn-once behavior.
STRICT_DEPRECATIONS_ENV = "REPRO_STRICT_DEPRECATIONS"


def _strict_deprecations() -> bool:
    """Whether deprecated spellings should raise instead of warn."""
    value = os.environ.get(STRICT_DEPRECATIONS_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def _warn_deprecated(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per process per key.

    Under ``REPRO_STRICT_DEPRECATIONS`` the warning is raised as an
    exception instead (every time, not once) — the strict mode the CI
    deprecation job runs in.
    """
    if _strict_deprecations():
        raise DeprecationWarning(message)
    if key in _WARNED_DEPRECATIONS:
        return
    _WARNED_DEPRECATIONS.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


@dataclass(frozen=True)
class DARConfig:
    """All knobs of the two-phase DAR miner."""

    frequency_fraction: float = 0.03
    density_fraction: float = 0.15
    density_thresholds: Mapping[str, float] = field(default_factory=dict)
    degree_factor: float = 2.0
    degree_thresholds: Mapping[str, float] = field(default_factory=dict)
    phase2_leniency: float = 2.0
    metric: str = "d2"
    max_antecedent: int = 3
    max_consequent: int = 2
    max_antecedent_candidates: int = 32
    use_density_pruning: bool = True
    pruning_diameter_factor: float = 2.0
    count_rule_support: bool = False
    rule_support_fraction: Optional[float] = None
    birch: BirchOptions = field(default_factory=BirchOptions)
    phase2_engine: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency_fraction <= 1.0:
            raise ValueError("frequency_fraction must be in (0, 1]")
        if self.density_fraction <= 0:
            raise ValueError("density_fraction must be positive")
        if self.degree_factor <= 0:
            raise ValueError("degree_factor must be positive")
        if self.phase2_leniency < 1.0:
            raise ValueError("phase2_leniency must be at least 1 (more lenient)")
        if self.metric not in ("d1", "d2"):
            raise ValueError("metric must be 'd1' or 'd2'")
        if self.max_antecedent < 1 or self.max_consequent < 1:
            raise ValueError("rule arity bounds must be at least 1")
        if self.max_antecedent_candidates < 1:
            raise ValueError("max_antecedent_candidates must be at least 1")
        if self.pruning_diameter_factor <= 0:
            raise ValueError("pruning_diameter_factor must be positive")
        if self.rule_support_fraction is not None and not (
            0.0 <= self.rule_support_fraction <= 1.0
        ):
            raise ValueError("rule_support_fraction must be in [0, 1]")
        if self.phase2_engine not in ("auto", "vector", "scalar"):
            raise ValueError(
                f"phase2_engine must be 'auto', 'vector' or 'scalar', "
                f"got {self.phase2_engine!r}"
            )

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "DARConfig":
        """Build a config from a plain mapping (parsed JSON/TOML/YAML).

        Accepts exactly the constructor's keywords (including the
        deprecated ``cluster_metric`` alias); ``birch`` may itself be a
        mapping of :class:`~repro.birch.birch.BirchOptions` fields.
        Unknown keys raise a ``ValueError`` naming the offending key and
        the accepted ones, so a typo in a config file fails loudly instead
        of being silently dropped.
        """
        data = dict(mapping)
        if "cluster_metric" in data:
            if "metric" in data:
                raise ValueError(
                    "pass either 'metric' or the deprecated 'cluster_metric', "
                    "not both"
                )
            _warn_deprecated(
                "DARConfig.from_mapping:cluster_metric",
                "the 'cluster_metric' key is deprecated; use 'metric'",
            )
            data["metric"] = data.pop("cluster_metric")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown DARConfig key(s) {unknown}; accepted keys: "
                f"{sorted(known)}"
            )
        birch = data.get("birch")
        if isinstance(birch, Mapping):
            birch_known = {f.name for f in fields(BirchOptions)}
            birch_unknown = sorted(set(birch) - birch_known)
            if birch_unknown:
                raise ValueError(
                    f"unknown BirchOptions key(s) {birch_unknown}; accepted "
                    f"keys: {sorted(birch_known)}"
                )
            data["birch"] = BirchOptions(**birch)
        return cls(**data)

    def with_thresholds(
        self,
        *,
        density: Optional[Mapping[str, float]] = None,
        degree: Optional[Mapping[str, float]] = None,
    ) -> "DARConfig":
        """A copy with explicit per-partition ``d0`` / ``D0`` thresholds.

        New entries are merged over any already-configured ones.  Every
        value must be a positive finite number; violations name the
        partition so sweep scripts fail with an actionable message.
        """
        def checked(kind: str, mapping: Mapping[str, float]) -> dict:
            out = {}
            for name, value in mapping.items():
                if not isinstance(name, str):
                    raise ValueError(
                        f"{kind} threshold keys must be partition names, "
                        f"got {name!r}"
                    )
                number = float(value)
                if not (number > 0 and math.isfinite(number)):
                    raise ValueError(
                        f"{kind} threshold for {name!r} must be a positive "
                        f"finite number, got {value!r}"
                    )
                out[name] = number
            return out

        updates = {}
        if density is not None:
            updates["density_thresholds"] = {
                **dict(self.density_thresholds),
                **checked("density", density),
            }
        if degree is not None:
            updates["degree_thresholds"] = {
                **dict(self.degree_thresholds),
                **checked("degree", degree),
            }
        if not updates:
            raise ValueError("with_thresholds needs density=... and/or degree=...")
        return replace(self, **updates)

    # ------------------------------------------------------------------
    # Threshold resolution
    # ------------------------------------------------------------------

    def density_threshold(self, partition_name: str, derived: float) -> float:
        """``d0`` for a partition: the explicit value, else the derived one."""
        return float(self.density_thresholds.get(partition_name, derived))

    def degree_threshold(self, partition_name: str, density: float) -> float:
        """``D0`` for a consequent partition, defaulting to
        ``degree_factor x d0``."""
        explicit = self.degree_thresholds.get(partition_name)
        if explicit is not None:
            return float(explicit)
        return self.degree_factor * density

    def with_birch(self, birch: BirchOptions) -> "DARConfig":
        """A copy with different Phase I options (convenience for sweeps)."""
        return replace(self, birch=birch)

    # ------------------------------------------------------------------
    # Deprecated aliases
    # ------------------------------------------------------------------

    @property
    def cluster_metric(self) -> str:
        """Deprecated alias of :attr:`metric` (warns once per process)."""
        _warn_deprecated(
            "DARConfig.cluster_metric",
            "DARConfig.cluster_metric is deprecated; use DARConfig.metric",
        )
        return self.metric


# ``cluster_metric=`` constructor shim: wrap the dataclass-generated
# __init__ so the old keyword keeps working (warning once) without
# disturbing the dataclass machinery (fields, replace, repr).
_DATACLASS_INIT = DARConfig.__init__


def _init_with_aliases(self, *args, **kwargs):  # noqa: ANN001
    if "cluster_metric" in kwargs:
        if "metric" in kwargs:
            raise TypeError(
                "pass either metric= or the deprecated cluster_metric=, not both"
            )
        _warn_deprecated(
            "DARConfig(cluster_metric=)",
            "DARConfig(cluster_metric=...) is deprecated; use metric=...",
        )
        kwargs["metric"] = kwargs.pop("cluster_metric")
    _DATACLASS_INIT(self, *args, **kwargs)


_init_with_aliases.__wrapped__ = _DATACLASS_INIT
DARConfig.__init__ = _init_with_aliases
