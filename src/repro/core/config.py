"""Configuration for the distance-based association rule miner.

The thresholds mirror the paper's notation:

* ``d0[X]`` — per-partition *density* (diameter) thresholds of Dfn 4.2,
  which also gate clustering-graph edges (Dfn 6.1);
* ``s0`` — the *frequency* threshold, expressed as a fraction of ``|r|``
  (the paper's experiments use 3%);
* ``D0[Y]`` — per-partition *degree of association* thresholds of
  Dfn 5.1/5.3.

Each threshold may be given explicitly per partition; otherwise it is
derived from the data: ``d0[X] = density_fraction x`` (RMS diameter of the
whole column), and ``D0[Y] = degree_factor x d0[Y]``.  Phase II uses
``phase2_leniency x d0`` for graph edges — the paper reports that "using a
more lenient (higher) threshold in Phase II produces a better set of
rules" (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.birch.birch import BirchOptions

__all__ = ["DARConfig"]


@dataclass(frozen=True)
class DARConfig:
    """All knobs of the two-phase DAR miner."""

    frequency_fraction: float = 0.03
    density_fraction: float = 0.15
    density_thresholds: Mapping[str, float] = field(default_factory=dict)
    degree_factor: float = 2.0
    degree_thresholds: Mapping[str, float] = field(default_factory=dict)
    phase2_leniency: float = 2.0
    cluster_metric: str = "d2"
    max_antecedent: int = 3
    max_consequent: int = 2
    max_antecedent_candidates: int = 32
    use_density_pruning: bool = True
    pruning_diameter_factor: float = 2.0
    count_rule_support: bool = False
    rule_support_fraction: Optional[float] = None
    birch: BirchOptions = field(default_factory=BirchOptions)

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency_fraction <= 1.0:
            raise ValueError("frequency_fraction must be in (0, 1]")
        if self.density_fraction <= 0:
            raise ValueError("density_fraction must be positive")
        if self.degree_factor <= 0:
            raise ValueError("degree_factor must be positive")
        if self.phase2_leniency < 1.0:
            raise ValueError("phase2_leniency must be at least 1 (more lenient)")
        if self.cluster_metric not in ("d1", "d2"):
            raise ValueError("cluster_metric must be 'd1' or 'd2'")
        if self.max_antecedent < 1 or self.max_consequent < 1:
            raise ValueError("rule arity bounds must be at least 1")
        if self.max_antecedent_candidates < 1:
            raise ValueError("max_antecedent_candidates must be at least 1")
        if self.pruning_diameter_factor <= 0:
            raise ValueError("pruning_diameter_factor must be positive")
        if self.rule_support_fraction is not None and not (
            0.0 <= self.rule_support_fraction <= 1.0
        ):
            raise ValueError("rule_support_fraction must be in [0, 1]")

    def density_threshold(self, partition_name: str, derived: float) -> float:
        """``d0`` for a partition: the explicit value, else the derived one."""
        return float(self.density_thresholds.get(partition_name, derived))

    def degree_threshold(self, partition_name: str, density: float) -> float:
        """``D0`` for a consequent partition, defaulting to
        ``degree_factor x d0``."""
        explicit = self.degree_thresholds.get(partition_name)
        if explicit is not None:
            return float(explicit)
        return self.degree_factor * density

    def with_birch(self, birch: BirchOptions) -> "DARConfig":
        """A copy with different Phase I options (convenience for sweeps)."""
        return replace(self, birch=birch)
