"""Maximal clique enumeration over the clustering graph.

Section 6.2: "From the clustering graph, we find all maximal cliques.
These cliques correspond to large itemsets for DARs."  We use the
Bron–Kerbosch algorithm with Tomita-style pivoting, which is the standard
output-sensitive enumerator; the paper notes that in practice the graph is
sparse ("the number of edges ... only a small constant times the number of
nodes"), so enumeration is cheap.

Isolated vertices are emitted as trivial 1-cliques, matching the paper's
"by definition a single vertex is a trivial 1-clique", so that every
frequent cluster can still participate in rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

__all__ = ["maximal_cliques", "non_trivial_cliques"]


def maximal_cliques(adjacency: Dict[int, Set[int]]) -> List[FrozenSet[int]]:
    """All maximal cliques of an undirected graph given as adjacency sets.

    The adjacency mapping must be symmetric and irreflexive; every vertex
    must appear as a key (possibly with an empty neighbor set).  Results
    are sorted (by size descending, then lexicographically) so downstream
    behaviour is deterministic.
    """
    for vertex, neighbors in adjacency.items():
        if vertex in neighbors:
            raise ValueError(f"self-loop on vertex {vertex}")
        for neighbor in neighbors:
            if vertex not in adjacency.get(neighbor, ()):
                raise ValueError(f"asymmetric edge {vertex}->{neighbor}")

    cliques: List[FrozenSet[int]] = []

    def expand(r: Set[int], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Tomita pivot: the vertex of P | X with the most neighbors in P.
        pivot = max(p | x, key=lambda u: len(adjacency[u] & p))
        for v in sorted(p - adjacency[pivot]):
            neighbors = adjacency[v]
            expand(r | {v}, p & neighbors, x & neighbors)
            p.remove(v)
            x.add(v)

    expand(set(), set(adjacency), set())
    cliques.sort(key=lambda clique: (-len(clique), sorted(clique)))
    return cliques


def non_trivial_cliques(cliques: Iterable[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Cliques with at least two vertices (the count §7.2 reports)."""
    return [clique for clique in cliques if len(clique) >= 2]
