"""Rule interest for interval data, and the bridge to classical measures.

Section 5.1 shows that distance-based rules *generalize* classical rules:
over nominal data with the 0/1 metric,

* Theorem 5.1 — a non-empty cluster has diameter 0 iff it is value-pure;
* Theorem 5.2 — ``A=a => B=b`` holds with confidence ``c`` iff the DAR
  ``C_A => C_B`` holds with degree ``1 - c`` under D2.

This module implements both directions of that bridge, plus the raw-data
degree-of-association computations used by the Figure 2 and Figure 4
experiments (where clusters are explicit tuple sets rather than ACFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.metrics.cluster import d2_average_inter_cluster, diameter
from repro.metrics.distance import discrete, get_metric

__all__ = [
    "degree_from_confidence",
    "confidence_from_degree",
    "nominal_cluster_degree",
    "nominal_cluster_diameter",
    "RuleInterest",
    "distance_rule_interest",
    "classical_rule_interest",
]


def degree_from_confidence(confidence: float) -> float:
    """Theorem 5.2, forward direction: degree = 1 - confidence."""
    if not 0.0 <= confidence <= 1.0:
        raise ValueError("confidence must be in [0, 1]")
    return 1.0 - confidence


def confidence_from_degree(degree: float) -> float:
    """Theorem 5.2, reverse direction: confidence = 1 - degree."""
    if not 0.0 <= degree <= 1.0:
        raise ValueError("a 0/1-metric degree must be in [0, 1]")
    return 1.0 - degree


def nominal_cluster_diameter(values: Sequence[Hashable]) -> float:
    """Diameter of a value multiset under the 0/1 metric (Theorem 5.1).

    Returns 0 iff all values are equal (or the set is a singleton/empty).
    """
    encoded = _encode_nominal(values)
    return diameter(encoded.reshape(-1, 1), metric=discrete)


def nominal_cluster_degree(
    antecedent_values: Sequence[Hashable], consequent_values: Sequence[Hashable]
) -> float:
    """D2(C_B[B], C_A[B]) under the 0/1 metric.

    ``antecedent_values`` are the B-projections of the antecedent cluster's
    tuples; ``consequent_values`` those of the consequent cluster.  Used to
    verify Theorem 5.2 empirically.
    """
    joint = list(antecedent_values) + list(consequent_values)
    encoded = _encode_nominal(joint)
    a = encoded[: len(antecedent_values)].reshape(-1, 1)
    b = encoded[len(antecedent_values) :].reshape(-1, 1)
    return d2_average_inter_cluster(b, a, metric=discrete)


def _encode_nominal(values: Sequence[Hashable]) -> np.ndarray:
    """Map arbitrary hashable values to distinct floats (0/1-metric safe)."""
    codes = {}
    encoded = np.empty(len(values), dtype=np.float64)
    for i, value in enumerate(values):
        encoded[i] = codes.setdefault(value, float(len(codes)))
    return encoded


@dataclass(frozen=True)
class RuleInterest:
    """Side-by-side interest measures for one rule on one relation.

    ``support``/``confidence`` are the classical measures; ``degree`` is
    the distance-based measure D(C_Y[Y], C_X[Y]) computed on raw data.  A
    smaller degree means a stronger rule — the inversion the paper builds
    Goal 3 around.
    """

    support: float
    confidence: float
    degree: float

    def stronger_than(self, other: "RuleInterest") -> bool:
        """Distance-based comparison: strictly smaller degree."""
        return self.degree < other.degree


def classical_rule_interest(
    relation: Relation,
    antecedent_mask: Sequence[bool],
    consequent_mask: Sequence[bool],
) -> Tuple[float, float]:
    """(support, confidence) of ``C1 => C2`` given satisfaction masks."""
    a = np.asarray(antecedent_mask, dtype=bool)
    c = np.asarray(consequent_mask, dtype=bool)
    if a.shape != c.shape or a.shape != (len(relation),):
        raise ValueError("masks must match the relation size")
    both = int(np.count_nonzero(a & c))
    n = len(relation)
    support = both / n if n else 0.0
    antecedent_count = int(np.count_nonzero(a))
    confidence = both / antecedent_count if antecedent_count else 0.0
    return support, confidence


def distance_rule_interest(
    relation: Relation,
    antecedent_mask: Sequence[bool],
    consequent_mask: Sequence[bool],
    consequent_attributes: Sequence[str],
    metric: str = "euclidean",
) -> RuleInterest:
    """All three interest measures for a rule ``C_X => C_Y``.

    ``consequent_attributes`` is the attribute set ``Y``; the degree is
    ``D2(C_Y[Y], C_X[Y])`` on the raw projections (Eq. 6), which is the
    measure Dfn 5.1 uses.  The classical measures use exact set
    membership on the same masks.
    """
    support, confidence = classical_rule_interest(
        relation, antecedent_mask, consequent_mask
    )
    a = np.asarray(antecedent_mask, dtype=bool)
    c = np.asarray(consequent_mask, dtype=bool)
    if not a.any() or not c.any():
        raise ValueError("both clusters must be non-empty to measure a degree")
    point_metric = get_metric(metric)
    projections = relation.matrix(list(consequent_attributes))
    degree = d2_average_inter_cluster(
        projections[c], projections[a], metric=point_metric
    )
    return RuleInterest(support=support, confidence=confidence, degree=degree)
