"""The two-phase distance-based association rule miner (Section 6).

Phase I clusters every attribute partition with the adaptive ACF-tree
(:mod:`repro.birch`); Phase II works entirely on the resulting summaries:
it builds the clustering graph (Dfn 6.1), enumerates maximal cliques,
computes ``assoc`` sets per consequent cluster and emits every
Dfn 5.3-valid rule within the configured arity bounds.  Optionally a single
post-scan counts the classical support of each candidate rule (the
"Reducing the cost of Phase II" / post-processing remark of Section 6.2).
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.birch.batch import ScanStats
from repro.birch.birch import BirchClusterer, Phase1Stats, assign_to_centroids
from repro.birch.features import CF
from repro.core.cliques import maximal_cliques, non_trivial_cliques
from repro.core.cluster import Cluster, image_distance
from repro.core.config import DARConfig
from repro.core.graph import ClusteringGraph, build_clustering_graph
from repro.core.phase2_kernel import Phase2Kernel
from repro.core.rules import DistanceRule, RuleList
from repro.data.columnar.chunks import ChunkIterator
from repro.data.columnar.store import ColumnStore
from repro.data.relation import AttributePartition, Relation, default_partitions
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.errors import ValidationError
from repro.resilience.events import GuardEvent, record_guard_event

__all__ = ["DARMiner", "DARResult", "Phase2Stats"]


@dataclass
class Phase2Stats:
    """Diagnostics of the in-memory rule-formation phase.

    ``engine`` is the resolved distance engine (``"vector"`` for the
    blocked numpy kernel, ``"scalar"`` for per-pair Python calls, empty
    when Phase II never ran) — resolved *after* any degradation, so it
    always names the engine that actually produced the graph.  ``events``
    records graceful degradations in order (e.g. a vector-kernel failure
    that fell back to the scalar engine, or a guarded retry after memory
    exhaustion); an empty list means the run was clean.  The
    ``*_seconds`` fields break ``seconds`` down by stage: image-moment
    extraction, clustering-graph build, maximal-clique enumeration and
    rule emission (assoc sets, antecedent search, degree computation).
    """

    seconds: float = 0.0
    n_clusters: int = 0
    n_frequent_clusters: int = 0
    n_cliques: int = 0
    n_non_trivial_cliques: int = 0
    n_edges: int = 0
    comparisons: int = 0
    comparisons_skipped: int = 0
    n_rules: int = 0
    engine: str = ""
    extract_seconds: float = 0.0
    graph_seconds: float = 0.0
    clique_seconds: float = 0.0
    rules_seconds: float = 0.0
    events: List[GuardEvent] = field(default_factory=list)

    def stage_breakdown(self) -> Dict[str, float]:
        """Stage-name → seconds, in pipeline order (for reports/CLI)."""
        return {
            "extract": self.extract_seconds,
            "graph": self.graph_seconds,
            "cliques": self.clique_seconds,
            "rules": self.rules_seconds,
        }

    def publish(self) -> None:
        """Emit this run's Phase II numbers into the metrics registry.

        The stats object remains the per-run record (``--stats``, JSON
        export); this bridge mirrors the same values as ``repro_phase2_*``
        metrics so the registry — what ``--metrics`` and the Prometheus
        dump read — always agrees with the stats views.  Point-in-time
        quantities (cluster/clique/edge/rule counts) land in gauges
        reflecting the latest run; cumulative work (runs, comparisons,
        degradation events, seconds) lands in counters/histograms.
        No-op while metrics are disabled.
        """
        if not obs_metrics.metrics_enabled():
            return
        obs_metrics.inc(
            "repro_phase2_runs_total", help="Phase II (rule formation) executions"
        )
        obs_metrics.set_gauge(
            "repro_phase2_clusters", self.n_clusters,
            help="Clusters found by Phase I in the latest run",
        )
        obs_metrics.set_gauge(
            "repro_phase2_frequent_clusters", self.n_frequent_clusters,
            help="Clusters meeting the frequency threshold in the latest run",
        )
        obs_metrics.set_gauge(
            "repro_phase2_cliques", self.n_cliques,
            help="Maximal cliques of the clustering graph in the latest run",
        )
        obs_metrics.set_gauge(
            "repro_phase2_edges", self.n_edges,
            help="Clustering-graph edges in the latest run",
        )
        obs_metrics.set_gauge(
            "repro_phase2_rules", self.n_rules,
            help="Rules emitted by the latest run",
        )
        obs_metrics.inc(
            "repro_phase2_comparisons_total", self.comparisons,
            help="Cluster-pair distance comparisons performed",
        )
        obs_metrics.inc(
            "repro_phase2_comparisons_skipped_total", self.comparisons_skipped,
            help="Cluster-pair comparisons pruned by the density pre-filter",
        )
        obs_metrics.observe(
            "repro_phase2_seconds", self.seconds,
            help="Phase II wall time per run", unit="seconds",
        )
        for stage, seconds in self.stage_breakdown().items():
            obs_metrics.inc(
                "repro_phase2_stage_seconds_total", seconds,
                help="Phase II wall seconds by pipeline stage",
                unit="seconds", stage=stage,
            )
        for event in self.events:
            if getattr(event, "kind", None) is not None:
                # Structured GuardEvents were already counted into
                # repro_degradation_events_total by record_guard_event.
                continue
            line = str(event)
            if "columnar" in line:
                kind = "columnar_fallback"
            elif "memory" in line:
                kind = "memory_escalation"
            elif "kernel" in line:
                kind = "kernel_fallback"
            else:
                kind = "other"
            obs_metrics.inc(
                "repro_degradation_events_total",
                help="Graceful-degradation events, by kind", kind=kind,
            )


@dataclass
class DARResult:
    """Everything a mining run produced, summaries included.

    ``rules`` is a :class:`~repro.core.rules.RuleList` — a plain list
    that is also callable with a :class:`~repro.serve.query.RuleQuery`
    (or its keyword fields), the same unified query surface the serving
    layer answers: ``result.rules(targets="claims", top_k=5)``.
    """

    rules: List[DistanceRule]
    frequent_clusters: Dict[str, List[Cluster]]
    all_clusters: Dict[str, List[Cluster]]
    graph: Optional[ClusteringGraph]
    cliques: List[FrozenSet[int]]
    density_thresholds: Dict[str, float]
    degree_thresholds: Dict[str, float]
    frequency_count: int
    phase1: Dict[str, Phase1Stats]
    phase2: Phase2Stats

    def __post_init__(self) -> None:
        if not isinstance(self.rules, RuleList):
            self.rules = RuleList(self.rules)

    def cluster_by_uid(self, uid: int) -> Cluster:
        """Look up a cluster by uid across all partitions."""
        for clusters in self.all_clusters.values():
            for cluster in clusters:
                if cluster.uid == uid:
                    return cluster
        raise KeyError(f"no cluster with uid {uid}")

    def rules_sorted(self) -> List[DistanceRule]:
        """Rules ranked strongest-first (smallest degree, then most support)."""
        return sorted(
            self.rules,
            key=lambda rule: (rule.degree, -(rule.support_count or 0), str(rule)),
        )

    def scan_summary(self) -> Optional[ScanStats]:
        """All partitions' Phase I scan instrumentation merged into one.

        ``None`` when no partition ran the batch scan path (e.g.
        ``BirchOptions.batch_insert`` disabled).
        """
        merged: Optional[ScanStats] = None
        for stats in self.phase1.values():
            if stats.scan is None:
                continue
            if merged is None:
                merged = ScanStats()
            merged.merge(stats.scan)
        return merged

    def to_dict(self) -> Dict:
        """The run as plain built-in types (see :mod:`repro.report.export`).

        Includes thresholds, frequent clusters, rules, and the Phase I /
        Phase II stats breakdowns, so runs are machine-comparable across
        versions.
        """
        from repro.report.export import result_to_dict

        return result_to_dict(self)

    def to_json(self, indent: int = 2) -> str:
        """``to_dict`` rendered as a JSON string."""
        from repro.report.export import result_to_json

        return result_to_json(self, indent=indent)


class DARMiner:
    """Mines distance-based association rules from a relation.

    >>> from repro.data.synthetic import make_planted_rule_relation
    >>> relation, _ = make_planted_rule_relation(seed=7)
    >>> result = DARMiner().mine(relation)
    >>> len(result.rules) > 0
    True
    """

    def __init__(self, config: DARConfig = DARConfig()):
        self.config = config
        #: Scan cadence of the current run when mining a
        #: :class:`~repro.data.columnar.ColumnStore` (``None`` for
        #: in-memory relations); set per :meth:`mine` call and read by
        #: :meth:`_run_phase1` to route the scan through ``fit_chunks``.
        self._chunk_rows: Optional[int] = None

    # ------------------------------------------------------------------

    def mine(
        self,
        relation: "Relation | ColumnStore",
        partitions: Optional[Sequence[AttributePartition]] = None,
        targets: Optional[Sequence[str]] = None,
    ) -> DARResult:
        """Run both phases over ``relation``.

        ``relation`` may be an in-memory
        :class:`~repro.data.relation.Relation` or a memory-mapped
        :class:`~repro.data.columnar.ColumnStore`; both expose the
        ``schema``/``len``/``matrix`` surface the phases read.  A store
        is scanned chunk by chunk (Phase I consumes a
        :class:`~repro.data.columnar.ChunkIterator` at the store's
        ``chunk_rows``, or ``config.birch.scan_chunk_rows`` when set),
        so only one chunk of each partition is resident at a time; with
        a memory budget configured, results are bit-identical to mining
        the materialized relation under the same budget.

        ``partitions`` defaults to one partition per interval attribute.
        ``targets`` optionally names the partitions rules may conclude
        about — the Section 5.2 N:1 application ("associations between
        driver characteristics and a specific variable"): only consequents
        over target partitions are enumerated, which also skips their
        assoc-set computation entirely.  Raises ``ValueError`` for empty
        relations, empty partitionings, or unknown target names.
        """
        self._chunk_rows = (
            relation.chunk_rows if isinstance(relation, ColumnStore) else None
        )
        if len(relation) == 0:
            raise ValidationError("cannot mine an empty relation")
        partition_list = list(
            partitions if partitions is not None else default_partitions(relation.schema)
        )
        if not partition_list:
            raise ValueError("no interval attributes to mine over")
        names = [p.name for p in partition_list]
        if len(set(names)) != len(names):
            raise ValueError(f"partition names must be unique, got {names}")
        target_set: Optional[frozenset] = None
        if targets is not None:
            target_set = frozenset(targets)
            unknown = target_set - set(names)
            if unknown:
                raise ValueError(f"unknown target partitions: {sorted(unknown)}")
            if not target_set:
                raise ValueError("targets, when given, must be non-empty")

        matrices = {p.name: relation.matrix(p.attributes) for p in partition_list}
        self._validate_matrices(partition_list, matrices)
        density = self._resolve_density_thresholds(partition_list, matrices)
        degree = {
            p.name: self.config.degree_threshold(p.name, density[p.name])
            for p in partition_list
        }

        # ------------------------------ Phase I ------------------------
        n = len(relation)
        frequency_count = max(1, math.ceil(self.config.frequency_fraction * n))

        with span("phase1", partitions=len(partition_list), rows=n):
            phase1_stats, all_clusters, frequent_clusters = self._run_phase1(
                partition_list, matrices, density, frequency_count
            )

        # ------------------------------ Phase II -----------------------
        phase2 = Phase2Stats()
        started = time.perf_counter()
        flat_frequent = [
            cluster
            for clusters in frequent_clusters.values()
            for cluster in clusters
        ]
        phase2.n_clusters = sum(len(c) for c in all_clusters.values())
        phase2.n_frequent_clusters = len(flat_frequent)

        graph: Optional[ClusteringGraph] = None
        cliques: List[FrozenSet[int]] = []
        rules: List[DistanceRule] = []
        with span(
            "phase2", frequent_clusters=len(flat_frequent)
        ) as phase2_span:
            if len(frequent_clusters) >= 2:
                engine = self.config.phase2_engine
                if engine == "auto":
                    engine = (
                        "vector"
                        if Phase2Kernel.supports(flat_frequent)
                        else "scalar"
                    )

                # Image-moment extraction: every frequent cluster's
                # (N, LS, SS) on every partition, stacked once, reused by
                # the graph build AND the rule-formation stage below.
                stage = time.perf_counter()
                kernel: Optional[Phase2Kernel] = None
                if engine == "vector":
                    with span("phase2.extract", clusters=len(flat_frequent)):
                        try:
                            faults.fire("phase2.kernel")
                            kernel = self._make_kernel(flat_frequent)
                        except Exception as error:
                            phase2.events.append(record_guard_event(
                                "kernel_fallback",
                                f"vector Phase II kernel failed during moment "
                                f"extraction ({error}); degraded to the "
                                f"scalar engine",
                            ))
                            engine = "scalar"
                            kernel = None
                phase2.extract_seconds = time.perf_counter() - stage

                lenient = {
                    name: self.config.phase2_leniency * threshold
                    for name, threshold in density.items()
                }
                stage = time.perf_counter()
                with span("phase2.graph") as graph_span:
                    if kernel is not None:
                        try:
                            graph = kernel.build_graph(
                                lenient,
                                use_density_pruning=self.config.use_density_pruning,
                                pruning_diameter_factor=self.config.pruning_diameter_factor,
                            )
                        except Exception as error:
                            phase2.events.append(record_guard_event(
                                "kernel_fallback",
                                f"vector Phase II kernel failed during graph "
                                f"build ({error}); degraded to the scalar "
                                f"engine",
                            ))
                            engine = "scalar"
                            kernel = None
                            graph = None
                    if kernel is None:
                        graph = build_clustering_graph(
                            flat_frequent,
                            lenient,
                            metric=self.config.metric,
                            use_density_pruning=self.config.use_density_pruning,
                            pruning_diameter_factor=self.config.pruning_diameter_factor,
                            engine="scalar",
                        )
                    graph_span.set("engine", engine)
                    graph_span.set("edges", graph.n_edges)
                phase2.engine = engine
                phase2.graph_seconds = time.perf_counter() - stage

                stage = time.perf_counter()
                with span("phase2.cliques") as clique_span:
                    cliques = maximal_cliques(graph.adjacency)
                    clique_span.set("cliques", len(cliques))
                phase2.clique_seconds = time.perf_counter() - stage

                stage = time.perf_counter()
                with span("phase2.rules") as rules_span:
                    rules = self._rules_from_cliques(
                        graph, cliques, degree, targets=target_set, kernel=kernel
                    )
                    rules_span.set("rules", len(rules))
                phase2.rules_seconds = time.perf_counter() - stage

                phase2.n_edges = graph.n_edges
                phase2.comparisons = graph.stats.comparisons
                phase2.comparisons_skipped = graph.stats.skipped
            phase2.n_cliques = len(cliques)
            phase2.n_non_trivial_cliques = len(non_trivial_cliques(cliques))

            wants_counts = (
                self.config.count_rule_support
                or self.config.rule_support_fraction is not None
            )
            if wants_counts and rules:
                with span("phase2.postscan", candidates=len(rules)):
                    rules = self._count_support(
                        rules, frequent_clusters, matrices
                    )
                    if self.config.rule_support_fraction is not None:
                        # Section 6.2 post-processing: "these rules are only
                        # candidate rules ... we can rescan the data (once)
                        # and count the frequency of all candidate rules."
                        bar = math.ceil(self.config.rule_support_fraction * n)
                        rules = [
                            rule
                            for rule in rules
                            if (rule.support_count or 0) >= bar
                        ]
            phase2.n_rules = len(rules)
            phase2_span.set("rules", len(rules))
        phase2.seconds = time.perf_counter() - started
        phase2.publish()

        return DARResult(
            rules=rules,
            frequent_clusters=frequent_clusters,
            all_clusters=all_clusters,
            graph=graph,
            cliques=cliques,
            density_thresholds=density,
            degree_thresholds=degree,
            frequency_count=frequency_count,
            phase1=phase1_stats,
            phase2=phase2,
        )

    # ------------------------------------------------------------------
    # Phase hooks — the seams the parallel engine overrides
    # ------------------------------------------------------------------

    def _run_phase1(
        self,
        partition_list: Sequence[AttributePartition],
        matrices: Mapping[str, np.ndarray],
        density: Mapping[str, float],
        frequency_count: int,
    ) -> Tuple[
        Dict[str, Phase1Stats],
        Dict[str, List[Cluster]],
        Dict[str, List[Cluster]],
    ]:
        """Cluster every partition; returns (stats, all, frequent) by name.

        This is the "what to compute" of Phase I: one independent
        clustering task per attribute partition, executed here serially in
        ``partition_list`` order.  :class:`repro.parallel.ParallelDARMiner`
        overrides only this method (and :meth:`_make_kernel`) to fan the
        same tasks out over a worker pool — cluster uids are assigned from
        a fresh counter in ``partition_list`` order either way, so the two
        paths produce identical cluster populations.
        """
        phase1_stats: Dict[str, Phase1Stats] = {}
        all_clusters: Dict[str, List[Cluster]] = {}
        frequent_clusters: Dict[str, List[Cluster]] = {}
        uid = itertools.count()
        # Out-of-core runs scan through one re-iterable chunk iterator over
        # all partition matrices (memory-mapped views), so every
        # clusterer's pass streams the same fixed-size chunks instead of
        # touching whole columns at once.
        chunks: Optional[ChunkIterator] = None
        if self._chunk_rows is not None:
            chunks = ChunkIterator(dict(matrices), self._chunk_rows)
        for partition in partition_list:
            others = [p for p in partition_list if p.name != partition.name]
            options = replace(
                self.config.birch,
                initial_threshold=density[partition.name],
                frequency_fraction=self.config.frequency_fraction,
            )
            clusterer = BirchClusterer(partition, others, options)
            if chunks is not None:
                result = clusterer.fit_chunks(chunks)
            else:
                result = clusterer.fit_arrays(
                    matrices[partition.name],
                    {p.name: matrices[p.name] for p in others},
                )
            phase1_stats[partition.name] = result.stats
            clusters = [
                Cluster(uid=next(uid), partition=partition, acf=acf)
                for acf in result.clusters
            ]
            all_clusters[partition.name] = clusters
            frequent = [c for c in clusters if c.n >= frequency_count]
            # "If for some X_i there are no frequent clusters, we omit X_i
            # from consideration in Phase II."
            if frequent:
                frequent_clusters[partition.name] = frequent
        return phase1_stats, all_clusters, frequent_clusters

    def _make_kernel(self, flat_frequent: Sequence[Cluster]) -> Phase2Kernel:
        """Construct the vector Phase II kernel over the frequent clusters.

        The parallel miner overrides this to return a kernel whose blocked
        pairwise computation is tiled across the worker pool; everything
        downstream (graph build, assoc sets, rule degrees) reads the same
        cached matrices either way.
        """
        return Phase2Kernel(flat_frequent, metric=self.config.metric)

    # ------------------------------------------------------------------

    @staticmethod
    def _validate_matrices(
        partitions: Sequence[AttributePartition],
        matrices: Mapping[str, np.ndarray],
    ) -> None:
        """Reject non-finite data up front with an error naming the column.

        NaN/inf would otherwise propagate silently through every moment sum
        and surface only as nonsense thresholds or empty rule sets.  The
        message distinguishes an entirely-bad column (drop it) from a few
        bad rows (clean them, or ingest leniently with a quarantine sink).

        The check walks each matrix in fixed-row blocks so memory-mapped
        (out-of-core) matrices are validated without ever allocating a
        whole-column temporary; the per-column bad counts — and therefore
        the error messages — are exactly those of a whole-array check.
        """
        block_rows = 1 << 18
        for partition in partitions:
            matrix = np.atleast_2d(np.asarray(matrices[partition.name], float))
            total = matrix.shape[0]
            bad_counts = np.zeros(matrix.shape[1], dtype=np.int64)
            for start in range(0, total, block_rows):
                finite = np.isfinite(matrix[start : start + block_rows])
                if not finite.all():
                    bad_counts += (~finite).sum(axis=0)
            if not bad_counts.any():
                continue
            for column, attribute in enumerate(partition.attributes):
                bad = int(bad_counts[column])
                if bad == 0:
                    continue
                if bad == total:
                    raise ValidationError(
                        f"attribute {attribute!r} (partition "
                        f"{partition.name!r}) is entirely non-finite "
                        f"(all {total} rows are NaN/inf); drop the column "
                        f"or clean the data before mining"
                    )
                raise ValidationError(
                    f"attribute {attribute!r} (partition {partition.name!r}) "
                    f"has {bad} non-finite value(s) in {total} rows; clean "
                    f"the data or load it leniently with a quarantine sink "
                    f"(load_csv(..., sink=...)) to divert the bad rows"
                )

    def _resolve_density_thresholds(
        self,
        partitions: Sequence[AttributePartition],
        matrices: Mapping[str, np.ndarray],
    ) -> Dict[str, float]:
        """Per-partition ``d0``: explicit config, else a data-derived default.

        The default scales with the partition's overall spread: the RMS
        diameter of the whole column, computable from one global CF.  A
        degenerate (constant) column gets a tiny positive threshold so
        clustering still works.
        """
        thresholds: Dict[str, float] = {}
        for partition in partitions:
            global_cf = CF.of_points(matrices[partition.name])
            spread = global_cf.rms_diameter
            derived = self.config.density_fraction * spread
            if derived <= 0:
                derived = 1e-9
            thresholds[partition.name] = self.config.density_threshold(
                partition.name, derived
            )
        return thresholds

    # ------------------------------------------------------------------

    def _rules_from_cliques(
        self,
        graph: ClusteringGraph,
        cliques: Sequence[FrozenSet[int]],
        degree_thresholds: Mapping[str, float],
        targets: Optional[FrozenSet[str]] = None,
        kernel: Optional[Phase2Kernel] = None,
    ) -> List[DistanceRule]:
        """Section 6.2 rule formation, deduplicated across clique pairs.

        For every sub-clique chosen as a consequent, the antecedent
        candidates are the intersection of the consequents' ``assoc`` sets;
        any antecedent subset that is itself a clique (i.e. lies inside
        some maximal clique Q1) and is partition-disjoint from the
        consequent yields a rule.  Enumerating antecedent subsets that are
        pairwise adjacent is exactly equivalent to enumerating subsets of
        all maximal cliques Q1, without visiting the same rule once per
        containing clique.

        With ``kernel`` given, the assoc sets, candidate ranking and rule
        degrees all read the kernel's cached pairwise-distance matrices
        instead of re-deriving image CFs per pair.
        """
        metric = self.config.metric
        clusters = graph.clusters
        dist = self._distance_fn(kernel, metric)

        # assoc(C_Y) over *all* frequent clusters: antecedent candidates
        # whose image on Y's partition sits within D0 of C_Y (Section 6.2).
        # With targets set, only target-partition clusters can be
        # consequents, so only their assoc sets are ever needed.
        if kernel is not None:
            assoc = kernel.assoc_sets(degree_thresholds, targets=targets)
        else:
            assoc = {}
            for y_uid, y_cluster in clusters.items():
                y_name = y_cluster.partition.name
                if targets is not None and y_name not in targets:
                    continue
                threshold = degree_thresholds[y_name]
                members: Set[int] = set()
                for x_uid, x_cluster in clusters.items():
                    if x_cluster.partition.name == y_name:
                        continue
                    if dist(x_cluster, y_cluster, y_name) <= threshold:
                        members.add(x_uid)
                assoc[y_uid] = members

        seen: Set[Tuple[frozenset, frozenset]] = set()
        rules: List[DistanceRule] = []

        for clique in cliques:
            ordered = sorted(clique)
            max_y = min(self.config.max_consequent, len(ordered))
            for y_size in range(1, max_y + 1):
                for consequent_uids in itertools.combinations(ordered, y_size):
                    consequent = tuple(clusters[u] for u in consequent_uids)
                    consequent_names = {c.partition.name for c in consequent}
                    if targets is not None and not consequent_names <= targets:
                        continue
                    candidates = set.intersection(
                        *(assoc[u] for u in consequent_uids)
                    )
                    candidates -= set(consequent_uids)
                    candidates = {
                        u
                        for u in candidates
                        if clusters[u].partition.name not in consequent_names
                    }
                    if not candidates:
                        continue
                    ranked = self._rank_candidates(
                        candidates, consequent, clusters, dist
                    )
                    for antecedent_uids in self._antecedent_subsets(ranked, graph):
                        antecedent = tuple(clusters[u] for u in antecedent_uids)
                        antecedent_names = [
                            c.partition.name for c in antecedent
                        ]
                        if len(set(antecedent_names)) != len(antecedent_names):
                            continue
                        key = (frozenset(antecedent_uids), frozenset(consequent_uids))
                        if key in seen:
                            continue
                        seen.add(key)
                        rules.append(
                            self._make_rule(antecedent, consequent, dist)
                        )
        rules.sort(key=lambda rule: (rule.degree, str(rule)))
        return rules

    @staticmethod
    def _distance_fn(kernel: Optional[Phase2Kernel], metric: str):
        """``dist(x_cluster, y_cluster, on) -> float`` for rule formation:
        a cached-matrix lookup under the vector engine, a per-pair
        ``image_distance`` call under the scalar one."""
        if kernel is not None:
            return lambda a, b, on: kernel.distance(a.uid, b.uid, on)
        return lambda a, b, on: image_distance(a, b, on=on, metric=metric)

    def _rank_candidates(
        self,
        candidates: Set[int],
        consequent: Tuple[Cluster, ...],
        clusters: Mapping[int, Cluster],
        dist,
    ) -> List[int]:
        """Bound the antecedent search: keep the strongest-associated
        ``max_antecedent_candidates`` clusters (smallest worst-case image
        distance to the consequent), deterministically ordered."""
        def strength(uid: int) -> float:
            x_cluster = clusters[uid]
            return max(
                dist(x_cluster, y_cluster, y_cluster.partition.name)
                for y_cluster in consequent
            )

        ranked = sorted(candidates, key=lambda uid: (strength(uid), uid))
        return ranked[: self.config.max_antecedent_candidates]

    def _antecedent_subsets(
        self, candidates: Sequence[int], graph: ClusteringGraph
    ):
        """Non-empty pairwise-adjacent subsets of ``candidates`` (bounded size).

        Size-1 subsets are always cliques; larger subsets require every
        pair to share a graph edge, which is the Dfn 5.2/5.3 condition
        that co-antecedent clusters occur together.
        """
        max_size = min(self.config.max_antecedent, len(candidates))
        for size in range(1, max_size + 1):
            for subset in itertools.combinations(candidates, size):
                if size == 1 or all(
                    graph.has_edge(a, b)
                    for a, b in itertools.combinations(subset, 2)
                ):
                    yield subset

    @staticmethod
    def _make_rule(
        antecedent: Tuple[Cluster, ...],
        consequent: Tuple[Cluster, ...],
        dist,
    ) -> DistanceRule:
        degrees: Dict[int, float] = {}
        worst = 0.0
        for y_cluster in consequent:
            y_name = y_cluster.partition.name
            y_worst = 0.0
            for x_cluster in antecedent:
                distance = dist(x_cluster, y_cluster, y_name)
                y_worst = max(y_worst, distance)
            degrees[y_cluster.uid] = y_worst
            worst = max(worst, y_worst)
        return DistanceRule(
            antecedent=antecedent, consequent=consequent, degree=worst, degrees=degrees
        )

    # ------------------------------------------------------------------

    def _count_support(
        self,
        rules: List[DistanceRule],
        frequent_clusters: Mapping[str, List[Cluster]],
        matrices: Mapping[str, np.ndarray],
    ) -> List[DistanceRule]:
        """One post-scan: classical support of every candidate rule.

        Tuples are labeled per partition by closest frequent-cluster
        centroid (§4.3.2); a tuple supports a rule when its label matches
        the rule's cluster in every partition the rule mentions.
        """
        masks: Dict[int, np.ndarray] = {}
        for name, clusters in frequent_clusters.items():
            centroids = np.stack([cluster.centroid for cluster in clusters])
            labels = assign_to_centroids(matrices[name], centroids)
            for index, cluster in enumerate(clusters):
                masks[cluster.uid] = labels == index

        counted: List[DistanceRule] = []
        for rule in rules:
            mask: Optional[np.ndarray] = None
            for cluster in rule.antecedent + rule.consequent:
                cluster_mask = masks[cluster.uid]
                mask = cluster_mask if mask is None else (mask & cluster_mask)
            support = int(np.count_nonzero(mask)) if mask is not None else 0
            counted.append(
                DistanceRule(
                    antecedent=rule.antecedent,
                    consequent=rule.consequent,
                    degree=rule.degree,
                    degrees=rule.degrees,
                    support_count=support,
                )
            )
        return counted
