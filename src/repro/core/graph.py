"""The clustering graph of Dfn 6.1.

Nodes are the frequent clusters from Phase I; an edge joins clusters
``C_X`` and ``C_Y`` (over *different* partitions) when they are close on
both partitions:

    D(C_X[X], C_Y[X]) <= d0_X   and   D(C_X[Y], C_Y[Y]) <= d0_Y

Edges witness co-occurrence: the two clusters describe roughly the same
tuples, so their maximal cliques play the role frequent itemsets play for
classical rules.

Section 6.2's cost reduction is implemented as an optional pre-filter:
"Image clusters with large diameters (poor density) are unlikely to
contribute edges to the graph.  ...  In an initial pass over the ACFs, we
can determine if edges from a given node need to be computed, dramatically
reducing the number of node comparisons required."  A node whose image on
partition ``Y`` has RMS diameter above ``pruning_factor x d0_Y`` skips all
comparisons against ``Y``'s clusters.  The builder counts performed and
skipped comparisons so the ablation benchmark can report the saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set

from repro.core.cluster import Cluster, image_distance

__all__ = ["ClusteringGraph", "GraphStats", "GRAPH_ENGINES", "build_clustering_graph"]


@dataclass
class GraphStats:
    """Comparison accounting for the §6.2 pruning ablation.

    ``engine`` records which builder produced the graph (``"scalar"`` per
    pair Python calls, ``"vector"`` the blocked numpy kernel); both count
    comparisons, skips and edges identically.
    """

    comparisons: int = 0
    skipped: int = 0
    edges: int = 0
    engine: str = "scalar"

    @property
    def considered(self) -> int:
        """Total pairs examined (computed plus pruned)."""
        return self.comparisons + self.skipped


@dataclass
class ClusteringGraph:
    """An undirected graph over clusters, keyed by cluster uid."""

    clusters: Dict[int, Cluster]
    adjacency: Dict[int, Set[int]]
    stats: GraphStats = field(default_factory=GraphStats)

    @property
    def n_nodes(self) -> int:
        """Number of clusters in the graph."""
        return len(self.clusters)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    def neighbors(self, uid: int) -> FrozenSet[int]:
        """Uids adjacent to ``uid`` (empty if absent)."""
        return frozenset(self.adjacency.get(uid, ()))

    def has_edge(self, a: int, b: int) -> bool:
        """Whether clusters ``a`` and ``b`` are connected."""
        return b in self.adjacency.get(a, ())

    def degree(self, uid: int) -> int:
        """Number of neighbors of ``uid``."""
        return len(self.adjacency.get(uid, ()))


#: Recognized values of ``build_clustering_graph``'s ``engine`` parameter.
GRAPH_ENGINES = ("auto", "vector", "scalar")


def build_clustering_graph(
    clusters: Sequence[Cluster],
    density_thresholds: Mapping[str, float],
    metric: str = "d2",
    use_density_pruning: bool = True,
    pruning_diameter_factor: float = 2.0,
    engine: str = "auto",
) -> ClusteringGraph:
    """Construct the Dfn 6.1 graph over ``clusters``.

    ``density_thresholds`` maps partition name to the (Phase II, possibly
    leniency-scaled) ``d0`` used for edge tests.  Every cluster's partition
    must appear in the mapping.

    ``engine`` selects the builder: ``"vector"`` uses the blocked numpy
    kernel of :mod:`repro.core.phase2_kernel`, ``"scalar"`` the per-pair
    Python loop, and ``"auto"`` (the default) picks the kernel whenever
    every cluster carries CF images for every partition present (mixed
    nominal/interval populations fall back to the scalar path).  Both
    engines are decision-equivalent: identical edge sets and identical
    :class:`GraphStats` accounting.
    """
    from repro.core.phase2_kernel import Phase2Kernel

    if engine not in GRAPH_ENGINES:
        raise ValueError(
            f"unknown graph engine {engine!r}; available: {GRAPH_ENGINES}"
        )
    if engine == "auto":
        engine = "vector" if Phase2Kernel.supports(clusters) else "scalar"
    if engine == "vector":
        kernel = Phase2Kernel(clusters, metric=metric)
        return kernel.build_graph(
            density_thresholds,
            use_density_pruning=use_density_pruning,
            pruning_diameter_factor=pruning_diameter_factor,
        )

    by_uid: Dict[int, Cluster] = {}
    for cluster in clusters:
        if cluster.uid in by_uid:
            raise ValueError(f"duplicate cluster uid {cluster.uid}")
        if cluster.partition.name not in density_thresholds:
            raise ValueError(
                f"no density threshold for partition {cluster.partition.name!r}"
            )
        by_uid[cluster.uid] = cluster

    adjacency: Dict[int, Set[int]] = {uid: set() for uid in by_uid}
    stats = GraphStats()
    ordered: List[Cluster] = sorted(by_uid.values(), key=lambda c: c.uid)

    # Pre-compute, per cluster, the partitions against which its image is
    # dense enough to be worth comparing (the §6.2 initial ACF pass).
    viable_against: Dict[int, Set[str]] = {}
    if use_density_pruning:
        partition_names = {cluster.partition.name for cluster in ordered}
        for cluster in ordered:
            viable: Set[str] = set()
            for other_name in partition_names:
                if other_name == cluster.partition.name:
                    continue
                bound = pruning_diameter_factor * density_thresholds[other_name]
                if cluster.image_diameter(other_name) <= bound:
                    viable.add(other_name)
            viable_against[cluster.uid] = viable

    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if a.partition.name == b.partition.name:
                continue
            if use_density_pruning:
                if (
                    b.partition.name not in viable_against[a.uid]
                    or a.partition.name not in viable_against[b.uid]
                ):
                    stats.skipped += 1
                    continue
            stats.comparisons += 1
            name_a, name_b = a.partition.name, b.partition.name
            close_on_a = (
                image_distance(a, b, on=name_a, metric=metric)
                <= density_thresholds[name_a]
            )
            if not close_on_a:
                continue
            close_on_b = (
                image_distance(a, b, on=name_b, metric=metric)
                <= density_thresholds[name_b]
            )
            if close_on_b:
                adjacency[a.uid].add(b.uid)
                adjacency[b.uid].add(a.uid)
                stats.edges += 1

    return ClusteringGraph(clusters=by_uid, adjacency=adjacency, stats=stats)
