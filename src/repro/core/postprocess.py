"""Rule post-processing: ranking, filtering, redundancy pruning.

A mining run can emit hundreds of overlapping DARs (every sub-clique pair
yields candidates).  These utilities shape the output into what a user
actually reads:

* **target filtering** — the N:1 application of Section 5.2: keep only
  rules whose consequent mentions given target partitions ("an insurance
  agent wants ... associations between driver characteristics and a
  specific variable");
* **redundancy pruning** — a rule is redundant if another kept rule has
  the same consequent, an antecedent that is a subset, and a degree at
  least as good: the shorter rule says strictly more with less;
* **top-k / threshold selection** over the degree ordering (smaller =
  stronger), with the support count as tiebreaker when available.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.rules import DistanceRule

__all__ = [
    "filter_by_consequent",
    "filter_by_antecedent",
    "prune_redundant",
    "select_rules",
]


def filter_by_consequent(
    rules: Iterable[DistanceRule], partition_names: Sequence[str]
) -> List[DistanceRule]:
    """Rules whose consequent partitions are exactly a subset of ``partition_names``.

    This is target-attribute mining: pass ``["claims"]`` to get every rule
    that concludes something about claims (and nothing else).
    """
    targets = set(partition_names)
    if not targets:
        raise ValueError("at least one target partition is required")
    return [
        rule
        for rule in rules
        if {c.partition.name for c in rule.consequent} <= targets
    ]


def filter_by_antecedent(
    rules: Iterable[DistanceRule], partition_names: Sequence[str]
) -> List[DistanceRule]:
    """Rules whose antecedent uses only the given partitions."""
    allowed = set(partition_names)
    if not allowed:
        raise ValueError("at least one antecedent partition is required")
    return [
        rule
        for rule in rules
        if {c.partition.name for c in rule.antecedent} <= allowed
    ]


def prune_redundant(rules: Iterable[DistanceRule]) -> List[DistanceRule]:
    """Drop rules implied by a kept rule with a smaller antecedent.

    Rule S is redundant given rule R when they share the consequent
    clusters, R's antecedent clusters are a proper subset of S's, and R's
    degree is at most S's: whatever S asserts, R asserts of more tuples
    with at least the same strength.  Output order is strongest-first.
    """
    ordered = sorted(
        rules, key=lambda rule: (len(rule.antecedent), rule.degree, str(rule))
    )
    kept: List[DistanceRule] = []
    kept_index: List[tuple] = []  # (consequent uids, antecedent uids, degree)
    for rule in ordered:
        consequent = rule.consequent_uids
        antecedent = rule.antecedent_uids
        redundant = any(
            consequent == kept_consequent
            and kept_antecedent < antecedent
            and kept_degree <= rule.degree + 1e-12
            for kept_consequent, kept_antecedent, kept_degree in kept_index
        )
        if not redundant:
            kept.append(rule)
            kept_index.append((consequent, antecedent, rule.degree))
    kept.sort(key=lambda rule: (rule.degree, str(rule)))
    return kept


def select_rules(
    rules: Iterable[DistanceRule],
    max_degree: Optional[float] = None,
    min_support: Optional[int] = None,
    top_k: Optional[int] = None,
) -> List[DistanceRule]:
    """Threshold and truncate, strongest (smallest degree) first.

    ``min_support`` requires rules to carry post-scan support counts
    (``DARConfig.count_rule_support=True``); asking for it on uncounted
    rules raises rather than silently keeping everything.
    """
    selected = list(rules)
    if max_degree is not None:
        selected = [rule for rule in selected if rule.degree <= max_degree]
    if min_support is not None:
        if any(rule.support_count is None for rule in selected):
            raise ValueError(
                "min_support filtering needs support counts; mine with "
                "DARConfig(count_rule_support=True)"
            )
        selected = [
            rule for rule in selected if (rule.support_count or 0) >= min_support
        ]
    selected.sort(
        key=lambda rule: (rule.degree, -(rule.support_count or 0), str(rule))
    )
    if top_k is not None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        selected = selected[:top_k]
    return selected
