"""Global refinement of Phase I subclusters (BIRCH's global phase).

BIRCH's incremental, order-dependent insertion can leave several leaf
entries describing one natural cluster (the paper observes ~4% centroid
drift "due to the use of a non-optimal clustering strategy", §7.2).  BIRCH
proper follows the tree-building phase with a *global clustering* phase
over the leaf entries; we implement it as centroid-linkage agglomerative
merging driven entirely by summaries: repeatedly merge the pair of entries
whose union stays within the diameter threshold, until no pair qualifies.

Because ACFs are additive this never touches raw data, and the result is
order-independent given the input entries.  Complexity is O(k^2 log k) for
k leaf entries — k is small by construction (it is what fit in memory).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.birch.features import ACF, merged_rms_diameter

__all__ = ["refine_entries"]


def refine_entries(entries: Sequence[ACF], threshold: float) -> List[ACF]:
    """Agglomeratively merge ``entries`` while unions stay within ``threshold``.

    Returns new ACF objects (inputs are not mutated).  Merging prefers the
    pair whose union has the smallest RMS diameter, so tight merges happen
    before marginal ones.  ``threshold <= 0`` (with at least two distinct
    entries) returns copies unchanged — nothing can merge.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    alive: List[ACF] = [entry.copy() for entry in entries]
    if len(alive) < 2:
        return alive

    # Priority queue of candidate merges (union diameter, i, j, versions).
    # Stale heap items are detected via per-slot version counters.
    versions = [0] * len(alive)
    heap: List = []

    def push_pair(i: int, j: int) -> None:
        diameter = merged_rms_diameter(alive[i].cf, alive[j].cf)
        if diameter <= threshold:
            heapq.heappush(heap, (diameter, i, j, versions[i], versions[j]))

    for i in range(len(alive)):
        for j in range(i + 1, len(alive)):
            push_pair(i, j)

    dead = [False] * len(alive)
    while heap:
        _, i, j, version_i, version_j = heapq.heappop(heap)
        if dead[i] or dead[j]:
            continue
        if versions[i] != version_i or versions[j] != version_j:
            continue  # one side changed since this candidate was scored
        alive[i].merge(alive[j])
        dead[j] = True
        versions[i] += 1
        for k in range(len(alive)):
            if k != i and not dead[k]:
                push_pair(min(i, k), max(i, k))

    return [entry for entry, is_dead in zip(alive, dead) if not is_dead]
