"""Vectorized batch ingestion for the ACF-tree.

The per-point scan loop of :meth:`repro.birch.tree.ACFTree.insert_point`
spends nearly all of its time in small Python loops: ``closest_child`` and
``closest_entry`` walk children/entries one at a time, and every absorbed
point updates the main CF, every cross CF, the bounding box and each
ancestor aggregate with separate tiny numpy operations.  This module
replaces that with a batch engine built on two ideas:

1. **Mirror caches.**  Every node visited during a batch gets a *mirror*: a
   preallocated ``(capacity, dim)`` matrix of its children's (or entries')
   counts, linear sums and centroids.  Descent and closest-entry selection
   become one subtract + one row-wise dot product + one argmin over the
   mirror instead of a Python loop.  Mirrors are updated incrementally (one
   row per insertion) and invalidated when a split restructures the node.

2. **Deferred bulk accumulation.**  Absorption decisions only need the main
   moments ``(n, LS, SS)``, which the mirrors carry.  Everything else —
   cross moments, bounding boxes, leaf aggregates, ancestor aggregates — is
   buffered per destination leaf and applied at *flush* time with
   ``np.add.at`` / ``np.minimum.at`` bulk scatters, grouped by entry.

**Equivalence guarantee.**  The engine makes the *same decision sequence*
as sequential insertion: points are routed one at a time against mirror
state that is updated after every point with exactly the arithmetic the
sequential path uses (same linear-sum accumulation order, same division,
same tie-breaking — ``argmin`` returns the first minimum just as the
sequential strict-``<`` scan keeps the first).  Leaf-entry main moments are
written back *from the mirrors* at flush, so they are identical to the
sequential result, not merely close; only the deferred payload (cross
moments, node aggregates) is re-associated by the bulk sums, which changes
values by at most a few ulps and influences no decision.

Rebuilds use the same engine in *entry mode* (batch of ACF summaries
instead of raw points); see :meth:`ACFTree.insert_entries`.

:class:`ScanStats` instruments the scan (throughput, absorb rate, splits,
rebuilds, per-stage wall time) and is threaded through the Phase I driver
(:mod:`repro.birch.birch`), the streaming miner and the CLI ``--stats``
flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from math import inf, sqrt
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.birch.features import ACF, CF
from repro.birch.node import InternalNode, LeafNode, Node
from repro.metrics.cluster import rms_diameter_from_moments
from repro.obs import metrics as obs_metrics
from repro.obs.profile import profiled
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.birch.tree import ACFTree

__all__ = ["ScanStats", "BatchInserter"]


@dataclass
class ScanStats:
    """Instrumentation of one or more batch-ingestion scans.

    One object can be threaded through many calls (chunked scans, rebuild
    replays): every counter accumulates.  ``seconds_scan`` covers routing
    and absorption decisions, ``seconds_flush`` the deferred bulk moment
    application, ``seconds_split`` node splits (including the forced
    flushes they require).
    """

    points: int = 0
    """Raw points ingested through the batch path."""
    entries: int = 0
    """Whole subcluster summaries ingested (rebuild / replay batches)."""
    absorbed: int = 0
    """Items merged into an existing leaf entry."""
    new_entries: int = 0
    """Items that started a new leaf entry."""
    splits: int = 0
    """Node splits triggered while ingesting."""
    rebuilds: int = 0
    """Tree rebuilds the owning scan performed (set by the driver)."""
    batches: int = 0
    """Number of ``insert_points`` / ``insert_entries`` calls."""
    flushes: int = 0
    """Deferred-buffer flushes (at least one per batch, plus one per split)."""
    seconds_total: float = 0.0
    seconds_scan: float = 0.0
    seconds_flush: float = 0.0
    seconds_split: float = 0.0

    @property
    def items(self) -> int:
        """Points plus entries ingested."""
        return self.points + self.entries

    @property
    def absorb_rate(self) -> float:
        """Fraction of ingested items absorbed into existing entries."""
        total = self.items
        return self.absorbed / total if total else 0.0

    @property
    def points_per_second(self) -> float:
        """Ingestion throughput over the accumulated wall time."""
        return self.items / self.seconds_total if self.seconds_total > 0 else 0.0

    def merge(self, other: "ScanStats") -> None:
        """Accumulate another scan's counters into this one."""
        self.points += other.points
        self.entries += other.entries
        self.absorbed += other.absorbed
        self.new_entries += other.new_entries
        self.splits += other.splits
        self.rebuilds += other.rebuilds
        self.batches += other.batches
        self.flushes += other.flushes
        self.seconds_total += other.seconds_total
        self.seconds_scan += other.seconds_scan
        self.seconds_flush += other.seconds_flush
        self.seconds_split += other.seconds_split

    def to_dict(self) -> dict:
        """Plain-builtin counters for checkpoints and reports."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, state: dict) -> "ScanStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{name: value for name, value in state.items() if name in names})

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI ``--stats``)."""
        return (
            f"{self.items} items in {self.seconds_total:.3f}s "
            f"({self.points_per_second:,.0f}/s), "
            f"absorb {100.0 * self.absorb_rate:.1f}%, "
            f"{self.new_entries} new entries, {self.splits} splits, "
            f"{self.rebuilds} rebuilds "
            f"[scan {self.seconds_scan:.3f}s flush {self.seconds_flush:.3f}s "
            f"split {self.seconds_split:.3f}s]"
        )

    def publish(self, partition: str, since: Optional[dict] = None) -> None:
        """Emit this scan's counters into the process metrics registry.

        The per-run/per-partition ``ScanStats`` object stays the
        authoritative record (it is what ``--stats`` prints and what
        checkpoints serialize); this bridge re-emits the same numbers as
        ``repro_phase1_*`` metrics labeled by ``partition``, so registry
        totals always match the stats views.  ``since`` (a prior
        :meth:`to_dict` snapshot) restricts emission to the delta
        accumulated after the snapshot — drivers that reuse one stats
        object across many updates (the streaming miner) use it to avoid
        double-counting.  No-op while metrics are disabled.
        """
        if not obs_metrics.metrics_enabled():
            return
        base = since or {}

        def delta(name: str) -> float:
            return getattr(self, name) - base.get(name, 0)

        for field_name, metric, help_text in _SCAN_METRICS:
            obs_metrics.inc(
                metric, delta(field_name), help=help_text, partition=partition
            )


#: ``ScanStats`` field → (metric name, help) for :meth:`ScanStats.publish`.
_SCAN_METRICS = (
    ("points", "repro_phase1_points_total",
     "Raw points ingested through the batch scan path"),
    ("entries", "repro_phase1_entries_total",
     "Subcluster summaries re-ingested by rebuilds and replays"),
    ("absorbed", "repro_phase1_absorbed_total",
     "Items merged into an existing leaf entry"),
    ("new_entries", "repro_phase1_new_entries_total",
     "Items that started a new leaf entry"),
    ("splits", "repro_phase1_splits_total",
     "Leaf/internal node splits triggered while ingesting"),
    ("rebuilds", "repro_phase1_rebuilds_total",
     "Threshold-escalation tree rebuilds"),
    ("batches", "repro_phase1_batches_total",
     "insert_points / insert_entries calls"),
    ("flushes", "repro_phase1_flushes_total",
     "Deferred-buffer flushes"),
    ("seconds_total", "repro_phase1_seconds_total",
     "Wall seconds spent in batch ingestion"),
    ("seconds_scan", "repro_phase1_scan_seconds_total",
     "Wall seconds spent routing and absorbing"),
    ("seconds_flush", "repro_phase1_flush_seconds_total",
     "Wall seconds spent applying deferred bulk updates"),
    ("seconds_split", "repro_phase1_split_seconds_total",
     "Wall seconds spent splitting nodes"),
)


class _InternalMirror:
    """Per-child (n, LS, centroid) rows of one internal node."""

    __slots__ = ("count", "n", "ls", "cent", "n_empty")

    def __init__(self, node: InternalNode, dimension: int):
        capacity = node.branching + 1
        self.count = len(node.children)
        self.n = np.zeros(capacity, dtype=np.int64)
        self.ls = np.zeros((capacity, dimension), dtype=np.float64)
        self.cent = np.zeros((capacity, dimension), dtype=np.float64)
        self.n_empty = 0
        for index, child in enumerate(node.children):
            cf = child.cf
            self.n[index] = cf.n
            self.ls[index] = cf.ls
            if cf.n:
                self.cent[index] = cf.ls / cf.n
            else:
                self.n_empty += 1

    def route(self, point: np.ndarray) -> int:
        """Index of the closest non-empty child (first child if all empty).

        Matches :meth:`InternalNode.closest_child` decision-for-decision:
        the same ``ls / n - point`` arithmetic per row, empty children
        skipped, and ``argmin`` keeping the first of equal minima exactly
        as the sequential strict-``<`` scan does.
        """
        k = self.count
        delta = self.cent[:k] - point
        scores = np.einsum("ij,ij->i", delta, delta)
        if self.n_empty:
            if self.n_empty == k:
                return 0
            scores[self.n[:k] == 0] = np.inf
        return int(np.argmin(scores))

    def note(self, index: int, dn: int, dls: np.ndarray) -> None:
        """Record ``dn`` points with linear sum ``dls`` below child ``index``."""
        if self.n[index] == 0:
            self.n_empty -= 1
        n = self.n[index] + dn
        self.n[index] = n
        ls = self.ls[index]
        ls += dls
        self.cent[index] = ls / n


class _LeafMirror:
    """Per-entry (n, LS, SS, centroid) rows of one leaf node."""

    __slots__ = ("count", "n", "ls", "ss", "cent", "n_empty")

    def __init__(self, leaf: LeafNode, dimension: int):
        capacity = leaf.capacity + 1
        self.count = len(leaf.entries)
        self.n = np.zeros(capacity, dtype=np.int64)
        self.ls = np.zeros((capacity, dimension), dtype=np.float64)
        self.ss = np.zeros((capacity, dimension), dtype=np.float64)
        self.cent = np.zeros((capacity, dimension), dtype=np.float64)
        self.n_empty = 0
        for index, entry in enumerate(leaf.entries):
            cf = entry.cf
            self.n[index] = cf.n
            self.ls[index] = cf.ls
            self.ss[index] = cf.ss
            if cf.n:
                self.cent[index] = cf.ls / cf.n
            else:
                self.n_empty += 1

    def closest(self, point: np.ndarray) -> int:
        """Index of the closest non-empty entry; mirrors ``closest_entry``."""
        k = self.count
        delta = self.cent[:k] - point
        scores = np.einsum("ij,ij->i", delta, delta)
        if self.n_empty:
            if self.n_empty == k:
                raise ValueError("closest_entry on a leaf with only empty entries")
            scores[self.n[:k] == 0] = np.inf
        return int(np.argmin(scores))

    def merged_point_rms_diameter(self, index: int, point: np.ndarray) -> float:
        """Same arithmetic as ``tree._merged_point_rms_diameter``."""
        n = int(self.n[index]) + 1
        if n < 2:
            return 0.0
        ls = self.ls[index] + point
        ss = float(self.ss[index].sum()) + float(point @ point)
        squared = (2.0 * n * ss - 2.0 * float(ls @ ls)) / (n * (n - 1))
        return float(np.sqrt(max(squared, 0.0)))

    def merged_cf_rms_diameter(self, index: int, cf: CF) -> float:
        """Same arithmetic as :func:`repro.birch.features.merged_rms_diameter`."""
        n = int(self.n[index]) + cf.n
        if n < 2:
            return 0.0
        ls = self.ls[index] + cf.ls
        ss = float(self.ss[index].sum()) + cf.ss_total
        return rms_diameter_from_moments(n, ls, ss)

    def absorb(self, index: int, dn: int, dls: np.ndarray, dss: np.ndarray) -> None:
        if self.n[index] == 0:
            self.n_empty -= 1
        n = self.n[index] + dn
        self.n[index] = n
        ls = self.ls[index]
        ls += dls
        self.ss[index] += dss
        self.cent[index] = ls / n

    def append(self, dn: int, ls: np.ndarray, ss: np.ndarray) -> None:
        index = self.count
        self.n[index] = dn
        self.ls[index] = ls
        self.ss[index] = ss
        if dn:
            self.cent[index] = ls / dn
        else:
            self.n_empty += 1
        self.count += 1


class _InternalMirror1D:
    """Scalar (pure-Python-float) mirror of a 1-dimensional internal node.

    Every arithmetic step is a single IEEE-754 scalar operation, identical
    to what the numpy path performs elementwise on length-1 arrays, so the
    routing decisions are bit-for-bit the sequential ones — without any
    per-point numpy dispatch overhead.
    """

    __slots__ = ("count", "n", "ls", "cent", "n_empty")

    def __init__(self, node: InternalNode):
        self.count = len(node.children)
        self.n: List[int] = []
        self.ls: List[float] = []
        self.cent: List[float] = []
        self.n_empty = 0
        for child in node.children:
            cf = child.cf
            count = cf.n
            linear = float(cf.ls[0])
            self.n.append(count)
            self.ls.append(linear)
            if count:
                self.cent.append(linear / count)
            else:
                self.cent.append(0.0)
                self.n_empty += 1

    def route(self, point: float) -> int:
        best = -1
        best_squared = inf
        counts = self.n
        cent = self.cent
        for index in range(self.count):
            if counts[index] == 0:
                continue
            delta = cent[index] - point
            squared = delta * delta
            if squared < best_squared:
                best = index
                best_squared = squared
        return 0 if best < 0 else best

    def note(self, index: int, dn: int, dls: float) -> None:
        n = self.n[index]
        if n == 0:
            self.n_empty -= 1
        n += dn
        self.n[index] = n
        ls = self.ls[index] + dls
        self.ls[index] = ls
        self.cent[index] = ls / n


class _LeafMirror1D:
    """Scalar mirror of a 1-dimensional leaf; see :class:`_InternalMirror1D`."""

    __slots__ = ("count", "n", "ls", "ss", "cent", "n_empty")

    def __init__(self, leaf: LeafNode):
        self.count = len(leaf.entries)
        self.n: List[int] = []
        self.ls: List[float] = []
        self.ss: List[float] = []
        self.cent: List[float] = []
        self.n_empty = 0
        for entry in leaf.entries:
            cf = entry.cf
            count = cf.n
            linear = float(cf.ls[0])
            self.n.append(count)
            self.ls.append(linear)
            self.ss.append(float(cf.ss[0]))
            if count:
                self.cent.append(linear / count)
            else:
                self.cent.append(0.0)
                self.n_empty += 1

    def closest(self, point: float) -> int:
        best = -1
        best_squared = inf
        counts = self.n
        cent = self.cent
        for index in range(self.count):
            if counts[index] == 0:
                continue
            delta = cent[index] - point
            squared = delta * delta
            if squared < best_squared:
                best = index
                best_squared = squared
        if best < 0:
            raise ValueError("closest_entry on a leaf with only empty entries")
        return best

    def absorb(self, index: int, dn: int, dls: float, dss: float) -> None:
        n = self.n[index]
        if n == 0:
            self.n_empty -= 1
        n += dn
        self.n[index] = n
        ls = self.ls[index] + dls
        self.ls[index] = ls
        self.ss[index] += dss
        self.cent[index] = ls / n

    def append(self, dn: int, ls: float, ss: float) -> None:
        self.n.append(dn)
        self.ls.append(ls)
        self.ss.append(ss)
        if dn:
            self.cent.append(ls / dn)
        else:
            self.cent.append(0.0)
            self.n_empty += 1
        self.count += 1


class _LeafBuffer:
    """Deferred updates destined for one leaf (flushed in bulk)."""

    __slots__ = ("absorbed_entry", "absorbed_item", "new_items")

    def __init__(self) -> None:
        self.absorbed_entry: List[int] = []
        self.absorbed_item: List[int] = []
        self.new_items: List[int] = []


class _Batch:
    """Precomputed column-stacked views of one batch of points or entries."""

    __slots__ = ("size", "n", "ls", "ss", "lo", "hi", "cross", "entries")

    def __init__(
        self,
        n: np.ndarray,
        ls: np.ndarray,
        ss: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        cross: Dict[str, Dict[str, np.ndarray]],
        entries: Optional[Sequence[ACF]],
    ):
        self.size = ls.shape[0]
        self.n = n          # (B,) int — 1 for raw points
        self.ls = ls        # (B, dim) — the points themselves in point mode
        self.ss = ss        # (B, dim) — elementwise squares / entry SS rows
        self.lo = lo        # (B, dim) bounding-box contribution
        self.hi = hi
        self.cross = cross  # name -> {"n": (B,), "ls": (B, dy), "ss": (B, dy)}
        self.entries = entries  # entry mode only: the source ACFs

    @classmethod
    def of_points(
        cls, points: np.ndarray, cross_values: Mapping[str, np.ndarray]
    ) -> "_Batch":
        squares = points * points
        cross: Dict[str, Dict[str, np.ndarray]] = {}
        for name, matrix in cross_values.items():
            matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
            cross[name] = {"n": None, "ls": matrix, "ss": matrix * matrix}
        return cls(
            n=np.ones(points.shape[0], dtype=np.int64),
            ls=points,
            ss=squares,
            lo=points,
            hi=points,
            cross=cross,
            entries=None,
        )

    @classmethod
    def of_entries(cls, entries: Sequence[ACF]) -> "_Batch":
        n = np.array([entry.n for entry in entries], dtype=np.int64)
        ls = np.stack([entry.cf.ls for entry in entries])
        ss = np.stack([entry.cf.ss for entry in entries])
        lo = np.stack([entry.lo for entry in entries])
        hi = np.stack([entry.hi for entry in entries])
        cross: Dict[str, Dict[str, np.ndarray]] = {}
        for name in entries[0].cross:
            cross[name] = {
                "n": np.array([entry.cross[name].n for entry in entries], dtype=np.int64),
                "ls": np.stack([entry.cross[name].ls for entry in entries]),
                "ss": np.stack([entry.cross[name].ss for entry in entries]),
            }
        return cls(n=n, ls=ls, ss=ss, lo=lo, hi=hi, cross=cross, entries=entries)


class BatchInserter:
    """Reusable batch-ingestion engine bound to one :class:`ACFTree`.

    Owned by the tree (created lazily by ``insert_points`` /
    ``insert_entries``) and discarded whenever the sequential mutators run,
    so mirror caches can never go stale.  All buffered updates are flushed
    before every split and before control returns to the caller, so the
    tree object graph is always consistent between calls.
    """

    def __init__(self, tree: "ACFTree"):
        self.tree = tree
        # 1-D trees (the paper's single-attribute partitions) use scalar
        # Python-float mirrors: identical IEEE arithmetic, none of the
        # per-point numpy dispatch cost.
        self._scalar = tree.dimension == 1
        self._mirrors: Dict[Node, object] = {}
        self._buffers: Dict[LeafNode, _LeafBuffer] = {}
        self._batch: Optional[_Batch] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def run(self, batch: _Batch, stats: ScanStats) -> None:
        """Ingest one prepared batch, updating ``stats`` and the tree."""
        point_mode = batch.entries is None
        with span(
            "phase1.insert_batch",
            size=batch.size,
            mode="points" if point_mode else "entries",
        ) as current_span, profiled("phase1.insert_batch"):
            started = time.perf_counter()
            tree = self.tree
            splits_before = tree.n_splits
            absorbed_before = stats.absorbed
            self._batch = batch

            if self._scalar:
                flush_split_seconds = self._scan_scalar(batch, stats)
            else:
                flush_split_seconds = self._scan_generic(batch, stats)

            flush_started = time.perf_counter()
            self.flush(stats)
            flush_seconds = time.perf_counter() - flush_started
            stats.seconds_flush += flush_seconds

            if point_mode:
                stats.points += batch.size
                tree._n_points += batch.size
            else:
                stats.entries += batch.size
                tree._n_points += int(batch.n.sum())
            stats.splits += tree.n_splits - splits_before
            stats.batches += 1
            elapsed = time.perf_counter() - started
            stats.seconds_total += elapsed
            stats.seconds_scan += elapsed - flush_seconds - flush_split_seconds
            self._batch = None
            current_span.set("absorbed", stats.absorbed - absorbed_before)
            current_span.set("splits", tree.n_splits - splits_before)

    def _scan_generic(self, batch: _Batch, stats: ScanStats) -> float:
        """Route and absorb every batch item via the numpy mirrors."""
        flush_split_seconds = 0.0
        tree = self.tree
        threshold = tree.threshold
        point_mode = batch.entries is None

        for i in range(batch.size):
            point = batch.ls[i] if point_mode else batch.entries[i].centroid
            dn = 1 if point_mode else int(batch.n[i])

            # Descend by closest mirrored centroid.
            path: List[tuple] = []
            node = tree._root
            while not node.is_leaf:
                mirror = self._internal_mirror(node)
                child_index = mirror.route(point)
                path.append((node, mirror, child_index))
                node = node.children[child_index]  # type: ignore[attr-defined]
            leaf: LeafNode = node  # type: ignore[assignment]
            leaf_mirror = self._leaf_mirror(leaf)

            # Absorb into the closest entry if the threshold allows.
            absorbed = False
            if leaf_mirror.count:
                entry_index = leaf_mirror.closest(point)
                if point_mode:
                    diameter = leaf_mirror.merged_point_rms_diameter(entry_index, point)
                else:
                    diameter = leaf_mirror.merged_cf_rms_diameter(
                        entry_index, batch.entries[i].cf
                    )
                if diameter <= threshold:
                    leaf_mirror.absorb(entry_index, dn, batch.ls[i], batch.ss[i])
                    buffer = self._buffer(leaf)
                    buffer.absorbed_entry.append(entry_index)
                    buffer.absorbed_item.append(i)
                    absorbed = True
            if not absorbed:
                entry = self._materialize_entry(batch, i)
                leaf.add_entry(entry)
                leaf_mirror.append(dn, batch.ls[i], batch.ss[i])
                self._buffer(leaf).new_items.append(i)

            # Ancestor aggregates, mirrored incrementally (objects deferred).
            dls = batch.ls[i]
            for _, mirror, child_index in path:
                mirror.note(child_index, dn, dls)

            if absorbed:
                stats.absorbed += 1
            else:
                stats.new_entries += 1
                if leaf.entry_count() > tree.leaf_capacity:
                    split_started = time.perf_counter()
                    self.flush(stats)
                    tree._split_leaf(leaf)
                    # The split restructured the whole root-to-leaf chain;
                    # drop exactly those caches (fresh nodes have none).
                    for path_node, _, _ in path:
                        self._mirrors.pop(path_node, None)
                    self._mirrors.pop(leaf, None)
                    split_seconds = time.perf_counter() - split_started
                    flush_split_seconds += split_seconds
                    stats.seconds_split += split_seconds
        return flush_split_seconds

    def _scan_scalar(self, batch: _Batch, stats: ScanStats) -> float:
        """Scalar scan loop for 1-dimensional trees.

        Decision-for-decision the same as :meth:`_scan_generic`: for
        ``dimension == 1`` every numpy elementwise operation is a single
        scalar IEEE-754 operation, which Python floats reproduce exactly,
        including the merged-diameter formula and the first-minimum
        tie-break of the routing scans.
        """
        flush_split_seconds = 0.0
        tree = self.tree
        threshold = tree.threshold
        leaf_capacity = tree.leaf_capacity
        point_mode = batch.entries is None
        mirrors = self._mirrors
        buffers = self._buffers
        xs = batch.ls[:, 0].tolist()
        qs = batch.ss[:, 0].tolist()
        ns = None if point_mode else batch.n.tolist()
        absorbed_count = 0
        new_count = 0

        for i in range(batch.size):
            dls = xs[i]
            dss = qs[i]
            if point_mode:
                dn = 1
                point = dls
            else:
                dn = ns[i]
                point = dls / dn  # the entry's centroid, routed like a point

            path: List[tuple] = []
            node = tree._root
            while not node.is_leaf:
                mirror = mirrors.get(node)
                if mirror is None:
                    mirror = _InternalMirror1D(node)  # type: ignore[arg-type]
                    mirrors[node] = mirror
                child_index = mirror.route(point)
                path.append((node, mirror, child_index))
                node = node.children[child_index]  # type: ignore[attr-defined]
            leaf: LeafNode = node  # type: ignore[assignment]
            leaf_mirror = mirrors.get(leaf)
            if leaf_mirror is None:
                leaf_mirror = _LeafMirror1D(leaf)
                mirrors[leaf] = leaf_mirror

            absorbed = False
            if leaf_mirror.count:
                entry_index = leaf_mirror.closest(point)
                merged_n = leaf_mirror.n[entry_index] + dn
                if merged_n < 2:
                    diameter = 0.0
                else:
                    merged_ls = leaf_mirror.ls[entry_index] + dls
                    merged_ss = leaf_mirror.ss[entry_index] + dss
                    squared = (2.0 * merged_n * merged_ss - 2.0 * merged_ls * merged_ls) / (
                        merged_n * (merged_n - 1)
                    )
                    diameter = sqrt(squared) if squared > 0.0 else 0.0
                if diameter <= threshold:
                    leaf_mirror.absorb(entry_index, dn, dls, dss)
                    buffer = buffers.get(leaf)
                    if buffer is None:
                        buffer = _LeafBuffer()
                        buffers[leaf] = buffer
                    buffer.absorbed_entry.append(entry_index)
                    buffer.absorbed_item.append(i)
                    absorbed = True
            if not absorbed:
                entry = self._materialize_entry(batch, i)
                leaf.add_entry(entry)
                leaf_mirror.append(dn, dls, dss)
                buffer = buffers.get(leaf)
                if buffer is None:
                    buffer = _LeafBuffer()
                    buffers[leaf] = buffer
                buffer.new_items.append(i)

            for _, mirror, child_index in path:
                mirror.note(child_index, dn, dls)

            if absorbed:
                absorbed_count += 1
            else:
                new_count += 1
                if leaf.entry_count() > leaf_capacity:
                    split_started = time.perf_counter()
                    self.flush(stats)
                    tree._split_leaf(leaf)
                    # The split restructured the root-to-leaf chain; drop the
                    # caches of every node on the descent path.
                    for path_node, _, _ in path:
                        mirrors.pop(path_node, None)
                    mirrors.pop(leaf, None)
                    split_seconds = time.perf_counter() - split_started
                    flush_split_seconds += split_seconds
                    stats.seconds_split += split_seconds

        stats.absorbed += absorbed_count
        stats.new_entries += new_count
        return flush_split_seconds

    def _buffer(self, leaf: LeafNode) -> _LeafBuffer:
        buffer = self._buffers.get(leaf)
        if buffer is None:
            buffer = _LeafBuffer()
            self._buffers[leaf] = buffer
        return buffer

    def _materialize_entry(self, batch: _Batch, i: int) -> ACF:
        if batch.entries is not None:
            # The engine takes a copy: absorptions may later merge other
            # batch items into this object, and callers (rebuilds) still
            # hold references to the originals.
            return batch.entries[i].copy()
        point = batch.ls[i]
        cross_values = {name: cols["ls"][i] for name, cols in batch.cross.items()}
        return ACF.of_point(point, cross_values)

    # ------------------------------------------------------------------
    # Mirrors
    # ------------------------------------------------------------------

    def _internal_mirror(self, node: InternalNode) -> _InternalMirror:
        mirror = self._mirrors.get(node)
        if mirror is None:
            mirror = _InternalMirror(node, self.tree.dimension)
            self._mirrors[node] = mirror
        return mirror  # type: ignore[return-value]

    def _leaf_mirror(self, leaf: LeafNode) -> _LeafMirror:
        mirror = self._mirrors.get(leaf)
        if mirror is None:
            mirror = _LeafMirror(leaf, self.tree.dimension)
            self._mirrors[leaf] = mirror
        return mirror  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Flush: deferred bulk application of buffered updates
    # ------------------------------------------------------------------

    def flush(self, stats: Optional[ScanStats] = None) -> None:
        """Apply every buffered update to the tree's object graph.

        Main leaf-entry moments are copied from the mirrors (bit-identical
        to sequential accumulation); cross moments and bounding boxes are
        scattered with ``np.add.at`` / ``np.minimum.at`` grouped by entry;
        node aggregates get one summed delta per touched leaf, propagated
        up the parent chain.
        """
        if not self._buffers:
            return
        batch = self._batch
        assert batch is not None
        for leaf, buffer in self._buffers.items():
            self._flush_leaf(leaf, buffer, batch)
        self._buffers.clear()
        if stats is not None:
            stats.flushes += 1

    def _flush_leaf(self, leaf: LeafNode, buffer: _LeafBuffer, batch: _Batch) -> None:
        mirror = self._mirrors.get(leaf)
        k = len(leaf.entries)
        dimension = self.tree.dimension

        if buffer.absorbed_item:
            entry_idx = np.asarray(buffer.absorbed_entry, dtype=np.intp)
            item_idx = np.asarray(buffer.absorbed_item, dtype=np.intp)
            touched = np.unique(entry_idx)

            # Main moments: authoritative values live in the mirror, which
            # accumulated them point-by-point exactly as the sequential
            # path would have.
            assert mirror is not None
            for j in touched:
                cf = leaf.entries[j].cf
                cf.n = int(mirror.n[j])
                cf.ls[...] = mirror.ls[j]
                cf.ss[...] = mirror.ss[j]

            # Bounding boxes: bulk min/max scatter, then one update per
            # touched entry.
            lo = np.full((k, dimension), np.inf)
            hi = np.full((k, dimension), -np.inf)
            np.minimum.at(lo, entry_idx, batch.lo[item_idx])
            np.maximum.at(hi, entry_idx, batch.hi[item_idx])
            for j in touched:
                entry = leaf.entries[j]
                np.minimum(entry.lo, lo[j], out=entry.lo)
                np.maximum(entry.hi, hi[j], out=entry.hi)

            # Cross moments: one add-scatter per cross partition.
            counts = np.bincount(entry_idx, minlength=k)
            item_counts = batch.n[item_idx]
            for name, cols in batch.cross.items():
                dy = cols["ls"].shape[1]
                cross_ls = np.zeros((k, dy))
                cross_ss = np.zeros((k, dy))
                np.add.at(cross_ls, entry_idx, cols["ls"][item_idx])
                np.add.at(cross_ss, entry_idx, cols["ss"][item_idx])
                if cols["n"] is None:
                    cross_n = counts
                else:
                    cross_n = np.zeros(k, dtype=np.int64)
                    np.add.at(cross_n, entry_idx, cols["n"][item_idx])
                for j in touched:
                    cross_cf = leaf.entries[j].cross[name]
                    cross_cf.n += int(cross_n[j])
                    cross_cf.ls += cross_ls[j]
                    cross_cf.ss += cross_ss[j]

            # Leaf aggregate: one summed delta (new entries were already
            # merged by ``add_entry``).
            absorbed_n = int(item_counts.sum())
            leaf_cf = leaf.cf
            leaf_cf.n += absorbed_n
            leaf_cf.ls += batch.ls[item_idx].sum(axis=0)
            leaf_cf.ss += batch.ss[item_idx].sum(axis=0)

        # Ancestor aggregates: absorbed *and* new items both flowed through
        # every ancestor of this leaf.
        all_items = buffer.absorbed_item + buffer.new_items
        if all_items:
            idx = np.asarray(all_items, dtype=np.intp)
            dn = int(batch.n[idx].sum())
            dls = batch.ls[idx].sum(axis=0)
            dss = batch.ss[idx].sum(axis=0)
            ancestor = leaf.parent
            while ancestor is not None:
                cf = ancestor.cf
                cf.n += dn
                cf.ls += dls
                cf.ss += dss
                ancestor = ancestor.parent
