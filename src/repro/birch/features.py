"""Clustering Features (CF) and Association Clustering Features (ACF).

A *Clustering Feature* (Eq. 3, after [ZRL96]) summarizes a set of points by
``(N, LS, SS)`` — count, per-dimension linear sum, and per-dimension sum of
squares.  CFs are additive: the CF of a union is the component-wise sum
(the Additivity Theorem), which is what lets BIRCH cluster in one pass.

The paper's extension (Section 6.1, Eq. 7) is the *Association Clustering
Feature*: a CF over the clustering partition ``X`` plus, for every other
attribute partition ``Y``, the cross moments ``(sum t[Y], sum t[Y]^2)`` of
the same tuples.  The Additivity Theorem extends to ACFs, and by the ACF
Representativity Theorem (Thm 6.1) the D1/D2 distances between cluster
*images* needed in Phase II are all derivable from ACFs alone.

We additionally carry per-dimension min/max over ``X``.  Min/max is additive
under union (though not subtractive, which BIRCH never needs) and gives the
smallest-bounding-box cluster description Section 7.2 recommends over bare
centroids.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.metrics.cluster import (
    d1_from_moments,
    rms_d2_from_moments,
    rms_diameter_from_moments,
    rms_radius_from_moments,
)

__all__ = ["CF", "ACF", "merged_rms_diameter"]


class CF:
    """The (N, LS, SS) summary of Eq. (3).

    ``ss`` is stored per-dimension; the scalar sum of squared norms used in
    the BIRCH distance formulas is :attr:`ss_total`.
    """

    __slots__ = ("n", "ls", "ss")

    def __init__(self, n: int, ls: np.ndarray, ss: np.ndarray):
        self.n = int(n)
        self.ls = np.asarray(ls, dtype=np.float64)
        self.ss = np.asarray(ss, dtype=np.float64)
        if self.ls.shape != self.ss.shape:
            raise ValueError("LS and SS must have the same shape")
        if self.n < 0:
            raise ValueError("CF count must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, dimension: int) -> "CF":
        """An empty CF of the given dimension."""
        return cls(0, np.zeros(dimension), np.zeros(dimension))

    @classmethod
    def of_point(cls, point: np.ndarray) -> "CF":
        """The CF summarizing a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(1, point.copy(), point * point)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "CF":
        """The CF summarizing every row of ``points`` at once."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return cls(points.shape[0], points.sum(axis=0), (points * points).sum(axis=0))

    def copy(self) -> "CF":
        """An independent deep copy."""
        return CF(self.n, self.ls.copy(), self.ss.copy())

    # ------------------------------------------------------------------
    # Additivity
    # ------------------------------------------------------------------

    def add_point(self, point: np.ndarray) -> None:
        """Absorb one point into the summary, in place."""
        point = np.asarray(point, dtype=np.float64)
        self.n += 1
        self.ls += point
        self.ss += point * point

    def merge(self, other: "CF") -> None:
        """In-place union (the Additivity Theorem)."""
        self.n += other.n
        self.ls += other.ls
        self.ss += other.ss

    def merged(self, other: "CF") -> "CF":
        """The union of two CFs as a new object (additivity)."""
        return CF(self.n + other.n, self.ls + other.ls, self.ss + other.ss)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of attributes summarized."""
        return self.ls.shape[0]

    @property
    def ss_total(self) -> float:
        """Scalar sum of squares over all dimensions."""
        return float(self.ss.sum())

    @property
    def centroid(self) -> np.ndarray:
        """Mean of the summarized points; raises on an empty CF."""
        if self.n == 0:
            raise ValueError("centroid of an empty CF is undefined")
        return self.ls / self.n

    @property
    def rms_diameter(self) -> float:
        """BIRCH's D statistic — see :mod:`repro.metrics.cluster`."""
        return rms_diameter_from_moments(self.n, self.ls, self.ss_total)

    @property
    def rms_radius(self) -> float:
        """BIRCH's R statistic (RMS distance to the centroid)."""
        return rms_radius_from_moments(self.n, self.ls, self.ss_total)

    @property
    def variance(self) -> np.ndarray:
        """Per-dimension (biased) variance of the summarized points."""
        if self.n == 0:
            raise ValueError("variance of an empty CF is undefined")
        mean = self.ls / self.n
        return np.maximum(self.ss / self.n - mean * mean, 0.0)

    def d1(self, other: "CF") -> float:
        """Eq. (5) between the two summarized sets."""
        return d1_from_moments(self.n, self.ls, other.n, other.ls)

    def rms_d2(self, other: "CF") -> float:
        """RMS form of Eq. (6) between the two summarized sets."""
        return rms_d2_from_moments(
            self.n, self.ls, self.ss_total, other.n, other.ls, other.ss_total
        )

    def centroid_distance(self, other: "CF") -> float:
        """Euclidean distance between centroids (BIRCH's D0)."""
        return float(np.linalg.norm(self.centroid - other.centroid))

    # ------------------------------------------------------------------
    # Checkpoint state (repro.resilience.checkpoint)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-builtin state for checkpoints.

        Floats are emitted as Python floats; their shortest ``repr`` (what
        JSON writes) round-trips every finite float64 exactly, so a
        restored CF is bit-identical to the saved one.
        """
        return {"n": self.n, "ls": self.ls.tolist(), "ss": self.ss.tolist()}

    @classmethod
    def from_state(cls, state: dict) -> "CF":
        """Rebuild from :meth:`state_dict` output, bit-exact."""
        return cls(
            int(state["n"]),
            np.asarray(state["ls"], dtype=np.float64),
            np.asarray(state["ss"], dtype=np.float64),
        )

    def __repr__(self) -> str:
        return f"CF(n={self.n}, centroid={self.ls / self.n if self.n else None})"


def merged_rms_diameter(a: CF, b: CF) -> float:
    """RMS diameter of the union of two CFs, without materializing it."""
    n = a.n + b.n
    if n < 2:
        return 0.0
    ls = a.ls + b.ls
    ss = a.ss_total + b.ss_total
    return rms_diameter_from_moments(n, ls, ss)


class ACF:
    """Association Clustering Feature (Section 6.1).

    An ACF is a CF over the clustering partition plus cross moments for
    every other partition, plus a bounding box over the clustering
    partition.  ``cross`` maps a partition name to a CF over that
    partition's attributes describing *the same tuples* projected there.
    """

    __slots__ = ("cf", "cross", "lo", "hi")

    def __init__(
        self,
        cf: CF,
        cross: Optional[Dict[str, CF]] = None,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ):
        self.cf = cf
        self.cross: Dict[str, CF] = dict(cross or {})
        for name, cross_cf in self.cross.items():
            if cross_cf.n != cf.n:
                raise ValueError(
                    f"cross moments for {name!r} cover {cross_cf.n} tuples, "
                    f"but the CF covers {cf.n}"
                )
        if lo is None:
            lo = np.full(cf.dimension, np.inf)
        if hi is None:
            hi = np.full(cf.dimension, -np.inf)
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)

    @classmethod
    def of_point(cls, point: np.ndarray, cross_values: Mapping[str, np.ndarray]) -> "ACF":
        """The ACF of one point plus its cross-partition values."""
        point = np.asarray(point, dtype=np.float64)
        cross = {name: CF.of_point(values) for name, values in cross_values.items()}
        return cls(CF.of_point(point), cross, lo=point.copy(), hi=point.copy())

    @classmethod
    def of_points(
        cls, points: np.ndarray, cross_points: Mapping[str, np.ndarray]
    ) -> "ACF":
        """The ACF of the rows of ``points`` with their cross values."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        cross = {name: CF.of_points(values) for name, values in cross_points.items()}
        return cls(
            CF.of_points(points),
            cross,
            lo=points.min(axis=0),
            hi=points.max(axis=0),
        )

    def copy(self) -> "ACF":
        """An independent deep copy (primary, cross CFs and bounds)."""
        return ACF(
            self.cf.copy(),
            {name: cf.copy() for name, cf in self.cross.items()},
            lo=self.lo.copy(),
            hi=self.hi.copy(),
        )

    # ------------------------------------------------------------------
    # Additivity (extended Additivity Theorem)
    # ------------------------------------------------------------------

    def add_point(self, point: np.ndarray, cross_values: Mapping[str, np.ndarray]) -> None:
        """Absorb one point and its cross-partition values, in place."""
        point = np.asarray(point, dtype=np.float64)
        # The check must hold even for an empty ACF: its ``cross`` keys are
        # the declared layout, and letting the first point redefine it would
        # silently contradict the owning tree's ``cross_dimensions``.
        if set(cross_values) != set(self.cross):
            raise ValueError(
                f"cross partitions {sorted(cross_values)} do not match ACF's "
                f"{sorted(self.cross)}"
            )
        self.cf.add_point(point)
        for name, values in cross_values.items():
            self.cross[name].add_point(values)
        np.minimum(self.lo, point, out=self.lo)
        np.maximum(self.hi, point, out=self.hi)

    def merge(self, other: "ACF") -> None:
        """In-place union (extended Additivity Theorem, Thm 6.1)."""
        if set(other.cross) != set(self.cross):
            raise ValueError("cannot merge ACFs with different cross partitions")
        self.cf.merge(other.cf)
        for name, cross_cf in other.cross.items():
            self.cross[name].merge(cross_cf)
        np.minimum(self.lo, other.lo, out=self.lo)
        np.maximum(self.hi, other.hi, out=self.hi)

    def merged(self, other: "ACF") -> "ACF":
        """The union of two ACFs as a new object."""
        result = self.copy()
        result.merge(other)
        return result

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of tuples summarized."""
        return self.cf.n

    @property
    def centroid(self) -> np.ndarray:
        """Centroid on the ACF's own partition."""
        return self.cf.centroid

    @property
    def rms_diameter(self) -> float:
        """RMS diameter on the ACF's own partition."""
        return self.cf.rms_diameter

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` copies of the exact per-dimension bounds."""
        if self.n == 0:
            raise ValueError("bounding box of an empty ACF is undefined")
        return self.lo.copy(), self.hi.copy()

    def image(self, partition_name: str, own_name: str) -> CF:
        """The CF of this cluster's image on ``partition_name`` (Thm 6.1).

        ``own_name`` identifies the partition the ACF clusters on; asking
        for it returns the primary CF, anything else the cross moments.
        """
        if partition_name == own_name:
            return self.cf
        try:
            return self.cross[partition_name]
        except KeyError:
            raise KeyError(
                f"ACF has no cross moments for partition {partition_name!r}; "
                f"available: {sorted(self.cross)}"
            ) from None

    # ------------------------------------------------------------------
    # Checkpoint state (repro.resilience.checkpoint)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-builtin state for checkpoints (see :meth:`CF.state_dict`)."""
        return {
            "cf": self.cf.state_dict(),
            "cross": {name: cf.state_dict() for name, cf in self.cross.items()},
            "lo": self.lo.tolist(),
            "hi": self.hi.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ACF":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            CF.from_state(state["cf"]),
            {name: CF.from_state(cf) for name, cf in state["cross"].items()},
            lo=np.asarray(state["lo"], dtype=np.float64),
            hi=np.asarray(state["hi"], dtype=np.float64),
        )

    def __repr__(self) -> str:
        return f"ACF(n={self.n}, cross={sorted(self.cross)})"
