"""Phase I driver: one-pass adaptive clustering of an attribute partition.

Combines the ACF-tree, the memory model, the threshold schedule, and the
outlier store into the scan loop of Sections 4.3.1 / 6.1: insert every
tuple's projection; when the summary outgrows the byte budget, page out
small subclusters and rebuild at a higher threshold; after the scan, replay
paged-out entries to confirm or absorb them.

The output is a list of ACF subcluster summaries plus :class:`Phase1Stats`
(rebuild count, threshold history, timings) used by the scalability
experiments of Section 7.2.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.birch.batch import ScanStats
from repro.birch.features import ACF
from repro.birch.memory import MemoryModel, ThresholdSchedule
from repro.birch.outliers import OutlierStore, ReplayReport
from repro.birch.rebuild import rebuild_tree, split_off_outlier_entries
from repro.birch.refine import refine_entries
from repro.birch.tree import ACFTree
from repro.data.relation import AttributePartition, Relation
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["BirchOptions", "Phase1Stats", "BirchResult", "BirchClusterer", "assign_to_centroids"]

_MEMORY_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class BirchOptions:
    """Tuning knobs for Phase I clustering.

    ``initial_threshold = 0`` starts at the finest granularity (every
    distinct value its own subcluster), exactly as BIRCH recommends; the
    adaptive loop will coarsen if memory demands it.
    """

    initial_threshold: float = 0.0
    branching: int = 8
    leaf_capacity: int = 8
    memory_limit_bytes: Optional[int] = None
    frequency_fraction: float = 0.03
    outlier_page_fraction: float = 0.25
    threshold_growth: float = 2.0
    max_rebuilds_per_overflow: int = 32
    global_refinement: bool = False
    batch_insert: bool = True
    """Scan through :meth:`ACFTree.insert_points` (same clusters, faster);
    set ``False`` to force the historical per-point loop."""
    scan_chunk_rows: Optional[int] = None
    """Batch cadence (rows per ``insert_points`` call) for unbudgeted scans.

    ``None`` keeps the historical behaviour: the whole scan as one batch
    in-memory, or the caller's chunk boundaries when scanning a chunk
    stream.  A memory budget always overrides this with the fixed
    ``_MEMORY_CHECK_INTERVAL`` cadence so budgeted results are
    bit-identical regardless of where the rows came from."""

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency_fraction <= 1.0:
            raise ValueError("frequency_fraction must be in (0, 1]")
        if not 0.0 <= self.outlier_page_fraction <= 1.0:
            raise ValueError("outlier_page_fraction must be in [0, 1]")
        if self.memory_limit_bytes is not None and self.memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive when set")
        if self.scan_chunk_rows is not None and self.scan_chunk_rows < 1:
            raise ValueError("scan_chunk_rows must be at least 1 when set")


@dataclass
class Phase1Stats:
    """Diagnostics of one Phase I run over one partition."""

    points_inserted: int = 0
    rebuilds: int = 0
    threshold_history: List[float] = field(default_factory=list)
    pages_out: int = 0
    paged_entries: int = 0
    replay: Optional[ReplayReport] = None
    seconds: float = 0.0
    final_entry_count: int = 0
    final_tree_bytes: int = 0
    scan: Optional[ScanStats] = None
    """Batch-scan instrumentation (``None`` when ``batch_insert`` is off)."""


@dataclass
class BirchResult:
    """Clusters (as ACF summaries) discovered over one partition."""

    partition: AttributePartition
    clusters: List[ACF]
    stats: Phase1Stats
    tree: ACFTree

    def frequent(self, min_count: int) -> List[ACF]:
        """Clusters meeting the frequency threshold ``s0`` (Dfn 4.2)."""
        return [cluster for cluster in self.clusters if cluster.n >= min_count]

    def centroids(self) -> np.ndarray:
        """Centroids of all clusters stacked into a ``(k, dim)`` array."""
        if not self.clusters:
            return np.empty((0, self.partition.dimension))
        return np.stack([cluster.centroid for cluster in self.clusters])


class BirchClusterer:
    """One-pass adaptive clusterer for a single attribute partition.

    Parameters
    ----------
    partition:
        The attribute set ``X_i`` to cluster on.
    cross_partitions:
        The *other* partitions whose cross moments every ACF must carry so
        Phase II can run without rescanning (Eq. 7).  Pass an empty list to
        build plain-CF clusters.
    options:
        See :class:`BirchOptions`.
    """

    def __init__(
        self,
        partition: AttributePartition,
        cross_partitions: Sequence[AttributePartition] = (),
        options: BirchOptions = BirchOptions(),
    ):
        names = {partition.name} | {p.name for p in cross_partitions}
        if len(names) != 1 + len(cross_partitions):
            raise ValueError("partition names must be unique")
        self.partition = partition
        self.cross_partitions = tuple(cross_partitions)
        self.options = options
        self._cross_dimensions = {p.name: p.dimension for p in self.cross_partitions}
        self.memory_model = MemoryModel(
            dimension=partition.dimension,
            cross_dimensions=self._cross_dimensions,
            branching=options.branching,
            leaf_capacity=options.leaf_capacity,
        )
        self._schedule = ThresholdSchedule(growth_factor=options.threshold_growth)

    # ------------------------------------------------------------------

    def fit(self, relation: Relation) -> BirchResult:
        """Scan ``relation`` once and return the discovered clusters."""
        points = relation.matrix(self.partition.attributes)
        cross_matrices = {
            p.name: relation.matrix(p.attributes) for p in self.cross_partitions
        }
        return self.fit_arrays(points, cross_matrices)

    def fit_arrays(
        self, points: np.ndarray, cross_matrices: Optional[Dict[str, np.ndarray]] = None
    ) -> BirchResult:
        """Scan raw arrays: ``points`` is ``(n, dim)``; cross matrices match rows."""
        with span(
            "phase1.fit", partition=self.partition.name
        ) as fit_span:
            result = self._fit_arrays(points, cross_matrices)
            return self._finish_fit(fit_span, result)

    def fit_chunks(self, chunks) -> BirchResult:
        """Scan a chunk stream (the out-of-core path of :meth:`fit_arrays`).

        ``chunks`` is any iterable of chunk objects exposing
        ``chunk.arrays[name]`` — a :class:`~repro.data.columnar.ChunkIterator`
        in practice — where ``name`` covers this clusterer's partition and
        every declared cross partition.  Rows are re-batched to the same
        scan cadence :meth:`fit_arrays` would use (the fixed
        memory-check interval under a budget, ``scan_chunk_rows``
        otherwise, else the incoming chunk boundaries), so a budgeted
        out-of-core scan is bit-identical to a budgeted in-memory scan of
        the same rows.  Each chunk is finiteness-validated as it streams
        in, since no one saw the whole array upfront.
        """
        with span(
            "phase1.fit", partition=self.partition.name
        ) as fit_span:
            cadence = self._scan_cadence(None)
            batches = self._rebatched(chunks, cadence)
            result = self._run_scan(batches, validate=True)
            return self._finish_fit(fit_span, result)

    def _finish_fit(self, fit_span, result: BirchResult) -> BirchResult:
        """Annotate the fit span and publish metrics (shared fit tail)."""
        stats = result.stats
        fit_span.set("points", stats.points_inserted)
        fit_span.set("entries", stats.final_entry_count)
        fit_span.set("rebuilds", stats.rebuilds)
        if stats.scan is not None:
            stats.scan.publish(self.partition.name)
        self._publish_summary(result)
        return result

    def _publish_summary(self, result: BirchResult) -> None:
        """Point-in-time gauges of the finished Phase I pass (per partition)."""
        if not obs_metrics.metrics_enabled():
            return
        name = self.partition.name
        stats = result.stats
        obs_metrics.set_gauge(
            "repro_phase1_threshold", result.tree.threshold,
            help="Final density/diameter threshold of the partition's tree",
            partition=name,
        )
        obs_metrics.set_gauge(
            "repro_phase1_entry_count", stats.final_entry_count,
            help="Leaf entries (subclusters) after the Phase I pass",
            partition=name,
        )
        obs_metrics.set_gauge(
            "repro_phase1_tree_bytes", stats.final_tree_bytes,
            help="Modeled byte size of the partition's final tree",
            unit="bytes", partition=name,
        )
        obs_metrics.inc(
            "repro_phase1_paged_entries_total", stats.paged_entries,
            help="Subcluster summaries paged to the outlier store",
            partition=name,
        )

    def _fit_arrays(
        self, points: np.ndarray, cross_matrices: Optional[Dict[str, np.ndarray]] = None
    ) -> BirchResult:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        cross_matrices = cross_matrices or {}
        if set(cross_matrices) != set(self._cross_dimensions):
            raise ValueError(
                f"cross matrices {sorted(cross_matrices)} do not match declared "
                f"cross partitions {sorted(self._cross_dimensions)}"
            )
        for name, matrix in cross_matrices.items():
            if matrix.shape[0] != points.shape[0]:
                raise ValueError(f"cross matrix {name!r} has mismatched row count")
        # Non-finite values would silently poison every moment downstream;
        # fail loudly at the boundary instead.
        if points.size and not np.all(np.isfinite(points)):
            raise ValueError(
                f"partition {self.partition.name!r} contains non-finite values"
            )
        for name, matrix in cross_matrices.items():
            matrix = np.asarray(matrix, dtype=np.float64)
            if matrix.size and not np.all(np.isfinite(matrix)):
                raise ValueError(f"cross matrix {name!r} contains non-finite values")

        # Chunk at the memory-check cadence so the budget is probed at
        # exactly the same points of the scan as the per-point loop
        # (every ``_MEMORY_CHECK_INTERVAL`` tuples); an unlimited run
        # ingests the whole scan as one batch unless ``scan_chunk_rows``
        # asks for a finer cadence.
        chunk = self._scan_cadence(max(points.shape[0], 1))
        cross_names = list(cross_matrices)

        def batches():
            for start in range(0, points.shape[0], chunk):
                stop = min(start + chunk, points.shape[0])
                yield (
                    points[start:stop],
                    {name: cross_matrices[name][start:stop] for name in cross_names},
                )

        return self._run_scan(batches(), validate=False)

    def _scan_cadence(self, default: Optional[int]) -> Optional[int]:
        """Rows per batch: the budget cadence wins, then ``scan_chunk_rows``.

        ``default`` is what an unconstrained scan uses — the whole array
        for :meth:`fit_arrays`, ``None`` (keep incoming chunk boundaries)
        for :meth:`fit_chunks`.
        """
        if self.options.memory_limit_bytes is not None:
            return _MEMORY_CHECK_INTERVAL
        if self.options.scan_chunk_rows is not None:
            return self.options.scan_chunk_rows
        return default

    def _rebatched(self, chunks, cadence: Optional[int]):
        """Re-cut a chunk stream into ``(points, cross)`` batches of ``cadence`` rows.

        ``cadence=None`` passes chunks through on their own boundaries.
        Otherwise batches of exactly ``cadence`` rows are emitted (the
        last may be shorter), crossing chunk boundaries where necessary:
        aligned spans are sliced zero-copy from the incoming views, and
        only boundary-straddling batches concatenate (at most ``cadence``
        rows copied at a time).  Values are untouched either way, which
        is what makes budgeted scans bit-identical across sources.
        """
        point_key = self.partition.name
        cross_names = list(self._cross_dimensions)
        pending: List[Dict[str, np.ndarray]] = []
        buffered = 0

        def materialize(arrays: Dict[str, np.ndarray]):
            return arrays[point_key], {name: arrays[name] for name in cross_names}

        for chunk in chunks:
            arrays = {}
            try:
                for name in [point_key, *cross_names]:
                    arrays[name] = np.atleast_2d(
                        np.asarray(chunk.arrays[name], dtype=np.float64)
                    )
            except KeyError as error:
                raise ValueError(
                    f"chunk lacks matrix {error.args[0]!r}; scanning "
                    f"{point_key!r} needs {[point_key, *cross_names]}"
                ) from None
            if cadence is None:
                yield materialize(arrays)
                continue
            n_rows = arrays[point_key].shape[0]
            start = 0
            while start < n_rows:
                if not pending and n_rows - start >= cadence:
                    # Fast path: a whole batch inside one chunk — pure views.
                    yield materialize(
                        {name: array[start : start + cadence] for name, array in arrays.items()}
                    )
                    start += cadence
                    continue
                take = min(cadence - buffered, n_rows - start)
                pending.append(
                    {name: array[start : start + take] for name, array in arrays.items()}
                )
                buffered += take
                start += take
                if buffered == cadence:
                    yield materialize(
                        {
                            name: np.concatenate([piece[name] for piece in pending])
                            for name in [point_key, *cross_names]
                        }
                    )
                    pending = []
                    buffered = 0
        if pending:
            yield materialize(
                {
                    name: np.concatenate([piece[name] for piece in pending])
                    for name in [point_key, *cross_names]
                }
            )

    def _run_scan(self, batches, *, validate: bool) -> BirchResult:
        """The one-pass scan core shared by the array and chunk entry points.

        ``batches`` yields ``(points, cross_matrices)`` blocks already cut
        at the resolved cadence; ``validate`` turns on per-block
        finiteness checks for sources nobody validated upfront.
        """
        stats = Phase1Stats()
        started = time.perf_counter()
        tree = ACFTree(
            dimension=self.partition.dimension,
            threshold=self.options.initial_threshold,
            branching=self.options.branching,
            leaf_capacity=self.options.leaf_capacity,
            cross_dimensions=self._cross_dimensions,
        )
        stats.threshold_history.append(tree.threshold)
        store = OutlierStore(self.memory_model)
        if self.options.batch_insert:
            stats.scan = ScanStats()

        for block, cross_blocks in batches:
            if validate:
                if block.size and not np.all(np.isfinite(block)):
                    raise ValueError(
                        f"partition {self.partition.name!r} contains non-finite values"
                    )
                for name, matrix in cross_blocks.items():
                    if matrix.size and not np.all(np.isfinite(matrix)):
                        raise ValueError(
                            f"cross matrix {name!r} contains non-finite values"
                        )
            if self.options.batch_insert:
                tree.insert_points(block, cross_blocks, stats=stats.scan)
                stats.points_inserted += block.shape[0]
                if (
                    self.options.memory_limit_bytes is not None
                    and stats.points_inserted % _MEMORY_CHECK_INTERVAL == 0
                ):
                    tree = self._enforce_budget(tree, store, stats)
            else:
                for i in range(block.shape[0]):
                    cross_values = {name: cross_blocks[name][i] for name in cross_blocks}
                    tree.insert_point(block[i], cross_values)
                    stats.points_inserted += 1
                    if (
                        self.options.memory_limit_bytes is not None
                        and stats.points_inserted % _MEMORY_CHECK_INTERVAL == 0
                    ):
                        tree = self._enforce_budget(tree, store, stats)

        if self.options.memory_limit_bytes is not None:
            tree = self._enforce_budget(tree, store, stats)

        if len(store):
            # Outliers are "significantly smaller than the frequency
            # threshold": replay judges them against the outlier bar, not
            # the full frequency count (which Phase II applies later).
            stats.replay = store.replay_into(
                tree, self._outlier_bar(stats.points_inserted)
            )

        clusters = list(tree.entries())
        if self.options.global_refinement and len(clusters) > 1:
            # BIRCH's global phase: undo order-dependence by merging leaf
            # entries whose unions still respect the final threshold.
            clusters = refine_entries(clusters, tree.threshold)
        stats.seconds = time.perf_counter() - started
        stats.final_entry_count = len(clusters)
        stats.final_tree_bytes = self.memory_model.tree_bytes(*tree.summary_counts())
        return BirchResult(
            partition=self.partition, clusters=clusters, stats=stats, tree=tree
        )

    # ------------------------------------------------------------------

    def _frequency_count(self, n_points: int) -> int:
        return max(1, math.ceil(self.options.frequency_fraction * n_points))

    def _outlier_bar(self, n_points: int) -> int:
        """Entries 'significantly smaller than the frequency threshold'."""
        bar = self.options.outlier_page_fraction * self._frequency_count(n_points)
        return max(2, math.floor(bar))

    def _tree_bytes(self, tree: ACFTree) -> int:
        return self.memory_model.tree_bytes(*tree.summary_counts())

    def _enforce_budget(
        self, tree: ACFTree, store: OutlierStore, stats: Phase1Stats
    ) -> ACFTree:
        """Escalate the threshold (and page outliers) until within budget.

        Coarsening comes first: raising the threshold and rebuilding is what
        BIRCH does on overflow, and it keeps the summary representative.
        Outlier paging is the secondary valve, applied after a rebuild that
        did not shrink the tree enough — paging *before* coarsening would
        let a stream of young singleton subclusters drain to the outlier
        store without the threshold ever adapting.
        """
        budget = self.options.memory_limit_bytes
        assert budget is not None
        attempts = 0
        while (
            self._tree_bytes(tree) > budget
            and attempts < self.options.max_rebuilds_per_overflow
        ):
            new_threshold = self._schedule.next_threshold(tree)
            tree = rebuild_tree(tree, new_threshold, stats=stats.scan)
            stats.rebuilds += 1
            stats.threshold_history.append(new_threshold)
            attempts += 1
            if self._tree_bytes(tree) > budget:
                bar = self._outlier_bar(stats.points_inserted)
                tree, outliers = split_off_outlier_entries(tree, bar, stats=stats.scan)
                if outliers:
                    store.page_out(outliers)
                    stats.pages_out += 1
                    stats.paged_entries += len(outliers)
        return tree


def assign_to_centroids(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Label each point with the index of its closest centroid.

    This is the Section 4.3.2 labeling rule ("find the centroid closest to
    the point and define the tuple to be in the cluster represented by this
    centroid"), vectorized.  Returns ``-1`` labels when there are no
    centroids.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    if centroids.shape[0] == 0:
        return np.full(points.shape[0], -1, dtype=np.intp)
    # Chunk to bound the (n_points x n_centroids) distance matrix.
    labels = np.empty(points.shape[0], dtype=np.intp)
    chunk = max(1, int(2_000_000 / max(centroids.shape[0], 1)))
    for start in range(0, points.shape[0], chunk):
        block = points[start : start + chunk]
        deltas = block[:, None, :] - centroids[None, :, :]
        distances = np.einsum("ijk,ijk->ij", deltas, deltas)
        labels[start : start + chunk] = np.argmin(distances, axis=1)
    return labels
