"""The ACF-tree: a height-balanced tree of cluster summaries.

This is the Phase I data structure of the paper (Sections 3, 4.3.1 and 6.1):
a CF-tree in the style of BIRCH [ZRL96] whose leaf entries are ACFs.  Points
are inserted one at a time; each point descends to the leaf whose subtree
centroid is closest, is absorbed into the closest leaf entry if doing so
keeps the entry's (RMS) diameter under the current *diameter threshold*, and
otherwise starts a new entry.  Full nodes split exactly as in a B+-tree,
with the farthest pair of entries seeding the two halves.

The tree knows how many bytes its summaries occupy (see
:mod:`repro.birch.memory`), which is what drives the adaptive behaviour:
when the budget is exceeded the owner raises the threshold and rebuilds the
tree from its own leaf entries (:mod:`repro.birch.rebuild`) — no rescan of
the data.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.birch.batch import BatchInserter, ScanStats, _Batch
from repro.birch.features import ACF, CF, merged_rms_diameter
from repro.birch.node import InternalNode, LeafNode, Node

__all__ = ["ACFTree"]


def _merged_point_rms_diameter(cf: CF, point: np.ndarray) -> float:
    """RMS diameter of ``cf`` plus one point, without building a CF for it."""
    n = cf.n + 1
    if n < 2:
        return 0.0
    ls = cf.ls + point
    ss = cf.ss_total + float(point @ point)
    squared = (2.0 * n * ss - 2.0 * float(ls @ ls)) / (n * (n - 1))
    return float(np.sqrt(max(squared, 0.0)))


def _farthest_pair(centroids: np.ndarray) -> Optional[Tuple[int, int]]:
    """Indices of the two mutually farthest rows (used to seed a split).

    Returns ``None`` when every centroid coincides: argmax over an all-zero
    distance matrix would return the diagonal pair ``(0, 0)``, and seeding a
    split with identical seeds degenerates into a one-vs-rest partition.
    Callers fall back to an even partition in that case.
    """
    deltas = centroids[:, None, :] - centroids[None, :, :]
    distances = np.linalg.norm(deltas, axis=-1)
    flat = int(np.argmax(distances))
    seed_a, seed_b = flat // distances.shape[0], flat % distances.shape[0]
    if seed_a == seed_b:
        return None
    return seed_a, seed_b


def _split_assignment(centroids: np.ndarray) -> np.ndarray:
    """Boolean mask sending each row to the left (True) or right half.

    Seeds the two halves with the farthest pair and assigns every row to the
    closer seed; when all centroids coincide there is no farthest pair, so
    the rows are divided evenly and deterministically instead (the seed-based
    rule would send one row left and everything else right, producing a
    maximally lopsided split that can immediately re-overflow).
    """
    pair = _farthest_pair(centroids)
    if pair is None:
        go_left = np.zeros(len(centroids), dtype=bool)
        go_left[: (len(centroids) + 1) // 2] = True
        return go_left
    seed_a, seed_b = pair
    distances_a = np.linalg.norm(centroids - centroids[seed_a], axis=1)
    distances_b = np.linalg.norm(centroids - centroids[seed_b], axis=1)
    go_left = distances_a <= distances_b
    go_left[seed_a] = True
    go_left[seed_b] = False
    return go_left


class ACFTree:
    """Height-balanced tree of ACF subcluster summaries.

    Parameters
    ----------
    dimension:
        Arity of the clustering partition ``X``.
    threshold:
        Diameter threshold ``T``: a point joins an existing subcluster only
        if the merged RMS diameter stays at or below ``T``.
    branching:
        Maximum children of an internal node (``B`` in BIRCH).
    leaf_capacity:
        Maximum ACF entries per leaf (``L`` in BIRCH).
    cross_dimensions:
        Mapping of other-partition name to arity, fixing the cross-moment
        layout every ACF entry must carry (Eq. 7).
    """

    def __init__(
        self,
        dimension: int,
        threshold: float,
        branching: int = 8,
        leaf_capacity: int = 8,
        cross_dimensions: Optional[Mapping[str, int]] = None,
    ):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.dimension = dimension
        self.threshold = float(threshold)
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.cross_dimensions: Dict[str, int] = dict(cross_dimensions or {})
        self._root: Node = LeafNode(leaf_capacity, dimension)
        self._first_leaf: LeafNode = self._root  # head of the leaf chain
        self._n_points = 0
        self._n_splits = 0
        # Lazily-created batch engine; its mirror caches survive across
        # insert_points calls but must be dropped whenever the sequential
        # mutators touch the tree behind its back.
        self._batch_engine: Optional[BatchInserter] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of tuples summarized by the tree."""
        return self._n_points

    @property
    def n_splits(self) -> int:
        """Number of node splits performed so far."""
        return self._n_splits

    @property
    def height(self) -> int:
        """Levels from root to leaf (a lone root counts as 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            height += 1
        return height

    def leaves(self) -> Iterator[LeafNode]:
        """Iterate leaves left-to-right along the leaf chain."""
        leaf: Optional[LeafNode] = self._first_leaf
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def entries(self) -> Iterator[ACF]:
        """All subcluster summaries, in leaf-chain order."""
        for leaf in self.leaves():
            yield from leaf.entries

    def entry_count(self) -> int:
        """Total ACF entries across all leaves."""
        return sum(leaf.entry_count() for leaf in self.leaves())

    def node_count(self) -> int:
        """Total nodes (leaves plus internal) in the tree."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[attr-defined]
        return count

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert_point(
        self, point: np.ndarray, cross_values: Optional[Mapping[str, np.ndarray]] = None
    ) -> None:
        """Insert one tuple's projection (plus its cross projections).

        Fast path of the scan loop: when the point is absorbed by an
        existing subcluster (the overwhelmingly common case once the tree
        has warmed up), only in-place moment updates happen — no ACF is
        materialized for the point.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimension,):
            raise ValueError(
                f"point has shape {point.shape}, tree dimension is {self.dimension}"
            )
        cross_values = cross_values or {}
        if set(cross_values) != set(self.cross_dimensions):
            raise ValueError(
                f"cross values for {sorted(cross_values)} do not match the "
                f"tree's cross partitions {sorted(self.cross_dimensions)}"
            )
        self._batch_engine = None  # mirrors would go stale

        path: List[InternalNode] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)  # type: ignore[arg-type]
            node = node.closest_child(point)  # type: ignore[attr-defined]
        leaf: LeafNode = node  # type: ignore[assignment]

        absorbed = False
        if leaf.entries:
            index, _ = leaf.closest_entry(point)
            candidate = leaf.entries[index]
            if _merged_point_rms_diameter(candidate.cf, point) <= self.threshold:
                candidate.add_point(point, cross_values)
                leaf.note_point(point)
                absorbed = True
        if not absorbed:
            leaf.add_entry(ACF.of_point(point, cross_values))
        for ancestor in path:
            ancestor.note_point(point)
        if not absorbed and leaf.entry_count() > self.leaf_capacity:
            self._split_leaf(leaf)
        self._n_points += 1

    def insert_points(
        self,
        points: np.ndarray,
        cross_values: Optional[Mapping[str, np.ndarray]] = None,
        stats: Optional[ScanStats] = None,
    ) -> ScanStats:
        """Insert a batch of tuples through the vectorized scan engine.

        ``points`` is ``(n, dimension)``; ``cross_values`` maps each
        declared cross partition to its ``(n, arity)`` matrix of the same
        tuples.  The resulting tree has the *same leaf-entry moments* as
        ``n`` sequential :meth:`insert_point` calls in row order — routing
        and absorption decisions are made one point at a time against
        incrementally updated centroid caches, only the bulk moment
        bookkeeping is deferred and vectorized (see
        :mod:`repro.birch.batch`).

        Pass an existing :class:`ScanStats` to accumulate instrumentation
        across batches; one is created (and returned) otherwise.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points have shape {points.shape}, tree dimension is {self.dimension}"
            )
        cross_values = {
            name: np.atleast_2d(np.asarray(matrix, dtype=np.float64))
            for name, matrix in (cross_values or {}).items()
        }
        if set(cross_values) != set(self.cross_dimensions):
            raise ValueError(
                f"cross values for {sorted(cross_values)} do not match the "
                f"tree's cross partitions {sorted(self.cross_dimensions)}"
            )
        for name, matrix in cross_values.items():
            if matrix.shape != (points.shape[0], self.cross_dimensions[name]):
                raise ValueError(
                    f"cross matrix {name!r} has shape {matrix.shape}, expected "
                    f"{(points.shape[0], self.cross_dimensions[name])}"
                )
        stats = stats if stats is not None else ScanStats()
        if points.shape[0] == 0:
            return stats
        self._engine().run(_Batch.of_points(points, cross_values), stats)
        return stats

    def insert_entries(
        self, entries: Sequence[ACF], stats: Optional[ScanStats] = None
    ) -> ScanStats:
        """Insert a batch of subcluster summaries through the batch engine.

        The batched twin of :meth:`insert_entry`, used by rebuilds and
        outlier paging so coarsening re-insertion rides the same vectorized
        path as the scan.  The engine copies any entry it keeps as a new
        leaf entry, so callers retain ownership of ``entries``.
        """
        entries = list(entries)
        stats = stats if stats is not None else ScanStats()
        if not entries:
            return stats
        layout = set(self.cross_dimensions)
        for entry in entries:
            if entry.cf.dimension != self.dimension:
                raise ValueError("entry dimension does not match tree dimension")
            if set(entry.cross) != layout:
                raise ValueError(
                    f"entry cross partitions {sorted(entry.cross)} do not match "
                    f"the tree's {sorted(layout)}"
                )
        self._engine().run(_Batch.of_entries(entries), stats)
        return stats

    def _engine(self) -> BatchInserter:
        if self._batch_engine is None:
            self._batch_engine = BatchInserter(self)
        return self._batch_engine

    def insert_entry(self, entry: ACF) -> None:
        """Insert a whole subcluster (used by rebuilds and outlier replay)."""
        if entry.cf.dimension != self.dimension:
            raise ValueError("entry dimension does not match tree dimension")
        self._batch_engine = None  # mirrors would go stale
        self._insert_entry(entry)
        self._n_points += entry.n

    def _insert_entry(self, entry: ACF) -> None:
        point = entry.centroid
        path: List[InternalNode] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)  # type: ignore[arg-type]
            node = node.closest_child(point)  # type: ignore[attr-defined]
        leaf: LeafNode = node  # type: ignore[assignment]

        absorbed = False
        if leaf.entries:
            index, _ = leaf.closest_entry(point)
            candidate = leaf.entries[index]
            if merged_rms_diameter(candidate.cf, entry.cf) <= self.threshold:
                candidate.merge(entry)
                leaf.note_cf(entry.cf)
                absorbed = True
        if not absorbed:
            leaf.add_entry(entry)
        for ancestor in path:
            ancestor.note_cf(entry.cf)
        if not absorbed and leaf.entry_count() > self.leaf_capacity:
            self._split_leaf(leaf)

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------

    def _split_leaf(self, leaf: LeafNode) -> None:
        """Split an over-full leaf around its farthest pair of entries."""
        entries = leaf.entries
        centroids = np.stack([entry.centroid for entry in entries])
        go_left = _split_assignment(centroids)

        left = LeafNode(self.leaf_capacity, self.dimension)
        right = LeafNode(self.leaf_capacity, self.dimension)
        for entry, is_left in zip(entries, go_left):
            (left if is_left else right).add_entry(entry)

        # Splice both halves into the leaf chain in place of ``leaf``.
        left.prev_leaf = leaf.prev_leaf
        left.next_leaf = right
        right.prev_leaf = left
        right.next_leaf = leaf.next_leaf
        if leaf.prev_leaf is not None:
            leaf.prev_leaf.next_leaf = left
        else:
            self._first_leaf = left
        if leaf.next_leaf is not None:
            leaf.next_leaf.prev_leaf = right

        self._replace_child(leaf, left, right)
        self._n_splits += 1

    def _replace_child(self, old: Node, left: Node, right: Node) -> None:
        """Swap ``old`` for ``left``+``right`` in the parent, splitting upward."""
        parent = old.parent
        if parent is None:
            new_root = InternalNode(self.branching, self.dimension)
            new_root.add_child(left)
            new_root.add_child(right)
            new_root.recompute_cf()
            self._root = new_root
            return
        index = parent.children.index(old)
        parent.children[index] = left
        left.parent = parent
        parent.add_child(right)
        if parent.entry_count() > self.branching:
            self._split_internal(parent)

    def _split_internal(self, node: InternalNode) -> None:
        """Split an over-full internal node around its farthest child pair."""
        children = node.children
        centroids = np.stack(
            [
                child.cf.centroid if child.cf.n else np.zeros(self.dimension)
                for child in children
            ]
        )
        go_left = _split_assignment(centroids)

        left = InternalNode(self.branching, self.dimension)
        right = InternalNode(self.branching, self.dimension)
        for child, is_left in zip(children, go_left):
            (left if is_left else right).add_child(child)
        left.recompute_cf()
        right.recompute_cf()
        self._replace_child(node, left, right)
        self._n_splits += 1

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def closest_entry(self, point: np.ndarray) -> Optional[ACF]:
        """Greedy closest-centroid descent (used to label tuples, §4.3.2).

        Returns ``None`` on an empty tree.  Because descent is greedy, this
        is the same approximate assignment the paper describes ("this
        cluster may not be the same cluster to which the tuple was assigned
        when it was originally inserted").
        """
        point = np.asarray(point, dtype=np.float64)
        node = self._root
        while not node.is_leaf:
            node = node.closest_child(point)  # type: ignore[attr-defined]
        leaf: LeafNode = node  # type: ignore[assignment]
        if not leaf.entries:
            return None
        index, _ = leaf.closest_entry(point)
        return leaf.entries[index]

    # ------------------------------------------------------------------
    # Memory accounting (see repro.birch.memory for the byte model)
    # ------------------------------------------------------------------

    def summary_counts(self) -> Tuple[int, int, int]:
        """(leaf entries, leaf nodes, internal nodes) for the memory model."""
        n_entries = 0
        n_leaves = 0
        n_internal = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                n_leaves += 1
                n_entries += node.entry_count()
            else:
                n_internal += 1
                stack.extend(node.children)  # type: ignore[attr-defined]
        return n_entries, n_leaves, n_internal

    # ------------------------------------------------------------------
    # Checkpoint state (repro.resilience.checkpoint)
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The complete tree as plain built-in types.

        Serializes the *structure*, not just the leaf entries: every node's
        aggregate CF, the child order of internal nodes, the entry order of
        leaves, and the leaf chain.  A tree restored by :meth:`from_state`
        therefore makes bit-identical routing and absorption decisions on
        all subsequent insertions — which is what makes resume-then-finish
        equivalent to an uninterrupted run.

        Calling this quiesces the lazy batch engine (its mirror caches are
        rebuilt from node state on the next batch), so a checkpointed run
        and a resumed run see identical engine state from here on.
        """
        self._batch_engine = None
        leaf_ids = {id(leaf): index for index, leaf in enumerate(self.leaves())}

        def encode(node: Node) -> Dict[str, object]:
            state: Dict[str, object] = {"cf": node.cf.state_dict()}
            if node.is_leaf:
                leaf: LeafNode = node  # type: ignore[assignment]
                if id(leaf) not in leaf_ids:
                    raise RuntimeError(
                        "ACF-tree leaf is not on the leaf chain; tree is corrupt"
                    )
                state["leaf"] = leaf_ids[id(leaf)]
                state["entries"] = [entry.state_dict() for entry in leaf.entries]
            else:
                state["children"] = [
                    encode(child)
                    for child in node.children  # type: ignore[attr-defined]
                ]
            return state

        root = encode(self._root)
        n_leaves = sum(1 for _ in self.leaves())
        if n_leaves != len(leaf_ids):  # pragma: no cover - defensive
            raise RuntimeError("leaf chain does not cover the tree")
        return {
            "dimension": self.dimension,
            "threshold": self.threshold,
            "branching": self.branching,
            "leaf_capacity": self.leaf_capacity,
            "cross_dimensions": dict(self.cross_dimensions),
            "n_points": self._n_points,
            "n_splits": self._n_splits,
            "n_leaves": n_leaves,
            "root": root,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "ACFTree":
        """Rebuild the exact tree serialized by :meth:`state_dict`."""
        tree = cls(
            dimension=int(state["dimension"]),  # type: ignore[arg-type]
            threshold=float(state["threshold"]),  # type: ignore[arg-type]
            branching=int(state["branching"]),  # type: ignore[arg-type]
            leaf_capacity=int(state["leaf_capacity"]),  # type: ignore[arg-type]
            cross_dimensions={
                name: int(dim)
                for name, dim in state["cross_dimensions"].items()  # type: ignore[attr-defined]
            },
        )
        n_leaves = int(state["n_leaves"])  # type: ignore[arg-type]
        leaves: List[Optional[LeafNode]] = [None] * n_leaves

        def decode(node_state: Mapping[str, object]) -> Node:
            if "children" in node_state:
                node: Node = InternalNode(tree.branching, tree.dimension)
                for child_state in node_state["children"]:  # type: ignore[attr-defined]
                    node.add_child(decode(child_state))  # type: ignore[attr-defined]
            else:
                leaf = LeafNode(tree.leaf_capacity, tree.dimension)
                leaf.entries = [
                    ACF.from_state(entry_state)
                    for entry_state in node_state["entries"]  # type: ignore[attr-defined]
                ]
                index = int(node_state["leaf"])  # type: ignore[arg-type]
                if not 0 <= index < n_leaves or leaves[index] is not None:
                    raise ValueError(f"invalid or duplicate leaf id {index} in state")
                leaves[index] = leaf
                node = leaf
            # Restore the aggregate exactly as serialized — recomputing it
            # would re-associate the float sums and perturb routing.
            node._cf = CF.from_state(node_state["cf"])  # type: ignore[assignment]
            return node

        tree._root = decode(state["root"])  # type: ignore[arg-type]
        missing = [index for index, leaf in enumerate(leaves) if leaf is None]
        if missing:
            raise ValueError(f"leaf ids {missing} missing from serialized tree")
        for index in range(n_leaves - 1):
            leaves[index].next_leaf = leaves[index + 1]  # type: ignore[union-attr]
            leaves[index + 1].prev_leaf = leaves[index]  # type: ignore[union-attr]
        tree._first_leaf = leaves[0]  # type: ignore[assignment]
        tree._n_points = int(state["n_points"])  # type: ignore[arg-type]
        tree._n_splits = int(state["n_splits"])  # type: ignore[arg-type]
        return tree
