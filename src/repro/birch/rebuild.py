"""Tree rebuilding: coarsen the summary without rescanning the data.

Section 4.3.1: "If the memory is full, the tree is reduced by increasing the
diameter threshold and rebuilding the tree.  The rebuilding is done by
re-inserting leaf CF nodes into the tree.  Hence, the data ... does not need
to be rescanned."  Because ACFs are additive, re-inserting the existing leaf
entries under a larger threshold merges nearby subclusters and shrinks the
summary while preserving every moment exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.birch.batch import ScanStats
from repro.birch.features import ACF
from repro.birch.tree import ACFTree
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["rebuild_tree", "split_off_outlier_entries"]


def rebuild_tree(
    tree: ACFTree, new_threshold: float, stats: Optional[ScanStats] = None
) -> ACFTree:
    """Re-insert ``tree``'s leaf entries into a fresh tree at ``new_threshold``.

    The result summarizes exactly the same tuples (same total count, same
    global moments); only the granularity changes.  Raises ``ValueError``
    if the threshold does not increase, since a rebuild at the same or a
    smaller threshold cannot shrink the tree.  ``stats`` (when given)
    accumulates the replay's scan instrumentation and rebuild count.
    """
    if new_threshold <= tree.threshold and tree.threshold > 0:
        raise ValueError(
            f"rebuild threshold {new_threshold} must exceed current {tree.threshold}"
        )
    with span(
        "phase1.rebuild",
        old_threshold=tree.threshold,
        new_threshold=new_threshold,
    ) as rebuild_span:
        rebuilt = ACFTree(
            dimension=tree.dimension,
            threshold=new_threshold,
            branching=tree.branching,
            leaf_capacity=tree.leaf_capacity,
            cross_dimensions=tree.cross_dimensions,
        )
        # Copies: insertion may merge subsequent entries INTO an earlier one,
        # and the original tree still references them — rebuilds must not
        # mutate their input.
        rebuilt.insert_entries([entry.copy() for entry in tree.entries()], stats=stats)
        if stats is not None:
            stats.rebuilds += 1
        rebuild_span.set("entries", rebuilt.summary_counts()[0])
        obs_metrics.inc(
            "repro_threshold_escalations_total",
            help="Diameter-threshold escalations (memory-pressure rebuilds)",
        )
        return rebuilt


def split_off_outlier_entries(
    tree: ACFTree, min_count: int, stats: Optional[ScanStats] = None
) -> Tuple[ACFTree, List[ACF]]:
    """Rebuild ``tree`` keeping only entries with at least ``min_count`` tuples.

    The removed (outlier) entries are returned so the caller can page them
    out and replay them once the scan completes (Section 4.3.1 outlier
    handling).  If *every* entry is an outlier the tree is left as-is and
    nothing is paged out, since discarding the whole summary would lose the
    scan.
    """
    keep: List[ACF] = []
    outliers: List[ACF] = []
    for entry in tree.entries():
        (keep if entry.n >= min_count else outliers).append(entry)
    if not keep:
        return tree, []
    rebuilt = ACFTree(
        dimension=tree.dimension,
        threshold=tree.threshold,
        branching=tree.branching,
        leaf_capacity=tree.leaf_capacity,
        cross_dimensions=tree.cross_dimensions,
    )
    # see rebuild_tree on why the entries are copied
    rebuilt.insert_entries([entry.copy() for entry in keep], stats=stats)
    return rebuilt, outliers
