"""Memory accounting and the adaptive threshold controller.

Section 3 of the paper frames the whole approach around an operating
constraint: *given a limited amount of memory, find rules at the finest
level possible*.  The mechanism (inherited from BIRCH) is a byte budget on
the summary tree; when the budget is exceeded, the diameter threshold is
raised and the tree rebuilt from its own leaf entries, coarsening the
summaries without rescanning the data.

The byte model below charges each ACF leaf entry for its count, linear sum,
square sum, bounding box, and all cross moments, and charges nodes a fixed
overhead plus per-slot pointers.  The absolute constants matter less than
being *monotone in what the paper says matters* (entries x dimensions): the
adaptive loop only compares model output against the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["MemoryModel", "ThresholdSchedule"]

_FLOAT_BYTES = 8
_POINTER_BYTES = 8
_NODE_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class MemoryModel:
    """Byte-size model for an ACF-tree over a given partition layout."""

    dimension: int
    cross_dimensions: Mapping[str, int]
    branching: int
    leaf_capacity: int

    def bytes_per_leaf_entry(self) -> int:
        """One ACF: N + LS + SS + lo + hi over X, plus (N, LS, SS) per Y."""
        own = _FLOAT_BYTES * (1 + 4 * self.dimension)
        cross = sum(
            _FLOAT_BYTES * (1 + 2 * dim) for dim in self.cross_dimensions.values()
        )
        return own + cross

    def bytes_per_leaf_node(self) -> int:
        """Fixed cost of a leaf node, excluding its entries."""
        return _NODE_OVERHEAD_BYTES + _POINTER_BYTES * (self.leaf_capacity + 2)

    def bytes_per_internal_node(self) -> int:
        # Each child slot holds a pointer plus the child's aggregate CF.
        """Fixed cost of an internal node and its child slots."""
        per_slot = _POINTER_BYTES + _FLOAT_BYTES * (1 + 2 * self.dimension)
        return _NODE_OVERHEAD_BYTES + per_slot * self.branching

    def tree_bytes(self, n_entries: int, n_leaves: int, n_internal: int) -> int:
        """Estimated bytes for a tree of the given shape."""
        return (
            n_entries * self.bytes_per_leaf_entry()
            + n_leaves * self.bytes_per_leaf_node()
            + n_internal * self.bytes_per_internal_node()
        )

    def max_entries_within(self, budget_bytes: int) -> int:
        """Rough entry capacity of a budget (ignores interior-node share)."""
        per_entry = self.bytes_per_leaf_entry() + self.bytes_per_leaf_node() / max(
            self.leaf_capacity, 1
        )
        return max(int(budget_bytes / per_entry), 1)


class ThresholdSchedule:
    """Chooses the next diameter threshold when the tree outgrows memory.

    BIRCH's heuristic: the new threshold should be large enough that some
    existing subclusters merge.  We take the maximum of a multiplicative
    bump and the smallest centroid distance between any two entries sharing
    a leaf (the cheapest merge the rebuild could perform), so every rebuild
    is guaranteed to shrink the tree by at least one entry in the worst
    case.
    """

    def __init__(self, growth_factor: float = 2.0, initial_step: float = 1e-3):
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1 for progress")
        self.growth_factor = growth_factor
        self.initial_step = initial_step

    def state_dict(self) -> dict:
        """Plain-builtin form for checkpoints."""
        return {"growth_factor": self.growth_factor, "initial_step": self.initial_step}

    @classmethod
    def from_state(cls, state: dict) -> "ThresholdSchedule":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            growth_factor=float(state["growth_factor"]),
            initial_step=float(state["initial_step"]),
        )

    def next_threshold(self, tree) -> float:
        """Next threshold for ``tree`` (an :class:`~repro.birch.tree.ACFTree`)."""
        current = tree.threshold
        bumped = current * self.growth_factor if current > 0 else self.initial_step
        closest = self._closest_intra_leaf_distance(tree)
        if closest is not None:
            bumped = max(bumped, closest)
        return bumped

    @staticmethod
    def _closest_intra_leaf_distance(tree) -> float:
        best = None
        for leaf in tree.leaves():
            if len(leaf.entries) < 2:
                continue
            centroids = np.stack([entry.centroid for entry in leaf.entries])
            deltas = centroids[:, None, :] - centroids[None, :, :]
            distances = np.linalg.norm(deltas, axis=-1)
            np.fill_diagonal(distances, np.inf)
            leaf_best = float(distances.min())
            if best is None or leaf_best < best:
                best = leaf_best
        return best
