"""Nodes of the ACF-tree.

Per Section 6.1 of the paper: "An ACF-tree is a CF-tree with the leaf nodes
modified to be ACFs.  The internal nodes remain CF nodes."  Leaf nodes hold
lists of ACF entries (one per subcluster); internal nodes hold children and
maintain an aggregate CF summary, updated incrementally along the insertion
path, used to steer each new point toward the closest subtree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.birch.features import ACF, CF

__all__ = ["Node", "LeafNode", "InternalNode"]


class Node:
    """Common interface for ACF-tree nodes."""

    __slots__ = ("parent", "_cf")

    def __init__(self, dimension: int) -> None:
        self.parent: Optional["InternalNode"] = None
        self._cf = CF.zero(dimension)

    @property
    def cf(self) -> CF:
        """Aggregate CF of every tuple below this node."""
        return self._cf

    def note_point(self, point: np.ndarray) -> None:
        """Record that one tuple was inserted somewhere below this node."""
        self._cf.add_point(point)

    def note_cf(self, cf: CF) -> None:
        """Record that a whole subcluster was inserted below this node."""
        self._cf.merge(cf)

    @property
    def is_leaf(self) -> bool:  # pragma: no cover - abstract
        """Whether this node holds entries rather than children."""
        raise NotImplementedError

    def entry_count(self) -> int:  # pragma: no cover - abstract
        """Number of entries (leaf) or children (internal)."""
        raise NotImplementedError

    def recompute_cf(self) -> None:  # pragma: no cover - abstract
        """Rebuild the aggregate CF from scratch (after splits)."""
        raise NotImplementedError


class LeafNode(Node):
    """A leaf holding up to ``capacity`` ACF subcluster entries.

    Leaves are chained (``prev_leaf``/``next_leaf``) like a B+-tree so the
    final cluster set can be read off in one scan without descending.
    """

    __slots__ = ("entries", "capacity", "prev_leaf", "next_leaf")

    def __init__(self, capacity: int, dimension: int):
        super().__init__(dimension)
        if capacity < 2:
            raise ValueError("leaf capacity must be at least 2 to allow splits")
        self.entries: List[ACF] = []
        self.capacity = capacity
        self.prev_leaf: Optional["LeafNode"] = None
        self.next_leaf: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        """Always ``True``."""
        return True

    @property
    def is_full(self) -> bool:
        """Whether the leaf is at entry capacity."""
        return len(self.entries) >= self.capacity

    def entry_count(self) -> int:
        """Number of ACF entries stored."""
        return len(self.entries)

    def recompute_cf(self) -> None:
        """Re-aggregate the node CF from its entries."""
        cf = CF.zero(self._cf.dimension)
        for entry in self.entries:
            cf.merge(entry.cf)
        self._cf = cf

    def closest_entry(self, point: np.ndarray) -> Tuple[int, float]:
        """Index of and centroid distance to the entry closest to ``point``.

        Raises ``ValueError`` on an empty leaf.  Hot path: compares squared
        distances entry by entry instead of stacking centroids.
        """
        if not self.entries:
            raise ValueError("closest_entry on an empty leaf")
        point = np.asarray(point, dtype=np.float64)
        best_index = -1
        best_squared = np.inf
        for index, entry in enumerate(self.entries):
            cf = entry.cf
            if cf.n == 0:
                # An n == 0 entry (possible transiently during rebuild
                # replay) has no centroid; dividing through would produce
                # NaN distances and nondeterministic routing.
                continue
            delta = cf.ls / cf.n - point
            squared = float(delta @ delta)
            if squared < best_squared:
                best_index = index
                best_squared = squared
        if best_index < 0:
            raise ValueError("closest_entry on a leaf with only empty entries")
        return best_index, float(np.sqrt(best_squared))

    def add_entry(self, entry: ACF) -> None:
        """Append ``entry`` and fold it into the node CF."""
        self.entries.append(entry)
        self._cf.merge(entry.cf)


class InternalNode(Node):
    """An internal node holding child subtrees and their aggregate CF."""

    __slots__ = ("children", "branching")

    def __init__(self, branching: int, dimension: int):
        super().__init__(dimension)
        if branching < 2:
            raise ValueError("branching factor must be at least 2")
        self.children: List[Node] = []
        self.branching = branching

    @property
    def is_leaf(self) -> bool:
        """Always ``False``."""
        return False

    @property
    def is_full(self) -> bool:
        """Whether the node is at branching capacity."""
        return len(self.children) >= self.branching

    def entry_count(self) -> int:
        """Number of child subtrees."""
        return len(self.children)

    def recompute_cf(self) -> None:
        """Re-aggregate the node CF from its children."""
        cf = CF.zero(self._cf.dimension)
        for child in self.children:
            cf.merge(child.cf)
        self._cf = cf

    def add_child(self, child: Node) -> None:
        """Attach ``child`` and take ownership (sets its parent)."""
        self.children.append(child)
        child.parent = self

    def closest_child(self, point: np.ndarray) -> Node:
        """The child whose aggregate centroid is closest to ``point``.

        Hot path: squared distances via one dot product per child.
        """
        if not self.children:
            raise ValueError("closest_child on an empty internal node")
        point = np.asarray(point, dtype=np.float64)
        best: Optional[Node] = None
        best_squared = np.inf
        for child in self.children:
            cf = child.cf
            if cf.n == 0:
                continue
            delta = cf.ls / cf.n - point
            squared = float(delta @ delta)
            if squared < best_squared:
                best = child
                best_squared = squared
        if best is None:
            # All children empty (possible transiently during a rebuild):
            # descend anywhere.
            return self.children[0]
        return best
