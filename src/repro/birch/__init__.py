"""BIRCH-style adaptive clustering with association clustering features.

Phase I substrate of the paper: CF/ACF summaries (:mod:`.features`), the
height-balanced summary tree (:mod:`.tree`), memory accounting and the
adaptive threshold schedule (:mod:`.memory`), rebuilds (:mod:`.rebuild`),
outlier paging (:mod:`.outliers`) and the one-pass scan driver
(:mod:`.birch`).
"""

from repro.birch.batch import ScanStats
from repro.birch.birch import (
    BirchClusterer,
    BirchOptions,
    BirchResult,
    Phase1Stats,
    assign_to_centroids,
)
from repro.birch.features import ACF, CF, merged_rms_diameter
from repro.birch.memory import MemoryModel, ThresholdSchedule
from repro.birch.outliers import OutlierStore, ReplayReport
from repro.birch.rebuild import rebuild_tree, split_off_outlier_entries
from repro.birch.tree import ACFTree

__all__ = [
    "ACF",
    "CF",
    "merged_rms_diameter",
    "ACFTree",
    "ScanStats",
    "MemoryModel",
    "ThresholdSchedule",
    "OutlierStore",
    "ReplayReport",
    "rebuild_tree",
    "split_off_outlier_entries",
    "BirchClusterer",
    "BirchOptions",
    "BirchResult",
    "Phase1Stats",
    "assign_to_centroids",
]
