"""Outlier store: paging low-support subclusters out of the tree.

Section 4.3.1: "As the CF-tree is being built, small clusters (outliers) may
be paged out to disk.  We define outliers to be the clusters that are
significantly smaller than the frequency threshold.  Since this is done
before all data has been scanned, clusters may be wrongly categorized as
outliers.  Hence, outliers need to be re-inserted into the complete tree to
ensure that they are indeed outliers."

This module provides the in-memory analogue of that disk page: a FIFO store
of ACF entries with byte accounting, plus the replay step that re-inserts
them after the scan and reports which ones were absorbed into real clusters
versus confirmed as outliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.birch.features import ACF, merged_rms_diameter
from repro.birch.memory import MemoryModel
from repro.birch.tree import ACFTree

__all__ = ["OutlierStore", "ReplayReport"]


@dataclass
class ReplayReport:
    """Outcome of re-inserting paged-out entries into the finished tree."""

    absorbed: int = 0
    confirmed_outliers: List[ACF] = field(default_factory=list)

    @property
    def confirmed_count(self) -> int:
        """Number of confirmed outlier subclusters."""
        return len(self.confirmed_outliers)

    @property
    def outlier_tuples(self) -> int:
        """Total tuples across confirmed outlier subclusters."""
        return sum(entry.n for entry in self.confirmed_outliers)


class OutlierStore:
    """Holds subclusters paged out of the ACF-tree during the scan."""

    def __init__(self, memory_model: MemoryModel):
        self._memory_model = memory_model
        self._entries: List[ACF] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[ACF, ...]:
        """The stored subclusters, as an immutable snapshot."""
        return tuple(self._entries)

    @property
    def tuple_count(self) -> int:
        """Total tuples across all stored subclusters."""
        return sum(entry.n for entry in self._entries)

    def bytes_used(self) -> int:
        """Memory charged to the store under the tree's cost model."""
        return len(self._entries) * self._memory_model.bytes_per_leaf_entry()

    def page_out(self, entries: List[ACF]) -> None:
        """Take ownership of entries evicted from the tree."""
        self._entries.extend(entries)

    def replay_into(self, tree: ACFTree, min_count: int) -> ReplayReport:
        """Re-insert stored entries that belong; confirm the rest as outliers.

        A stored entry is *absorbed* (re-inserted) when it would merge into
        an existing subcluster within the tree's diameter threshold, or
        when it grew past ``min_count`` while paged out (it may have merged
        with other strays before paging) and is therefore a real cluster in
        its own right.  Everything else is a confirmed outlier: it is never
        inserted, matching the paper's reading that outliers are excluded
        from Phase II.  The store is drained either way.
        """
        report = ReplayReport()
        for entry in self._entries:
            closest = tree.closest_entry(entry.centroid)
            mergeable = (
                closest is not None
                and merged_rms_diameter(closest.cf, entry.cf) <= tree.threshold
            )
            if mergeable or entry.n >= min_count:
                tree.insert_entry(entry)
                report.absorbed += 1
            else:
                report.confirmed_outliers.append(entry)
        self._entries.clear()
        return report
