"""The literal example datasets from the paper's figures.

These tiny relations drive the motivation experiments:

* Figure 1 — the six salary values whose equi-depth partition produces the
  unintuitive ``[31K, 80K]`` interval;
* Figure 2 — relations R1 and R2, on which Rule (1) has identical support
  and confidence but intuitively different strength;
* Figure 4 — the two overlapping 2-d clusters whose classical confidences
  (10/12 vs 10/13) order the rules opposite to the distance-based view;
* Figure 5 — the insurance example (age / dependents / claims) behind the
  N:1 rule definition.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.relation import Relation, Schema

__all__ = [
    "fig1_salaries",
    "fig2_relations",
    "fig4_points",
    "fig4_clusters",
    "fig5_insurance",
    "FIG2_RULE",
]


def fig1_salaries() -> np.ndarray:
    """The Salary column of Figure 1: {18K, 30K, 31K, 80K, 81K, 82K}."""
    return np.array([18_000.0, 30_000.0, 31_000.0, 80_000.0, 81_000.0, 82_000.0])


#: Rule (1): Job = DBA and Age = 30  =>  Salary = 40,000.
FIG2_RULE = {"job": "DBA", "age": 30.0, "salary": 40_000.0}


def _fig2_schema() -> Schema:
    return Schema.of(job="nominal", age="interval", salary="interval")


def fig2_relations() -> Tuple[Relation, Relation]:
    """Relations R1 and R2 of Figure 2 (six tuples each)."""
    schema = _fig2_schema()
    r1 = Relation.from_rows(
        schema,
        [
            ("Mgr", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 100_000),
            ("DBA", 30, 90_000),
        ],
    )
    r2 = Relation.from_rows(
        schema,
        [
            ("Mgr", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 40_000),
            ("DBA", 30, 41_000),
            ("DBA", 30, 42_000),
        ],
    )
    return r1, r2


def fig4_points(seed: int = 4) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Point sets realizing Figure 4's geometry.

    Returns ``(intersection, x_only, y_only)`` as (n, 2) arrays of (X, Y)
    values:

    * 10 points in both clusters (dense in X and in Y);
    * 2 points in C_X only, with Y values far from C_Y;
    * 3 points in C_Y only, with X values only moderately off C_X —
      "comparatively closer to the intersection".

    So |C_X| = 12, |C_Y| = 13, |C_X & C_Y| = 10, reproducing the classical
    confidences 10/12 and 10/13, while distance-wise C_Y => C_X is the
    stronger implication.
    """
    rng = np.random.default_rng(seed)
    intersection = np.column_stack(
        [
            50.0 + rng.uniform(-1.0, 1.0, size=10),
            50.0 + rng.uniform(-1.0, 1.0, size=10),
        ]
    )
    # In C_X only: X is clustered, Y is far away (these hurt C_X => C_Y a lot).
    x_only = np.column_stack(
        [
            50.0 + rng.uniform(-1.0, 1.0, size=2),
            np.array([90.0, 88.0]),
        ]
    )
    # In C_Y only: Y is clustered, X is moderately off (they hurt C_Y => C_X
    # less, despite being more numerous).
    y_only = np.column_stack(
        [
            np.array([58.0, 59.0, 57.5]),
            50.0 + rng.uniform(-1.0, 1.0, size=3),
        ]
    )
    return intersection, x_only, y_only


def fig4_clusters(seed: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """(C_X, C_Y) as (n, 2) arrays, assembled from :func:`fig4_points`."""
    intersection, x_only, y_only = fig4_points(seed)
    c_x = np.vstack([intersection, x_only])
    c_y = np.vstack([intersection, y_only])
    return c_x, c_y


def fig5_insurance(
    n_per_mode: int = 120, seed: int = 5
) -> Relation:
    """An insurance relation realizing Figure 5's three clusters.

    The target mode places ages in [41, 47], dependents in [2, 5] and
    annual claims in [10K, 14K]; two distractor modes make sure the rule
    has to be *found*, not just read off.
    """
    rng = np.random.default_rng(seed)
    modes = [
        # (age range, dependents range, claims range)
        ((41, 47), (2, 5), (10_000, 14_000)),
        ((22, 30), (0, 1), (1_000, 4_000)),
        ((55, 70), (0, 2), (20_000, 30_000)),
    ]
    ages, dependents, claims = [], [], []
    for (age_lo, age_hi), (dep_lo, dep_hi), (claim_lo, claim_hi) in modes:
        ages.append(rng.uniform(age_lo, age_hi, size=n_per_mode))
        dependents.append(rng.uniform(dep_lo, dep_hi, size=n_per_mode))
        claims.append(rng.uniform(claim_lo, claim_hi, size=n_per_mode))
    order = rng.permutation(3 * n_per_mode)
    schema = Schema.of(age="interval", dependents="interval", claims="interval")
    return Relation(
        schema,
        {
            "age": np.concatenate(ages)[order],
            "dependents": np.concatenate(dependents)[order],
            "claims": np.concatenate(claims)[order],
        },
    )
