"""CSV persistence for relations, with the schema in a header comment.

Format: a first line ``# name:kind,name:kind,...`` followed by a standard
CSV with a header row of attribute names.  Round-trips exactly for
interval/ordinal columns (repr-precision floats) and nominal strings.

:func:`load_csv` has two modes over one single-pass parser: the default
materializes an in-memory :class:`~repro.data.relation.Relation`;
``out_of_core=True`` streams rows to a memory-mapped
:class:`~repro.data.columnar.ColumnStore` so files larger than RAM load
in constant memory.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.data.relation import Attribute, AttributeKind, Relation, Schema
from repro.obs.trace import span
from repro.resilience.errors import IngestError

__all__ = ["save_csv", "load_csv", "load_plain_csv"]

PathLike = Union[str, Path]


def save_csv(relation: Relation, path: PathLike) -> None:
    """Write ``relation`` to ``path`` (parent directory must exist)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        schema_line = ",".join(
            f"{attribute.name}:{attribute.kind.value}"
            for attribute in relation.schema
        )
        handle.write(f"# {schema_line}\n")
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation.rows():
            writer.writerow([_render(value) for value in row])


def _render(value: object) -> str:
    # Numpy scalars repr as "np.float64(...)" under numpy >= 2; go through
    # the plain Python float, whose repr round-trips exactly.
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    return str(value)


def load_csv(
    path: PathLike,
    *,
    sink=None,
    out_of_core: bool = False,
    chunk_rows: Optional[int] = None,
    spill_dir: Optional[PathLike] = None,
):
    """Read a relation written by :func:`save_csv`.

    Strict by default: a missing or malformed schema header, a column row
    disagreeing with it, a row with the wrong number of cells, or an
    unparseable numeric cell all raise an
    :class:`~repro.resilience.errors.IngestError` (a ``ValueError``)
    naming the file, line and offending value.

    With ``sink`` (a :class:`~repro.resilience.sink.RowSink`), per-row
    problems — wrong arity, unparseable numbers, non-finite numeric
    values — are diverted to the sink instead of aborting, and the
    relation is built from the remaining clean rows.  File-level problems
    (missing header, bad schema line) always raise.  Row numbers reported
    to the sink are 0-based data-row indices (header lines excluded).

    With ``out_of_core=True`` the file is *spilled* instead of
    materialized: rows stream through a
    :class:`~repro.data.columnar.ColumnStoreWriter` into ``spill_dir``
    (a fresh temp directory when ``None``) in batches of ``chunk_rows``,
    and the return value is a memory-mapped
    :class:`~repro.data.columnar.ColumnStore` rather than a
    :class:`Relation`.  Parsing, the ``path:line`` error contract, and
    quarantine behaviour are byte-for-byte identical to the in-memory
    path — both are fed by the same single-pass row generator, so no
    mode ever re-reads the file to discover its row count.
    """
    path = Path(path)
    if not out_of_core and (chunk_rows is not None or spill_dir is not None):
        raise ValueError("chunk_rows/spill_dir are only meaningful with out_of_core=True")
    with path.open(newline="") as handle:
        schema, reader = _parse_header(handle, path)
        clean_rows = _iter_clean_rows(path, schema, reader, sink)
        if out_of_core:
            from repro.data.columnar.store import DEFAULT_CHUNK_ROWS, ColumnStoreWriter

            with span("columnar.spill", path=str(path)):
                with ColumnStoreWriter(
                    schema,
                    spill_dir,
                    chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
                ) as writer:
                    writer.append_rows(clean_rows)
                    return writer.finish()
        columns: dict = {name: [] for name in schema.names}
        for row in clean_rows:
            for name, value in zip(schema.names, row):
                columns[name].append(value)
    return Relation(schema, columns)


def _parse_header(handle, path: Path):
    """Parse the schema comment + column header; return ``(schema, reader)``.

    The reader is positioned at the first data row.  All file-level
    problems raise :class:`IngestError` naming the file.
    """
    first = handle.readline()
    if not first:
        raise IngestError(
            f"{path}: file is empty — expected a '# name:kind,...' "
            f"schema header as the first line"
        )
    if not first.startswith("#"):
        raise IngestError(f"{path}: missing '# name:kind,...' schema header")
    attributes = []
    for chunk in first[1:].strip().split(","):
        name, _, kind = chunk.partition(":")
        if not kind:
            raise IngestError(f"{path}: malformed schema entry {chunk!r}")
        try:
            parsed_kind = AttributeKind(kind.strip())
        except ValueError:
            raise IngestError(
                f"{path}: malformed schema entry {chunk!r}: unknown "
                f"attribute kind {kind.strip()!r}"
            ) from None
        attributes.append(Attribute(name.strip(), parsed_kind))
    schema = Schema(attributes)

    reader = csv.reader(handle)
    header = next(reader, None)
    if header is None:
        raise IngestError(
            f"{path}: file ends after the schema line — expected a "
            f"column header row naming {list(schema.names)}"
        )
    if tuple(header) != schema.names:
        raise IngestError(
            f"{path}: column header {header} does not match schema {schema.names}"
        )
    return schema, reader


def _iter_clean_rows(path: Path, schema: Schema, reader, sink):
    """Generate converted row tuples, one pass, diverting bad rows to ``sink``.

    Shared by the in-memory and out-of-core paths of :func:`load_csv`, so
    both see identical rows, identical errors, and identical quarantine
    records.  Row numbers reported to the sink are 0-based data-row
    indices; error messages use 1-based physical line numbers.
    """
    data_index = 0
    for line_number, row in enumerate(reader, start=3):
        if not row:
            continue  # blank line
        try:
            converted = _convert_row(path, schema, row, line_number, sink)
        except _RowRejected as rejection:
            sink.divert(data_index, rejection.reason, tuple(row))
        else:
            if sink is not None:
                sink.note_ok()
            yield converted
        data_index += 1


class _RowRejected(Exception):
    """Internal: a row failed conversion and a sink will absorb it."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _convert_row(path: Path, schema: Schema, row, line_number: int, sink):
    """One CSV row → typed tuple; raise precisely on anything wrong.

    Without a sink the error is an :class:`IngestError` naming
    ``path:line``; with one it is the internal ``_RowRejected`` carrying
    the same reason, which ``load_csv`` turns into a quarantine record.
    """
    def reject(reason: str):
        if sink is not None:
            return _RowRejected(reason)
        return IngestError(f"{path}:{line_number}: {reason}")

    if len(row) != len(schema):
        raise reject(
            f"row has {len(row)} cells, schema {tuple(schema.names)} "
            f"expects {len(schema)}"
        )
    converted = []
    for attribute, text in zip(schema, row):
        if attribute.kind.is_numeric:
            try:
                value = float(text)
            except ValueError:
                raise reject(
                    f"unparseable value {text!r} for "
                    f"{attribute.kind.value} attribute {attribute.name!r}"
                ) from None
            # Strict mode keeps NaN (cleaning may handle it downstream);
            # lenient mode quarantines it with the other bad rows.
            if sink is not None and not math.isfinite(value):
                raise reject(
                    f"non-finite value {text!r} for "
                    f"{attribute.kind.value} attribute {attribute.name!r}"
                )
            converted.append(value)
        else:
            converted.append(text)
    return tuple(converted)


def load_plain_csv(path: PathLike) -> Relation:
    """Read an ordinary CSV (header row, no schema comment), inferring kinds.

    A column whose every non-empty cell parses as a float becomes an
    ``interval`` attribute (blank cells load as NaN — clean them with
    :mod:`repro.data.cleaning` before mining); anything else is
    ``nominal``, with blanks kept as empty strings.  This is the
    permissive entry point for data not written by :func:`save_csv`; when
    ordinal semantics matter, construct the :class:`Schema` explicitly.
    Raises ``ValueError`` on an empty file or ragged rows.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            raise ValueError(f"{path}: empty file, expected a header row")
        rows = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: row has {len(row)} cells, "
                    f"header has {len(header)}"
                )
            rows.append(row)

    def is_numeric(column_index: int) -> bool:
        saw_value = False
        for row in rows:
            text = row[column_index].strip()
            if not text:
                continue
            saw_value = True
            try:
                float(text)
            except ValueError:
                return False
        return saw_value

    attributes = []
    numeric = []
    for index, name in enumerate(header):
        column_is_numeric = is_numeric(index)
        numeric.append(column_is_numeric)
        kind = AttributeKind.INTERVAL if column_is_numeric else AttributeKind.NOMINAL
        attributes.append(Attribute(name.strip(), kind))
    schema = Schema(attributes)

    def convert(index: int, cell: str):
        if not numeric[index]:
            return cell
        text = cell.strip()
        return float(text) if text else float("nan")

    converted = []
    for row in rows:
        converted.append(tuple(convert(index, cell) for index, cell in enumerate(row)))
    return Relation.from_rows(schema, converted)
