"""CSV persistence for relations, with the schema in a header comment.

Format: a first line ``# name:kind,name:kind,...`` followed by a standard
CSV with a header row of attribute names.  Round-trips exactly for
interval/ordinal columns (repr-precision floats) and nominal strings.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.relation import Attribute, AttributeKind, Relation, Schema

__all__ = ["save_csv", "load_csv", "load_plain_csv"]

PathLike = Union[str, Path]


def save_csv(relation: Relation, path: PathLike) -> None:
    """Write ``relation`` to ``path`` (parent directory must exist)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        schema_line = ",".join(
            f"{attribute.name}:{attribute.kind.value}"
            for attribute in relation.schema
        )
        handle.write(f"# {schema_line}\n")
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation.rows():
            writer.writerow([_render(value) for value in row])


def _render(value: object) -> str:
    # Numpy scalars repr as "np.float64(...)" under numpy >= 2; go through
    # the plain Python float, whose repr round-trips exactly.
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    return str(value)


def load_csv(path: PathLike) -> Relation:
    """Read a relation written by :func:`save_csv`.

    Raises ``ValueError`` when the schema header is missing or the column
    row disagrees with it.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        first = handle.readline()
        if not first.startswith("#"):
            raise ValueError(f"{path}: missing '# name:kind,...' schema header")
        attributes = []
        for chunk in first[1:].strip().split(","):
            name, _, kind = chunk.partition(":")
            if not kind:
                raise ValueError(f"{path}: malformed schema entry {chunk!r}")
            attributes.append(Attribute(name.strip(), AttributeKind(kind.strip())))
        schema = Schema(attributes)

        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != schema.names:
            raise ValueError(
                f"{path}: column header {header} does not match schema {schema.names}"
            )
        rows = []
        for row in reader:
            converted = []
            for attribute, text in zip(schema, row):
                if attribute.kind.is_numeric:
                    converted.append(float(text))
                else:
                    converted.append(text)
            rows.append(tuple(converted))
    return Relation.from_rows(schema, rows)


def load_plain_csv(path: PathLike) -> Relation:
    """Read an ordinary CSV (header row, no schema comment), inferring kinds.

    A column whose every non-empty cell parses as a float becomes an
    ``interval`` attribute (blank cells load as NaN — clean them with
    :mod:`repro.data.cleaning` before mining); anything else is
    ``nominal``, with blanks kept as empty strings.  This is the
    permissive entry point for data not written by :func:`save_csv`; when
    ordinal semantics matter, construct the :class:`Schema` explicitly.
    Raises ``ValueError`` on an empty file or ragged rows.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            raise ValueError(f"{path}: empty file, expected a header row")
        rows = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: row has {len(row)} cells, "
                    f"header has {len(header)}"
                )
            rows.append(row)

    def is_numeric(column_index: int) -> bool:
        saw_value = False
        for row in rows:
            text = row[column_index].strip()
            if not text:
                continue
            saw_value = True
            try:
                float(text)
            except ValueError:
                return False
        return saw_value

    attributes = []
    numeric = []
    for index, name in enumerate(header):
        column_is_numeric = is_numeric(index)
        numeric.append(column_is_numeric)
        kind = AttributeKind.INTERVAL if column_is_numeric else AttributeKind.NOMINAL
        attributes.append(Attribute(name.strip(), kind))
    schema = Schema(attributes)

    def convert(index: int, cell: str):
        if not numeric[index]:
            return cell
        text = cell.strip()
        return float(text) if text else float("nan")

    converted = []
    for row in rows:
        converted.append(tuple(convert(index, cell) for index, cell in enumerate(row)))
    return Relation.from_rows(schema, converted)
