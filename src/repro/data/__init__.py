"""Relations, attribute partitions, generators and IO."""

from repro.data.examples import (
    FIG2_RULE,
    fig1_salaries,
    fig2_relations,
    fig4_clusters,
    fig4_points,
    fig5_insurance,
)
from repro.data.cleaning import drop_missing, impute_mean, missing_mask
from repro.data.columnar import (
    Chunk,
    ChunkIterator,
    Column,
    ColumnStore,
    ColumnStoreWriter,
)
from repro.data.io import load_csv, load_plain_csv, save_csv
from repro.data.relation import (
    Attribute,
    AttributeKind,
    AttributePartition,
    Relation,
    Schema,
    default_partitions,
)
from repro.data.synthetic import (
    PlantedStructure,
    make_clustered_relation,
    make_planted_rule_relation,
    scale_relation,
)
from repro.data.wbcd import WBCD_ATTRIBUTES, make_scaled_wbcd, make_wbcd_like

__all__ = [
    "FIG2_RULE",
    "fig1_salaries",
    "fig2_relations",
    "fig4_clusters",
    "fig4_points",
    "fig5_insurance",
    "drop_missing",
    "impute_mean",
    "missing_mask",
    "Chunk",
    "ChunkIterator",
    "Column",
    "ColumnStore",
    "ColumnStoreWriter",
    "load_csv",
    "load_plain_csv",
    "save_csv",
    "Attribute",
    "AttributeKind",
    "AttributePartition",
    "Relation",
    "Schema",
    "default_partitions",
    "PlantedStructure",
    "make_clustered_relation",
    "make_planted_rule_relation",
    "scale_relation",
    "WBCD_ATTRIBUTES",
    "make_scaled_wbcd",
    "make_wbcd_like",
]
