"""Typed in-memory relations.

Every algorithm in this package operates over a :class:`Relation`: a small
columnar table with a :class:`Schema` that records, for each attribute,
whether it is *nominal* (names without order), *ordinal* (ordered, but
separations are meaningless) or *interval* (ordered with meaningful
separations).  The distinction is the heart of the paper: classical
association-rule machinery is correct for nominal/ordinal attributes, while
interval attributes call for the distance-based treatment implemented in
:mod:`repro.core`.

Columns are stored as numpy arrays: ``float64`` for ordinal and interval
attributes, ``object`` for nominal ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "AttributeKind",
    "Attribute",
    "Schema",
    "Relation",
    "AttributePartition",
    "default_partitions",
]


class AttributeKind(enum.Enum):
    """Measurement scale of an attribute (Stevens' typology, as in [JD88])."""

    NOMINAL = "nominal"
    ORDINAL = "ordinal"
    INTERVAL = "interval"

    @property
    def is_numeric(self) -> bool:
        """Ordinal and interval attributes order and subtract."""
        return self in (AttributeKind.ORDINAL, AttributeKind.INTERVAL)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    kind: AttributeKind = AttributeKind.INTERVAL

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


class Schema:
    """An ordered collection of uniquely named attributes."""

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._by_name: Dict[str, Attribute] = {}
        for attribute in self._attributes:
            if attribute.name in self._by_name:
                raise ValueError(f"duplicate attribute name: {attribute.name!r}")
            self._by_name[attribute.name] = attribute

    @classmethod
    def of(cls, **kinds: str) -> "Schema":
        """Build a schema from ``name=kind`` keyword pairs.

        >>> Schema.of(age="interval", job="nominal").names
        ('age', 'job')
        """
        return cls(Attribute(name, AttributeKind(kind)) for name, kind in kinds.items())

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no attribute named {name!r}; have {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.kind.value}" for a in self._attributes)
        return f"Schema({inner})"

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names``, in the given order."""
        return Schema(self[name] for name in names)

    def numeric_names(self) -> Tuple[str, ...]:
        """Names of ordinal and interval attributes."""
        return tuple(a.name for a in self._attributes if a.kind.is_numeric)

    def interval_names(self) -> Tuple[str, ...]:
        """Names of interval attributes."""
        return tuple(a.name for a in self._attributes if a.kind is AttributeKind.INTERVAL)

    def nominal_names(self) -> Tuple[str, ...]:
        """Names of nominal attributes."""
        return tuple(a.name for a in self._attributes if a.kind is AttributeKind.NOMINAL)


def _as_column(attribute: Attribute, values: Sequence) -> np.ndarray:
    """Coerce raw values into the canonical storage dtype for ``attribute``."""
    if attribute.kind.is_numeric:
        column = np.asarray(values, dtype=np.float64)
    else:
        column = np.empty(len(values), dtype=object)
        column[:] = list(values)
    return column


class Relation:
    """An immutable columnar relation ``r`` over a schema ``R``.

    The notation follows the paper: ``|R|`` is the number of attributes
    (:meth:`arity`), ``|r|`` the number of tuples (``len(relation)``).
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence]):
        self._schema = schema
        missing = [name for name in schema.names if name not in columns]
        if missing:
            raise ValueError(f"columns missing for attributes: {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise ValueError(f"columns without schema attributes: {extra}")
        self._columns: Dict[str, np.ndarray] = {
            name: _as_column(schema[name], columns[name]) for name in schema.names
        }
        lengths = {len(column) for column in self._columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self._length = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Relation":
        """Build a relation from an iterable of tuples ordered like ``schema``."""
        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        columns = {
            name: [row[i] for row in materialized]
            for i, name in enumerate(schema.names)
        }
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """A zero-row relation over ``schema``."""
        return cls(schema, {name: [] for name in schema.names})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, n={self._length})"

    def column(self, name: str) -> np.ndarray:
        """The raw storage array for attribute ``name`` (do not mutate)."""
        self._schema[name]  # raise KeyError with a helpful message
        return self._columns[name]

    def rows(self) -> Iterator[Tuple]:
        """Iterate tuples in schema order."""
        columns = [self._columns[name] for name in self._schema.names]
        for i in range(self._length):
            yield tuple(column[i] for column in columns)

    def row(self, index: int) -> Tuple:
        """One tuple by position, in schema order."""
        return tuple(self._columns[name][index] for name in self._schema.names)

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """Stack numeric columns ``names`` into an ``(n, len(names))`` float array.

        This is the projection ``r[X]`` used throughout the paper for a
        partition ``X`` of interval attributes.
        """
        arrays = []
        for name in names:
            attribute = self._schema[name]
            if not attribute.kind.is_numeric:
                raise TypeError(f"attribute {name!r} is {attribute.kind.value}, not numeric")
            arrays.append(self._columns[name])
        if not arrays:
            return np.empty((self._length, 0), dtype=np.float64)
        return np.column_stack(arrays)

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Relation":
        """Projection ``r[X]`` keeping duplicates (bag semantics, as the paper uses)."""
        schema = self._schema.project(names)
        return Relation(schema, {name: self._columns[name] for name in names})

    def select(self, mask: Sequence[bool]) -> "Relation":
        """Selection by boolean mask, preserving order."""
        mask_array = np.asarray(mask, dtype=bool)
        if mask_array.shape != (self._length,):
            raise ValueError(
                f"mask length {mask_array.shape} does not match relation size {self._length}"
            )
        return Relation(
            self._schema,
            {name: column[mask_array] for name, column in self._columns.items()},
        )

    def take(self, indices: Sequence[int]) -> "Relation":
        """Select rows by position (duplicates and reorderings allowed)."""
        index_array = np.asarray(indices, dtype=np.intp)
        return Relation(
            self._schema,
            {name: column[index_array] for name, column in self._columns.items()},
        )

    def concat(self, other: "Relation") -> "Relation":
        """Append ``other``'s tuples; schemas must match exactly."""
        if other.schema != self._schema:
            raise ValueError("cannot concat relations with different schemas")
        return Relation(
            self._schema,
            {
                name: np.concatenate([self._columns[name], other._columns[name]])
                for name in self._schema.names
            },
        )

    def head(self, n: int = 5) -> "Relation":
        """The first ``n`` tuples (fewer if the relation is smaller)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.take(range(min(n, self._length)))

    def sample(self, n: int, seed: int = 0) -> "Relation":
        """``n`` tuples drawn without replacement, deterministic in ``seed``.

        Raises ``ValueError`` when ``n`` exceeds the relation size.
        """
        if n > self._length:
            raise ValueError(f"cannot sample {n} of {self._length} tuples")
        rng = np.random.default_rng(seed)
        return self.take(rng.choice(self._length, size=n, replace=False))


@dataclass(frozen=True)
class AttributePartition:
    """One element ``X_i`` of the user-supplied partition of the attributes.

    Section 6 of the paper: the miner operates over a single partitioning of
    the interval attributes into disjoint sets, each equipped with a point
    metric that is meaningful *within* the set (e.g. Euclidean over
    latitude/longitude).  Most partitions are single attributes.
    """

    name: str
    attributes: Tuple[str, ...]
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a partition must contain at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"partition {self.name!r} repeats attributes")

    @property
    def dimension(self) -> int:
        """Number of attributes in the partition."""
        return len(self.attributes)


def default_partitions(schema: Schema, metric: str = "euclidean") -> List[AttributePartition]:
    """One single-attribute partition per interval attribute.

    This is the default the paper assumes when no cross-attribute metric is
    known ("for most attribute combinations, we will not have a meaningful
    distance metric", Section 5.2).
    """
    return [
        AttributePartition(name=name, attributes=(name,), metric=metric)
        for name in schema.interval_names()
    ]
