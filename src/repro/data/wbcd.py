"""A synthetic stand-in for the Wisconsin Breast Cancer Data (WBCD).

Section 7.2 evaluates on a 500-tuple subset of WBCD with 30 interval
attributes (the key and the binary outcome removed).  The UCI dataset is
not available offline, so we generate a deterministic surrogate that
matches what the experiment actually depends on (see DESIGN.md,
"Substitutions"):

* 500 tuples over 30 positively-scaled interval attributes;
* a bimodal structure (WBCD's benign/malignant populations) with
  positively correlated features inside each mode — ten underlying
  "cell-nucleus" factors, each reported as mean / standard-error / worst,
  which is exactly how the real WBCD's 30 features arise from 10
  measurements;
* heterogeneous per-attribute scales (radius-like ~10, area-like ~500,
  fractal-dimension-like ~0.06) so per-partition thresholds matter.

The scaling experiment then replicates this seed relation with jitter and
proportional outliers via :func:`repro.data.synthetic.scale_relation`,
matching the paper's "hold data complexity constant, grow the size"
protocol.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.relation import Attribute, AttributeKind, Relation, Schema
from repro.data.synthetic import scale_relation

__all__ = ["WBCD_ATTRIBUTES", "make_wbcd_like", "make_scaled_wbcd"]

_FACTOR_NAMES = (
    "radius",
    "texture",
    "perimeter",
    "area",
    "smoothness",
    "compactness",
    "concavity",
    "concave_points",
    "symmetry",
    "fractal_dimension",
)

# Per-factor (benign mean, malignant mean, within-mode std) loosely shaped
# after the published WBCD summary statistics.
_FACTOR_PROFILES = {
    "radius": (12.1, 17.5, 1.8),
    "texture": (17.9, 21.6, 3.0),
    "perimeter": (78.0, 115.0, 12.0),
    "area": (463.0, 978.0, 120.0),
    "smoothness": (0.092, 0.103, 0.012),
    "compactness": (0.080, 0.145, 0.030),
    "concavity": (0.046, 0.160, 0.040),
    "concave_points": (0.026, 0.088, 0.018),
    "symmetry": (0.174, 0.193, 0.022),
    "fractal_dimension": (0.063, 0.063, 0.006),
}

#: The 30 attribute names: mean / standard-error / worst per factor.
WBCD_ATTRIBUTES: Tuple[str, ...] = tuple(
    f"{factor}_{suffix}"
    for factor in _FACTOR_NAMES
    for suffix in ("mean", "se", "worst")
)


def make_wbcd_like(
    n_tuples: int = 500, malignant_fraction: float = 0.37, seed: int = 42
) -> Relation:
    """Generate the 500x30 WBCD surrogate (see module docstring).

    ``malignant_fraction`` defaults to the real dataset's class balance
    (212/569).  Deterministic in ``seed``.
    """
    if n_tuples < 2:
        raise ValueError("need at least two tuples for a bimodal dataset")
    if not 0.0 < malignant_fraction < 1.0:
        raise ValueError("malignant_fraction must be strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    n_malignant = max(1, int(round(n_tuples * malignant_fraction)))
    n_benign = n_tuples - n_malignant
    modes = np.concatenate([np.zeros(n_benign, dtype=int), np.ones(n_malignant, dtype=int)])
    rng.shuffle(modes)

    # One latent severity factor per tuple correlates the ten measurements
    # within a mode, mimicking WBCD's strongly correlated geometry features.
    severity = rng.normal(size=n_tuples)

    columns = {}
    for factor in _FACTOR_NAMES:
        benign_mean, malignant_mean, std = _FACTOR_PROFILES[factor]
        center = np.where(modes == 0, benign_mean, malignant_mean)
        mean_value = center + 0.6 * std * severity + rng.normal(scale=0.5 * std, size=n_tuples)
        mean_value = np.maximum(mean_value, 0.0)
        se_value = np.abs(
            0.1 * mean_value + rng.normal(scale=0.05 * std + 1e-9, size=n_tuples)
        )
        worst_value = mean_value + np.abs(
            rng.normal(scale=std, size=n_tuples)
        ) + 0.5 * std * (modes == 1)
        columns[f"{factor}_mean"] = mean_value
        columns[f"{factor}_se"] = se_value
        columns[f"{factor}_worst"] = worst_value

    schema = Schema(
        Attribute(name, AttributeKind.INTERVAL) for name in WBCD_ATTRIBUTES
    )
    return Relation(schema, columns)


def make_scaled_wbcd(
    target_size: int,
    outlier_fraction: float = 0.05,
    seed: int = 42,
    base: Relation = None,
) -> Relation:
    """The Section 7.2 workload at ``target_size`` tuples.

    Replicates the 500-tuple surrogate with jitter and grows the outlier
    population proportionally, holding the cluster structure constant.
    """
    if base is None:
        base = make_wbcd_like(seed=seed)
    return scale_relation(
        base,
        target_size=target_size,
        outlier_fraction=outlier_fraction,
        seed=seed + 1,
    )
