"""The on-disk columnar relation: per-column binary files + JSON manifest.

A :class:`ColumnStore` is the out-of-core twin of
:class:`~repro.data.relation.Relation`: the same schema and the same
``matrix``/``len`` surface the miner reads, but columns live in raw
little-endian binary files inside one directory, opened as
``numpy.memmap`` views so only the pages a scan touches are ever
resident.  The directory layout is::

    store/
      manifest.json          # format tag, row count, schema, column index
      c0000_age.data.bin     # one file per column storage part
      c0001_job.codes.bin
      ...

The manifest (see :data:`MANIFEST_VERSION`) records everything needed to
reopen the store: row count, write-side chunk size, the attribute schema
and, per column, the dtype manifest plus each part's file name and scalar
dtype.  ``manifest.json`` is written last, atomically, so a directory
with a manifest is a complete store by construction.

Construction paths:

* :meth:`ColumnStore.from_arrays` / :meth:`from_tuples` /
  :meth:`from_relation` — encode in-memory data and spill it.
* :class:`ColumnStoreWriter` — the streaming path:
  ``load_csv(..., out_of_core=True)`` feeds it row by row and it flushes
  every ``chunk_rows`` rows, so the CSV is never materialized.
* :meth:`ColumnStore.open` — reopen an existing directory.

Backend failures (missing files, corrupt manifests, truncated parts)
raise :class:`~repro.resilience.errors.ColumnStoreError`, which the
guarded miner catches to degrade to the in-memory engine.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.columnar.chunks import ChunkIterator
from repro.data.columnar.column import Column
from repro.data.columnar.dtypes import (
    CategoricalDtype,
    ColumnDtype,
    MaskedNumericDtype,
    NumericDtype,
)
from repro.data.relation import Attribute, AttributeKind, Relation, Schema
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.errors import ColumnStoreError, InjectedFault

__all__ = ["DEFAULT_CHUNK_ROWS", "MANIFEST_NAME", "ColumnStore", "ColumnStoreWriter"]

PathLike = Union[str, Path]

#: Default write-side spill granularity (rows buffered per flush) and the
#: default read-side scan cadence when the caller does not choose one.
DEFAULT_CHUNK_ROWS = 65536

#: The manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Manifest format version; bump when a field changes meaning.
MANIFEST_VERSION = 1

_FORMAT_TAG = "repro-columnar"


def _safe_file_prefix(index: int, name: str) -> str:
    """A filesystem-safe, unique file prefix for column ``index``/``name``."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    return f"c{index:04d}_{safe[:48]}"


def _resolve_directory(directory: Optional[PathLike]) -> Tuple[Path, bool]:
    """``(path, ephemeral)`` — a fresh temp dir when none was given."""
    if directory is None:
        return Path(tempfile.mkdtemp(prefix="repro-columnar-")), True
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    return path, False


class ColumnStoreWriter:
    """Single-pass streaming spill: rows in, a finished store out.

    Buffers converted rows per column and flushes every ``chunk_rows``
    rows by *appending* to each column's part files — the reason the
    format is raw binary: nothing about the files depends on the final
    row count, so the CSV reader never needs a counting pre-pass.
    Nominal columns build their category vocabulary incrementally;
    numeric columns store ``float64`` verbatim (NaN included).

    Use as a context manager or call :meth:`finish` explicitly;
    :meth:`abort` removes a partially written directory.
    """

    def __init__(
        self,
        schema: Schema,
        directory: Optional[PathLike] = None,
        *,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        self.schema = schema
        self.chunk_rows = int(chunk_rows)
        self.directory, self._ephemeral = _resolve_directory(directory)
        self.n_rows = 0
        self.n_bytes = 0
        self._buffers: Dict[str, List] = {name: [] for name in schema.names}
        self._buffered = 0
        self._categories: Dict[str, Dict[str, int]] = {}
        self._files: Dict[str, Path] = {}
        self._finished = False
        for index, attribute in enumerate(schema):
            prefix = _safe_file_prefix(index, attribute.name)
            part = "data" if attribute.kind.is_numeric else "codes"
            path = self.directory / f"{prefix}.{part}.bin"
            path.write_bytes(b"")  # truncate any stale file from a prior run
            self._files[attribute.name] = path
            if not attribute.kind.is_numeric:
                self._categories[attribute.name] = {}

    def append_row(self, row: Sequence) -> None:
        """Buffer one converted row (values in schema order)."""
        for name, value in zip(self.schema.names, row):
            self._buffers[name].append(value)
        self._buffered += 1
        self.n_rows += 1
        if self._buffered >= self.chunk_rows:
            self.flush()

    def append_rows(self, rows) -> None:
        """Buffer many rows (any iterable of schema-ordered sequences)."""
        for row in rows:
            self.append_row(row)

    def flush(self) -> None:
        """Append every buffered column slice to its part file."""
        if not self._buffered:
            return
        flushed_bytes = 0
        for attribute in self.schema:
            buffer = self._buffers[attribute.name]
            if attribute.kind.is_numeric:
                block = np.asarray(buffer, dtype="<f8")
            else:
                vocabulary = self._categories[attribute.name]
                codes = np.empty(len(buffer), dtype="<i4")
                for i, value in enumerate(buffer):
                    if value is None:
                        codes[i] = -1
                        continue
                    text = str(value)
                    code = vocabulary.get(text)
                    if code is None:
                        code = len(vocabulary)
                        vocabulary[text] = code
                    codes[i] = code
                block = codes
            with self._files[attribute.name].open("ab") as handle:
                block.tofile(handle)
            flushed_bytes += block.nbytes
            buffer.clear()
        self.n_bytes += flushed_bytes
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_data_spilled_rows_total", self._buffered,
                help="Rows spilled to columnar stores",
            )
            obs_metrics.inc(
                "repro_data_spilled_bytes_total", flushed_bytes,
                help="Bytes appended to columnar store part files",
                unit="bytes",
            )
        self._buffered = 0

    def finish(self) -> "ColumnStore":
        """Flush, write the manifest, and open the finished store."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self.flush()
        columns: Dict[str, Any] = {}
        for index, attribute in enumerate(self.schema):
            if attribute.kind.is_numeric:
                dtype: ColumnDtype = NumericDtype()
                part = "data"
            else:
                vocabulary = self._categories[attribute.name]
                ordered = sorted(vocabulary, key=vocabulary.__getitem__)
                dtype = CategoricalDtype(tuple(ordered))
                part = "codes"
            columns[attribute.name] = {
                "dtype": dtype.to_manifest(),
                "parts": {
                    part: {
                        "file": self._files[attribute.name].name,
                        "numpy_dtype": dtype.parts[part].str,
                    }
                },
            }
        _write_manifest(
            self.directory, self.schema, self.n_rows, self.chunk_rows, columns
        )
        self._finished = True
        return ColumnStore.open(self.directory, _ephemeral=self._ephemeral)

    def abort(self) -> None:
        """Discard a partial spill (removes the directory if we created it)."""
        self._finished = True
        if self._ephemeral:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "ColumnStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self._finished:
            self.abort()


def _write_manifest(
    directory: Path,
    schema: Schema,
    n_rows: int,
    chunk_rows: int,
    columns: Dict[str, Any],
) -> None:
    """Atomically write ``manifest.json`` (temp file + rename)."""
    document = {
        "format": _FORMAT_TAG,
        "schema_version": MANIFEST_VERSION,
        "n_rows": int(n_rows),
        "chunk_rows": int(chunk_rows),
        "attributes": [[a.name, a.kind.value] for a in schema],
        "columns": columns,
    }
    target = directory / MANIFEST_NAME
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, target)


class ColumnStore:
    """A memory-mapped columnar relation rooted at one directory.

    Offers the read surface the mining pipeline needs — ``schema``,
    ``len``, :meth:`matrix`, :meth:`chunks` — without ever loading a
    column eagerly: :meth:`matrix` returns a float64 *view* of the
    memory-mapped storage for single-attribute partitions (the common
    case), and a disk-backed stacked ``.npy`` for multi-attribute ones.
    Use :meth:`to_relation` to materialize an in-memory copy.

    Instances should be built through the classmethod constructors;
    stores created without an explicit ``directory`` live in a temp dir
    that is removed when the store is garbage-collected.
    """

    def __init__(
        self,
        directory: PathLike,
        schema: Schema,
        n_rows: int,
        chunk_rows: int,
        columns: Mapping[str, Any],
        *,
        _ephemeral: bool = False,
    ):
        self.directory = Path(directory)
        self._schema = schema
        self._n_rows = int(n_rows)
        self.chunk_rows = int(chunk_rows)
        self._manifest_columns = dict(columns)
        self._columns: Dict[str, Column] = {}
        self._stacks: Dict[Tuple[str, ...], np.ndarray] = {}
        if _ephemeral:
            weakref.finalize(self, shutil.rmtree, str(self.directory), True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: PathLike, *, _ephemeral: bool = False) -> "ColumnStore":
        """Open an existing store directory by reading its manifest.

        Any structural problem — missing or unparseable manifest, wrong
        format tag, unknown manifest version — raises
        :class:`~repro.resilience.errors.ColumnStoreError`.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            document = json.loads(manifest_path.read_text())
        except OSError as error:
            raise ColumnStoreError(
                f"{manifest_path}: cannot read store manifest: {error}"
            ) from error
        except ValueError as error:
            raise ColumnStoreError(
                f"{manifest_path}: store manifest is not valid JSON: {error}"
            ) from error
        if document.get("format") != _FORMAT_TAG:
            raise ColumnStoreError(
                f"{manifest_path}: not a {_FORMAT_TAG} manifest "
                f"(format={document.get('format')!r})"
            )
        if document.get("schema_version") != MANIFEST_VERSION:
            raise ColumnStoreError(
                f"{manifest_path}: manifest version "
                f"{document.get('schema_version')!r} is not supported "
                f"(expected {MANIFEST_VERSION})"
            )
        try:
            schema = Schema(
                Attribute(name, AttributeKind(kind))
                for name, kind in document["attributes"]
            )
            n_rows = int(document["n_rows"])
            chunk_rows = int(document["chunk_rows"])
            columns = document["columns"]
        except (KeyError, TypeError, ValueError) as error:
            raise ColumnStoreError(
                f"{manifest_path}: malformed store manifest: {error}"
            ) from error
        missing = [name for name in schema.names if name not in columns]
        if missing:
            raise ColumnStoreError(
                f"{manifest_path}: manifest lacks column entries for {missing}"
            )
        return cls(
            directory, schema, n_rows, chunk_rows, columns, _ephemeral=_ephemeral
        )

    @classmethod
    def from_arrays(
        cls,
        schema: Schema,
        arrays: Mapping[str, Sequence],
        *,
        directory: Optional[PathLike] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        dtypes: Optional[Mapping[str, ColumnDtype]] = None,
    ) -> "ColumnStore":
        """Spill per-attribute value sequences into a new store.

        ``dtypes`` optionally overrides the storage dtype per column —
        e.g. ``{"age": MaskedNumericDtype()}`` to store NaNs as an
        explicit validity mask.  Defaults follow the schema: numeric
        kinds → :class:`NumericDtype`, nominal →
        :class:`CategoricalDtype` over the observed values.
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        dtypes = dict(dtypes or {})
        missing = [name for name in schema.names if name not in arrays]
        if missing:
            raise ValueError(f"arrays missing for attributes: {missing}")
        directory, ephemeral = _resolve_directory(directory)
        columns: Dict[str, Any] = {}
        lengths = set()
        for index, attribute in enumerate(schema):
            dtype = dtypes.get(attribute.name)
            if dtype is None and not attribute.kind.is_numeric:
                dtype = CategoricalDtype.from_values(arrays[attribute.name])
            elif dtype is None:
                dtype = NumericDtype()
            column = Column(dtype, dtype.encode(arrays[attribute.name]))
            lengths.add(len(column))
            columns[attribute.name] = column.write(
                directory, _safe_file_prefix(index, attribute.name)
            )
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_data_spilled_rows_total", n_rows,
                help="Rows spilled to columnar stores",
            )
        _write_manifest(directory, schema, n_rows, chunk_rows, columns)
        return cls.open(directory, _ephemeral=ephemeral)

    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        rows,
        *,
        directory: Optional[PathLike] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ColumnStore":
        """Stream schema-ordered tuples into a new store (single pass)."""
        with ColumnStoreWriter(
            schema, directory, chunk_rows=chunk_rows
        ) as writer:
            writer.append_rows(rows)
            return writer.finish()

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        *,
        directory: Optional[PathLike] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ColumnStore":
        """Spill an in-memory relation column by column."""
        return cls.from_arrays(
            relation.schema,
            {name: relation.column(name) for name in relation.schema.names},
            directory=directory,
            chunk_rows=chunk_rows,
        )

    @classmethod
    def from_csv(
        cls,
        path: PathLike,
        *,
        directory: Optional[PathLike] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        sink=None,
    ) -> "ColumnStore":
        """Stream a repro CSV to disk without materializing it.

        Exactly :func:`repro.data.io.load_csv` with ``out_of_core=True``:
        one pass, the same strict ``path:line`` errors, the same optional
        quarantine ``sink``.
        """
        from repro.data.io import load_csv

        return load_csv(
            path,
            sink=sink,
            out_of_core=True,
            chunk_rows=chunk_rows,
            spill_dir=directory,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The store's schema (same type the in-memory relation uses)."""
        return self._schema

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return (
            f"ColumnStore({self._schema!r}, n={self._n_rows}, "
            f"dir={str(self.directory)!r})"
        )

    @property
    def n_bytes(self) -> int:
        """Total bytes of all column part files currently on disk."""
        total = 0
        for entry in self._manifest_columns.values():
            for part in entry["parts"].values():
                candidate = self.directory / part["file"]
                if candidate.exists():
                    total += candidate.stat().st_size
        return total

    def column(self, name: str) -> Column:
        """The memory-mapped :class:`Column` for attribute ``name``."""
        self._schema[name]  # KeyError with a helpful message on unknowns
        if name not in self._columns:
            try:
                self._columns[name] = Column.read(
                    self.directory, self._manifest_columns[name], self._n_rows
                )
            except (OSError, ValueError) as error:
                raise ColumnStoreError(
                    f"column {name!r} of store {self.directory} cannot be "
                    f"opened: {error}"
                ) from error
        return self._columns[name]

    # ------------------------------------------------------------------
    # Mining surface
    # ------------------------------------------------------------------

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """``(n, len(names))`` float64 array over numeric attributes.

        The out-of-core counterpart of :meth:`Relation.matrix`: for a
        single attribute (the default-partition case) this is a zero-copy
        reshaped view of the memory-mapped column, so scans stream pages
        from disk; for multi-attribute partitions the columns are stacked
        once into a disk-backed ``.npy`` inside the store directory
        (cached per name tuple) and memory-mapped back.  Backend failures
        raise :class:`~repro.resilience.errors.ColumnStoreError`.
        """
        try:
            faults.fire("columnar.matrix")
        except InjectedFault as error:
            raise ColumnStoreError(f"injected columnar backend failure: {error}") from error
        for name in names:
            attribute = self._schema[name]
            if not attribute.kind.is_numeric:
                raise TypeError(
                    f"attribute {name!r} is {attribute.kind.value}, not numeric"
                )
        if not names:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        if len(names) == 1:
            return self._numeric_view(names[0]).reshape(self._n_rows, 1)
        return self._stacked(tuple(names))

    def _numeric_view(self, name: str) -> np.ndarray:
        """A 1-D float64 array for ``name``, zero-copy whenever possible."""
        column = self.column(name)
        dtype = column.dtype
        if isinstance(dtype, NumericDtype):
            return np.asarray(column.parts["data"])
        if isinstance(dtype, MaskedNumericDtype):
            # No missing values: the data part alone is already canonical.
            if not bool(column.isna().any()):
                return np.asarray(column.parts["data"])
            return column.to_numpy()  # NaN-filled copy; validation rejects it
        raise TypeError(
            f"column {name!r} has non-numeric storage ({dtype.kind}); "
            f"it cannot join a numeric matrix"
        )

    def _stacked(self, names: Tuple[str, ...]) -> np.ndarray:
        """Disk-backed column stack for a multi-attribute partition."""
        if names in self._stacks:
            return self._stacks[names]
        digest = abs(hash(names)) % 16**8
        path = self.directory / f"_stack_{digest:08x}_{len(names)}.npy"
        with span("columnar.stack", columns=len(names), rows=self._n_rows):
            out = np.lib.format.open_memmap(
                path, mode="w+", dtype=np.float64, shape=(self._n_rows, len(names))
            )
            step = max(self.chunk_rows, 1)
            views = [self._numeric_view(name) for name in names]
            for start in range(0, self._n_rows, step):
                stop = min(start + step, self._n_rows)
                for j, view in enumerate(views):
                    out[start:stop, j] = view[start:stop]
            out.flush()
        del out
        mapped = np.load(path, mmap_mode="r")
        self._stacks[names] = mapped
        return mapped

    def chunks(
        self,
        partitions=None,
        *,
        chunk_rows: Optional[int] = None,
    ) -> ChunkIterator:
        """A :class:`ChunkIterator` over this store's partition matrices.

        ``partitions`` is a sequence of
        :class:`~repro.data.relation.AttributePartition` (default: one
        per interval attribute, as the miner assumes); ``chunk_rows``
        defaults to the store's write-side granularity.  The chunk views
        alias the memory-mapped columns, so iterating is allocation-free.
        """
        from repro.data.relation import default_partitions

        if partitions is None:
            partitions = default_partitions(self._schema)
        matrices = {p.name: self.matrix(p.attributes) for p in partitions}
        return ChunkIterator(matrices, chunk_rows or self.chunk_rows)

    def to_relation(self) -> Relation:
        """Materialize an in-memory :class:`Relation` copy of the store.

        This is the degradation target of the guard ladder's columnar
        rung — everything is copied out of the memory maps, so the
        relation stays valid after the store (or its directory) is gone.
        """
        columns = {}
        for name in self._schema.names:
            columns[name] = np.array(self.column(name).to_numpy(), copy=True)
        return Relation(self._schema, columns)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop cached columns and stacked matrices (releases the maps)."""
        self._columns.clear()
        self._stacks.clear()

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
