"""Fixed-row-count chunk iteration over columnar matrices.

The scan side of the out-of-core story: a :class:`ChunkIterator` walks a
set of named ``(n, dim)`` matrices — memory-mapped by
:meth:`~repro.data.columnar.store.ColumnStore.matrix`, or plain in-memory
arrays — and yields :class:`Chunk` objects holding *contiguous numpy
views* of every matrix over the same row range.  Slicing a memmap is a
zero-copy view, so iteration itself allocates nothing proportional to the
data; only the consumer's per-chunk arithmetic touches memory, which is
what bounds the resident set of a bigger-than-RAM scan.

Because views are position-agnostic, the read-side chunk size is
independent of the write-side spill granularity recorded in the store
manifest: the same store can be scanned at 256 rows per chunk by a
budgeted BIRCH pass and at 64k rows per chunk by a support post-scan.

Every yielded chunk increments the ``repro_data_chunks_scanned_total`` /
``repro_data_chunk_rows_total`` metrics and is wrapped in a
``columnar.chunk`` span, so traces show the scan cadence chunk by chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["Chunk", "ChunkIterator"]


@dataclass(frozen=True)
class Chunk:
    """One contiguous row range of every scanned matrix.

    ``arrays`` maps each matrix name (an attribute-partition name, in the
    mining pipeline) to its ``(n_rows, dim)`` view over rows
    ``[start, stop)`` of the source.  Views alias the source storage —
    treat them as read-only.
    """

    start: int
    stop: int
    arrays: Dict[str, np.ndarray]

    @property
    def n_rows(self) -> int:
        """Rows in this chunk (``stop - start``)."""
        return self.stop - self.start


class ChunkIterator:
    """Iterate named matrices in fixed-row-count contiguous chunks.

    ``matrices`` share one row count; ``chunk_rows`` is the cadence (the
    final chunk may be shorter).  The iterator is re-iterable: each
    ``iter()`` restarts from row zero, so one iterator object can drive
    several scans.

    >>> import numpy as np
    >>> chunks = ChunkIterator({"x": np.arange(10.0).reshape(5, 2)}, chunk_rows=2)
    >>> [chunk.start for chunk in chunks]
    [0, 2, 4]
    """

    def __init__(self, matrices: Mapping[str, np.ndarray], chunk_rows: int):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        if not matrices:
            raise ValueError("a chunk iterator needs at least one matrix")
        lengths = {name: matrix.shape[0] for name, matrix in matrices.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"matrices disagree on row count: {lengths}")
        self.matrices: Dict[str, np.ndarray] = dict(matrices)
        self.chunk_rows = int(chunk_rows)
        self.n_rows = next(iter(lengths.values()))

    def __len__(self) -> int:
        """Number of chunks a full iteration yields."""
        return -(-self.n_rows // self.chunk_rows) if self.n_rows else 0

    def __iter__(self) -> Iterator[Chunk]:
        for start in range(0, self.n_rows, self.chunk_rows):
            stop = min(start + self.chunk_rows, self.n_rows)
            with span("columnar.chunk", start=start, rows=stop - start):
                chunk = Chunk(
                    start=start,
                    stop=stop,
                    arrays={
                        name: matrix[start:stop]
                        for name, matrix in self.matrices.items()
                    },
                )
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_data_chunks_scanned_total",
                    help="Chunks yielded by columnar chunk iterators",
                )
                obs_metrics.inc(
                    "repro_data_chunk_rows_total",
                    stop - start,
                    help="Rows yielded by columnar chunk iterators",
                )
            yield chunk
