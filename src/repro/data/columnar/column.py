"""A typed, optionally memory-mapped column (extension-array style).

:class:`Column` pairs one :class:`~repro.data.columnar.dtypes.ColumnDtype`
with its storage parts — plain in-memory arrays after
:meth:`Column.from_values`, or ``numpy.memmap`` views after
:meth:`Column.read` opened the column's files from a store directory.
The API follows the pandas extension-array conventions the conformance
suite exercises: length, scalar ``[]`` access, zero-copy slicing,
:meth:`isna`, :meth:`take`, :meth:`to_numpy` and an :meth:`equals` that
treats NA = NA as equal.

Persistence is raw little-endian binary, one file per storage part
(``<prefix>.<part>.bin``), described by a manifest entry
(:meth:`write`'s return value) that records the file names and scalar
dtypes.  Raw binary — rather than ``.npy`` — keeps the spill path
single-pass: a ``.npy`` header bakes in the row count, which a streaming
CSV writer does not know until the scan ends, while raw parts can be
appended chunk by chunk and described by the manifest afterwards.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.data.columnar.dtypes import (
    CategoricalDtype,
    ColumnDtype,
    NumericDtype,
    dtype_from_manifest,
)

__all__ = ["Column"]

PathLike = Union[str, Path]


class Column:
    """One typed column: a dtype plus its named storage parts.

    ``parts`` must contain exactly the arrays the dtype declares, all
    1-D and of one shared length.  Columns are immutable by convention:
    no method mutates storage, and slicing returns views (mutating a
    view would corrupt the parent, exactly as with numpy arrays).
    """

    def __init__(self, dtype: ColumnDtype, parts: Mapping[str, np.ndarray]):
        expected = set(dtype.parts)
        got = set(parts)
        if expected != got:
            raise ValueError(
                f"{type(dtype).__name__} needs parts {sorted(expected)}, "
                f"got {sorted(got)}"
            )
        lengths = {len(array) for array in parts.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged column parts: lengths {sorted(lengths)}")
        self.dtype = dtype
        self.parts: Dict[str, np.ndarray] = dict(parts)
        self._length = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values, dtype: Optional[ColumnDtype] = None) -> "Column":
        """Build a column from canonical values, inferring a dtype if needed.

        Inference mirrors the relation's storage rule: float-coercible
        sequences become :class:`NumericDtype`, anything else becomes a
        :class:`CategoricalDtype` over the distinct values (first-seen
        order).  Pass ``dtype`` explicitly for masked-numeric columns or
        to pin a categorical vocabulary.
        """
        if dtype is None:
            try:
                np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError):
                dtype = CategoricalDtype.from_values(values)
            else:
                dtype = NumericDtype()
        return cls(dtype, dtype.encode(values))

    # ------------------------------------------------------------------
    # Array protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"Column({self.dtype!r}, n={self._length})"

    def __getitem__(self, item):
        """Scalar for an int index; a zero-copy view ``Column`` for a slice."""
        if isinstance(item, slice):
            return Column(
                self.dtype, {name: array[item] for name, array in self.parts.items()}
            )
        index = int(item)
        value = self.to_numpy()[index] if self._needs_decode() else self.parts["data"][index]
        if isinstance(value, np.floating):
            return float(value)
        return value

    def _needs_decode(self) -> bool:
        """Whether scalar access must go through the dtype's decode."""
        return not isinstance(self.dtype, NumericDtype)

    def isna(self) -> np.ndarray:
        """Boolean mask of missing values."""
        return self.dtype.isna(self.parts)

    def to_numpy(self) -> np.ndarray:
        """The canonical in-memory array (see :meth:`ColumnDtype.decode`).

        Zero-copy for :class:`NumericDtype`; a decoded copy for the
        masked and categorical dtypes (their canonical form differs from
        storage).
        """
        return self.dtype.decode(self.parts)

    def take(self, indices) -> "Column":
        """Rows by position (copies; duplicates and reorderings allowed)."""
        index_array = np.asarray(indices, dtype=np.intp)
        return Column(
            self.dtype,
            {name: array[index_array] for name, array in self.parts.items()},
        )

    def equals(self, other: "Column") -> bool:
        """Value equality with NA == NA (unlike ``==`` on float NaN)."""
        if not isinstance(other, Column) or len(self) != len(other):
            return False
        if not np.array_equal(self.isna(), other.isna()):
            return False
        mask = ~self.isna()
        mine, theirs = self.to_numpy()[mask], other.to_numpy()[mask]
        if self.dtype.is_numeric != other.dtype.is_numeric:
            return False
        if self.dtype.is_numeric:
            return bool(np.array_equal(mine, theirs))
        return bool(np.all(mine == theirs))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def write(self, directory: PathLike, prefix: str) -> Dict[str, Any]:
        """Write every part as ``<prefix>.<part>.bin``; return the manifest entry.

        The entry records the dtype manifest and, per part, the file name
        and scalar dtype string — everything :meth:`read` needs.  Files
        are raw little-endian binary with no header.
        """
        directory = Path(directory)
        entry: Dict[str, Any] = {"dtype": self.dtype.to_manifest(), "parts": {}}
        for name, array in self.parts.items():
            file_name = f"{prefix}.{name}.bin"
            storage = np.ascontiguousarray(array, dtype=self.dtype.parts[name])
            storage.tofile(directory / file_name)
            entry["parts"][name] = {
                "file": file_name,
                "numpy_dtype": self.dtype.parts[name].str,
            }
        return entry

    @classmethod
    def read(
        cls, directory: PathLike, entry: Mapping[str, Any], n_rows: int
    ) -> "Column":
        """Open a written column as memory-mapped parts (no data is read).

        ``entry`` is what :meth:`write` returned (via the store manifest);
        every part file must exist and hold exactly ``n_rows`` scalars,
        otherwise a ``ValueError`` names the offending file.
        """
        dtype = dtype_from_manifest(entry["dtype"])
        parts: Dict[str, np.ndarray] = {}
        for name, part in entry["parts"].items():
            path = Path(directory) / part["file"]
            scalar = np.dtype(part["numpy_dtype"])
            if not path.exists():
                raise ValueError(f"{path}: column part file is missing")
            actual = path.stat().st_size
            expected = n_rows * scalar.itemsize
            if actual != expected:
                raise ValueError(
                    f"{path}: expected {expected} bytes "
                    f"({n_rows} rows x {scalar.itemsize}), found {actual}"
                )
            if n_rows == 0:
                parts[name] = np.empty(0, dtype=scalar)
            else:
                parts[name] = np.memmap(path, dtype=scalar, mode="r", shape=(n_rows,))
        return cls(dtype, parts)
