"""Explicit column dtype objects for the columnar backend.

The in-memory :class:`~repro.data.relation.Relation` stores every numeric
column as ``float64`` and every nominal column as a python-object array.
The out-of-core backend needs a richer, *explicit* description of what is
on disk — modeled on pandas' extension dtypes (``IntervalDtype`` and
friends): a small dtype object that knows how to encode canonical values
into fixed-width storage parts, decode them back bit-identically, and
round-trip itself through the store's JSON manifest.

Three dtypes cover the relation model:

* :class:`NumericDtype` — ``float64`` values stored verbatim as one
  little-endian ``<f8`` part (``data``).  NaN is representable, so the
  encode/decode round trip is bit-identical including missing values.
* :class:`CategoricalDtype` — string (nominal) values stored as ``<i4``
  integer codes (``codes``) into an ordered category list kept in the
  manifest; code ``-1`` means NA and decodes to ``None``.
* :class:`MaskedNumericDtype` — ``float64`` values plus an explicit
  ``<u1`` validity mask (``mask``, 1 = missing).  Unlike
  :class:`NumericDtype` this distinguishes "missing" from a genuine NaN
  payload, the way pandas' masked arrays do; decode yields NaN at masked
  positions.

A dtype never touches files itself: it maps values to named *parts*
(``data``/``codes``/``mask``), each a 1-D numpy array of a fixed
little-endian scalar dtype, and :class:`~repro.data.columnar.column.Column`
handles persistence of those parts.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

import numpy as np

__all__ = [
    "ColumnDtype",
    "NumericDtype",
    "CategoricalDtype",
    "MaskedNumericDtype",
    "dtype_from_manifest",
]

#: Storage scalar types, fixed little-endian so column files are portable
#: across machines (numpy reads them back with an explicit byte order).
_FLOAT = np.dtype("<f8")
_CODE = np.dtype("<i4")
_MASK = np.dtype("<u1")


class ColumnDtype:
    """Base class of the explicit column dtypes.

    Subclasses define ``kind`` (the manifest tag), :meth:`encode`,
    :meth:`decode`, :meth:`isna` and the manifest round trip.  Dtype
    objects are cheap value objects: equality compares the manifest
    representation, so two independently constructed dtypes describing
    the same storage compare equal.
    """

    #: Manifest tag identifying the dtype class (overridden per subclass).
    kind: str = ""

    #: ``part name -> numpy storage dtype`` for this column's files.
    parts: Dict[str, np.dtype] = {}

    def encode(self, values) -> Dict[str, np.ndarray]:
        """Canonical values → ``{part_name: 1-D storage array}``."""
        raise NotImplementedError

    def decode(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """Storage parts → the canonical in-memory column array.

        The result is what :class:`~repro.data.relation.Relation` would
        store for the same values: ``float64`` for numeric dtypes, a
        python-object array for categorical.  Implementations return a
        *view* of the storage whenever the canonical form needs no
        transformation (see each subclass).
        """
        raise NotImplementedError

    def isna(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean array marking missing values, straight from storage."""
        raise NotImplementedError

    def to_manifest(self) -> Dict[str, Any]:
        """JSON-safe description; inverse of :func:`dtype_from_manifest`."""
        return {"kind": self.kind}

    @property
    def is_numeric(self) -> bool:
        """Whether :meth:`decode` yields a float64 array."""
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnDtype):
            return NotImplemented
        return self.to_manifest() == other.to_manifest()

    def __hash__(self) -> int:
        return hash(repr(sorted(self.to_manifest().items())))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    @staticmethod
    def _as_1d(values, dtype: np.dtype, what: str) -> np.ndarray:
        """Coerce ``values`` into a 1-D array of ``dtype``; reject 2-D."""
        array = np.asarray(values, dtype=dtype)
        if array.ndim != 1:
            raise ValueError(f"{what} must be one-dimensional, got shape {array.shape}")
        return array


class NumericDtype(ColumnDtype):
    """Plain ``float64`` storage: one ``data`` part, values verbatim.

    NaN round-trips as NaN (the relation's own missing-value convention
    for numeric columns), so encode→decode is bit-identical for every
    input including non-finite payloads.
    """

    kind = "numeric"
    parts = {"data": _FLOAT}

    def encode(self, values) -> Dict[str, np.ndarray]:
        """``values`` (any float-coercible sequence) → ``{"data": <f8}``."""
        return {"data": self._as_1d(values, _FLOAT, "numeric column values")}

    def decode(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """The ``data`` part itself — a zero-copy view of storage."""
        return np.asarray(parts["data"])

    def isna(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """NaN positions (the only missing representation this dtype has)."""
        return np.isnan(parts["data"])


class CategoricalDtype(ColumnDtype):
    """Nominal values stored as integer codes into an ordered category list.

    ``categories`` is the fixed vocabulary; the ``codes`` part holds the
    per-row index (``<i4``), with ``-1`` meaning NA.  Decoding yields a
    python-object array of the original category values (``None`` for
    NA), matching the relation's nominal-column storage.
    """

    kind = "categorical"
    parts = {"codes": _CODE}

    def __init__(self, categories: Tuple[str, ...] = ()):
        self.categories: Tuple[str, ...] = tuple(str(c) for c in categories)
        if len(set(self.categories)) != len(self.categories):
            raise ValueError("categories must be unique")
        self._index = {category: i for i, category in enumerate(self.categories)}

    @property
    def is_numeric(self) -> bool:
        """Categorical columns decode to object arrays, not floats."""
        return False

    @classmethod
    def from_values(cls, values) -> "CategoricalDtype":
        """Infer the category vocabulary (first-seen order) from ``values``."""
        seen: Dict[str, None] = {}
        for value in values:
            if value is not None:
                seen.setdefault(str(value), None)
        return cls(tuple(seen))

    def encode(self, values) -> Dict[str, np.ndarray]:
        """Values → codes; an unknown (non-``None``) value is an error."""
        codes = np.empty(len(values), dtype=_CODE)
        for i, value in enumerate(values):
            if value is None:
                codes[i] = -1
                continue
            try:
                codes[i] = self._index[str(value)]
            except KeyError:
                raise ValueError(
                    f"value {value!r} is not in the categorical vocabulary "
                    f"({len(self.categories)} categories)"
                ) from None
        return {"codes": codes}

    def decode(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """Codes → object array of categories (``None`` where code is -1)."""
        codes = np.asarray(parts["codes"])
        out = np.empty(len(codes), dtype=object)
        for i, code in enumerate(codes):
            out[i] = None if code < 0 else self.categories[code]
        return out

    def isna(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """Positions with the NA code (-1)."""
        return np.asarray(parts["codes"]) < 0

    def to_manifest(self) -> Dict[str, Any]:
        """Tag plus the ordered category vocabulary."""
        return {"kind": self.kind, "categories": list(self.categories)}

    def __repr__(self) -> str:
        return f"CategoricalDtype(categories={len(self.categories)})"


class MaskedNumericDtype(ColumnDtype):
    """``float64`` values with an explicit validity mask (1 = missing).

    Distinguishes "missing" from a genuine NaN payload the way pandas'
    nullable ``Float64`` does: the ``data`` part keeps whatever float was
    written (masked slots store 0.0), the ``mask`` part records
    missingness.  :meth:`decode` produces the relation convention — NaN at
    masked positions — so downstream cleaning (:func:`repro.data.cleaning.
    drop_missing` / ``impute_mean``) works unchanged.
    """

    kind = "masked_numeric"
    parts = {"data": _FLOAT, "mask": _MASK}

    def encode(self, values) -> Dict[str, np.ndarray]:
        """Floats (NaN = missing) → zero-filled ``data`` plus ``mask``."""
        data = self._as_1d(values, _FLOAT, "masked numeric column values").copy()
        mask = np.isnan(data).astype(_MASK)
        data[mask.astype(bool)] = 0.0
        return {"data": data, "mask": mask}

    def decode(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """``data`` with NaN written back at masked positions (a copy)."""
        data = np.array(parts["data"], dtype=np.float64, copy=True)
        data[np.asarray(parts["mask"]).astype(bool)] = np.nan
        return data

    def isna(self, parts: Mapping[str, np.ndarray]) -> np.ndarray:
        """The mask, as booleans."""
        return np.asarray(parts["mask"]).astype(bool)


_DTYPE_KINDS = {
    NumericDtype.kind: NumericDtype,
    CategoricalDtype.kind: CategoricalDtype,
    MaskedNumericDtype.kind: MaskedNumericDtype,
}


def dtype_from_manifest(entry: Mapping[str, Any]) -> ColumnDtype:
    """Rebuild a dtype object from its :meth:`ColumnDtype.to_manifest` form.

    Raises ``ValueError`` for an unknown ``kind`` tag so a manifest
    written by a future format version fails loudly instead of decoding
    garbage.
    """
    kind = entry.get("kind")
    if kind == CategoricalDtype.kind:
        return CategoricalDtype(tuple(entry.get("categories", ())))
    try:
        return _DTYPE_KINDS[kind]()
    except KeyError:
        known = ", ".join(sorted(_DTYPE_KINDS))
        raise ValueError(
            f"unknown column dtype kind {kind!r} in manifest (known: {known})"
        ) from None
