"""Out-of-core columnar relations: typed columns, memory maps, chunked scans.

This package is the disk-backed counterpart of the in-memory
:class:`~repro.data.relation.Relation`.  A :class:`ColumnStore` persists
each attribute as raw little-endian binary part files described by a JSON
manifest, reopens them as ``numpy.memmap`` views, and exposes the same
``schema``/``len``/``matrix`` surface the mining pipeline reads — so
Phase I's one-pass BIRCH scan can stream a bigger-than-RAM relation
chunk by chunk without the pipeline knowing the difference.

Layers, bottom up:

* :mod:`~repro.data.columnar.dtypes` — explicit column dtype objects
  (:class:`NumericDtype`, :class:`CategoricalDtype`,
  :class:`MaskedNumericDtype`) that encode canonical values into
  fixed-width storage parts and back, bit-identically.
* :mod:`~repro.data.columnar.column` — :class:`Column`, one dtype plus
  its (possibly memory-mapped) part arrays, with extension-array-style
  slicing/NA/persistence semantics.
* :mod:`~repro.data.columnar.chunks` — :class:`ChunkIterator`, yielding
  fixed-row-count contiguous views for streaming scans.
* :mod:`~repro.data.columnar.store` — :class:`ColumnStore` (the
  directory format, constructors, ``matrix``/``chunks``/``to_relation``)
  and :class:`ColumnStoreWriter` (the single-pass CSV spill path).

Entry points most callers want: ``load_csv(path, out_of_core=True)``
(see :func:`repro.data.io.load_csv`) or :meth:`ColumnStore.from_csv`,
then pass the store straight to :func:`repro.mine`.
"""

from repro.data.columnar.chunks import Chunk, ChunkIterator
from repro.data.columnar.column import Column
from repro.data.columnar.dtypes import (
    CategoricalDtype,
    ColumnDtype,
    MaskedNumericDtype,
    NumericDtype,
    dtype_from_manifest,
)
from repro.data.columnar.store import (
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    ColumnStore,
    ColumnStoreWriter,
)

__all__ = [
    "Chunk",
    "ChunkIterator",
    "Column",
    "ColumnDtype",
    "NumericDtype",
    "CategoricalDtype",
    "MaskedNumericDtype",
    "dtype_from_manifest",
    "ColumnStore",
    "ColumnStoreWriter",
    "DEFAULT_CHUNK_ROWS",
    "MANIFEST_NAME",
]
