"""Missing-data handling for relations.

The miners reject non-finite values at their boundaries (silently poisoned
moments are worse than a crash), so real-world data with gaps must be
cleaned first.  Two standard policies:

* :func:`drop_missing` — remove every tuple with a NaN in any (or the
  given) numeric attribute, and optionally tuples with empty nominal
  values;
* :func:`impute_mean` — replace NaNs with the column mean (computed over
  the present values).  Mean imputation shrinks cluster diameters around
  the column mean; prefer dropping when missingness is rare.

Both return new relations; inputs are never mutated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.relation import Relation

__all__ = ["missing_mask", "drop_missing", "impute_mean"]


def missing_mask(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    include_empty_nominal: bool = True,
) -> np.ndarray:
    """Boolean mask of tuples with at least one missing value.

    Numeric attributes are missing where NaN; nominal attributes (when
    ``include_empty_nominal``) where the value is the empty string or
    ``None``.
    """
    names = tuple(attributes or relation.schema.names)
    mask = np.zeros(len(relation), dtype=bool)
    for name in names:
        attribute = relation.schema[name]
        column = relation.column(name)
        if attribute.kind.is_numeric:
            mask |= np.isnan(column.astype(np.float64))
        elif include_empty_nominal:
            mask |= np.array(
                [value is None or value == "" for value in column], dtype=bool
            )
    return mask


def drop_missing(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    include_empty_nominal: bool = True,
) -> Relation:
    """Remove tuples with missing values (in ``attributes``, default all)."""
    mask = missing_mask(relation, attributes, include_empty_nominal)
    return relation.select(~mask)


def impute_mean(
    relation: Relation, attributes: Optional[Sequence[str]] = None
) -> Relation:
    """Replace numeric NaNs by the per-column mean of present values.

    A column that is entirely NaN cannot be imputed — raises
    ``ValueError`` rather than inventing a value.  Nominal attributes are
    left untouched.
    """
    names = tuple(attributes or relation.schema.numeric_names())
    columns = {}
    for name in relation.schema.names:
        column = relation.column(name)
        attribute = relation.schema[name]
        if name in names and attribute.kind.is_numeric:
            values = column.astype(np.float64)
            missing = np.isnan(values)
            if missing.any():
                present = values[~missing]
                if present.size == 0:
                    raise ValueError(f"column {name!r} has no present values to impute from")
                values = values.copy()
                values[missing] = present.mean()
            columns[name] = values
        else:
            columns[name] = column
    return Relation(relation.schema, columns)
