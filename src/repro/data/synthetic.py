"""Synthetic workload generators.

Two families:

* *clustered relations* — tuples drawn from a fixed set of modes, each mode
  placing the tuple near a per-attribute center; tuples from one mode are
  therefore associated across attributes, which is exactly the structure
  distance-based rules are meant to discover;
* *scaled relations* — the Section 7.2 protocol: hold the number and form
  of the clusters constant while growing the data, "by increasing the
  number of points per cluster and proportionally the number of irrelevant
  (or outliers) points".

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.relation import Attribute, AttributeKind, Relation, Schema

__all__ = [
    "PlantedStructure",
    "make_clustered_relation",
    "make_planted_rule_relation",
    "scale_relation",
]


@dataclass(frozen=True)
class PlantedStructure:
    """Ground truth of a generated relation, for test assertions.

    ``centers`` is ``(n_modes, n_attributes)``; ``labels`` gives the mode
    of each non-outlier tuple, with ``-1`` marking outliers.
    """

    centers: np.ndarray
    labels: np.ndarray
    spread: float

    @property
    def n_modes(self) -> int:
        """Number of planted modes."""
        return self.centers.shape[0]

    def mode_indices(self, mode: int) -> np.ndarray:
        """Row indices drawn from planted ``mode``."""
        return np.flatnonzero(self.labels == mode)


def _mode_centers(
    rng: np.random.Generator, n_modes: int, n_attributes: int, separation: float
) -> np.ndarray:
    """Well-separated per-attribute centers: a jittered grid on each axis."""
    base = np.arange(n_modes, dtype=np.float64) * separation
    centers = np.empty((n_modes, n_attributes))
    for j in range(n_attributes):
        order = rng.permutation(n_modes)
        jitter = rng.uniform(-0.1, 0.1, size=n_modes) * separation
        centers[:, j] = base[order] + jitter
    return centers


def make_clustered_relation(
    n_modes: int = 4,
    points_per_mode: int = 200,
    n_attributes: int = 3,
    spread: float = 1.0,
    separation: float = 20.0,
    outlier_fraction: float = 0.05,
    seed: int = 0,
    attribute_prefix: str = "a",
) -> Tuple[Relation, PlantedStructure]:
    """A relation of Gaussian modes plus uniform outliers.

    Each tuple picks a mode and is Gaussian around that mode's center in
    *every* attribute, so each attribute exhibits ``n_modes`` dense
    clusters and the clusters co-occur across attributes.  Outliers are
    uniform over an inflated range and carry label ``-1``.
    """
    if n_modes < 1 or points_per_mode < 1 or n_attributes < 1:
        raise ValueError("n_modes, points_per_mode and n_attributes must be positive")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    centers = _mode_centers(rng, n_modes, n_attributes, separation)

    n_clustered = n_modes * points_per_mode
    n_outliers = int(round(outlier_fraction / (1 - outlier_fraction) * n_clustered))
    labels = np.repeat(np.arange(n_modes), points_per_mode)
    data = centers[labels] + rng.normal(scale=spread, size=(n_clustered, n_attributes))

    if n_outliers:
        lo = centers.min() - separation
        hi = centers.max() + separation
        outliers = rng.uniform(lo, hi, size=(n_outliers, n_attributes))
        data = np.vstack([data, outliers])
        labels = np.concatenate([labels, np.full(n_outliers, -1)])

    order = rng.permutation(data.shape[0])
    data = data[order]
    labels = labels[order]

    schema = Schema(
        Attribute(f"{attribute_prefix}{j}", AttributeKind.INTERVAL)
        for j in range(n_attributes)
    )
    relation = Relation(
        schema, {f"{attribute_prefix}{j}": data[:, j] for j in range(n_attributes)}
    )
    return relation, PlantedStructure(centers=centers, labels=labels, spread=spread)


def make_planted_rule_relation(
    seed: int = 0, points_per_mode: int = 150
) -> Tuple[Relation, PlantedStructure]:
    """A small insurance-flavored relation with known 1:1 and 2:1 rules.

    Three attributes — ``age``, ``dependents``, ``claims`` — with three
    modes echoing Figure 5's example (41-47 year-olds with 2-5 dependents
    have claims near 10K-14K).  The planted structure makes rules like
    ``C_age C_dependents => C_claims`` discoverable.
    """
    rng = np.random.default_rng(seed)
    centers = np.array(
        [
            # age, dependents, claims
            [44.0, 3.5, 12_000.0],
            [28.0, 0.5, 2_500.0],
            [63.0, 1.5, 29_000.0],
        ]
    )
    scales = np.array([2.0, 0.6, 900.0])
    n_modes = centers.shape[0]
    labels = np.repeat(np.arange(n_modes), points_per_mode)
    data = centers[labels] + rng.normal(size=(labels.size, 3)) * scales

    order = rng.permutation(labels.size)
    data = data[order]
    labels = labels[order]
    schema = Schema.of(age="interval", dependents="interval", claims="interval")
    relation = Relation(
        schema,
        {"age": data[:, 0], "dependents": data[:, 1], "claims": data[:, 2]},
    )
    return relation, PlantedStructure(centers=centers, labels=labels, spread=1.0)


def scale_relation(
    base: Relation,
    target_size: int,
    outlier_fraction: float = 0.05,
    jitter_fraction: float = 0.01,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
) -> Relation:
    """Grow ``base`` to ``target_size`` tuples, Section 7.2 style.

    Base tuples are replicated (each with small jitter proportional to the
    per-attribute spread) so the number and form of clusters stays
    constant, and ``outlier_fraction`` of the result is uniform noise over
    an inflated range — "the number of irrelevant (or outliers) points"
    grows proportionally with the data.
    """
    if target_size < 1:
        raise ValueError("target_size must be positive")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    names: Tuple[str, ...] = tuple(attributes or base.schema.interval_names())
    if not names:
        raise ValueError("base relation has no interval attributes to scale")
    matrix = base.matrix(names)
    n_base = matrix.shape[0]
    if n_base == 0:
        raise ValueError("cannot scale an empty relation")

    rng = np.random.default_rng(seed)
    n_outliers = int(round(target_size * outlier_fraction))
    n_clustered = target_size - n_outliers

    indices = rng.integers(0, n_base, size=n_clustered)
    spread = matrix.std(axis=0)
    spread[spread == 0] = 1.0
    jitter = rng.normal(size=(n_clustered, matrix.shape[1])) * (
        spread * jitter_fraction
    )
    replicated = matrix[indices] + jitter

    if n_outliers:
        lo = matrix.min(axis=0)
        hi = matrix.max(axis=0)
        pad = (hi - lo) * 0.5 + spread
        outliers = rng.uniform(lo - pad, hi + pad, size=(n_outliers, matrix.shape[1]))
        data = np.vstack([replicated, outliers])
    else:
        data = replicated
    data = data[rng.permutation(data.shape[0])]

    schema = base.schema.project(names)
    return Relation(schema, {name: data[:, i] for i, name in enumerate(names)})
