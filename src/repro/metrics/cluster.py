"""Cluster-level statistics: diameter, centroid, and inter-cluster distances.

Implements, both from raw point sets and from moment summaries (N, LS, SS):

* the *diameter* ``d`` of Dfn 4.1 / Eq. (2) — average pairwise distance;
* the *centroid* of Eq. (4);
* the centroid Manhattan distance ``D1`` of Eq. (5);
* the average inter-cluster distance ``D2`` of Eq. (6).

The moment-based variants are what make Theorem 6.1 (ACF Representativity)
work: Phase II of the DAR algorithm never touches raw data, only the
``(N, sum t, sum t^2)`` vectors carried by the ACF-tree.  Under the squared
Euclidean geometry used by BIRCH [ZRL96], the *root-mean-square* pairwise
distance is an exact function of the moments:

    D_rms^2  = (2 N * SS - 2 ||LS||^2) / (N (N - 1))
    D2_rms^2 = SS1/N1 + SS2/N2 - 2 <LS1, LS2> / (N1 N2)

For the average (non-squared) distance of Eq. (2) the RMS value is an upper
bound (Jensen); we expose both and the library consistently uses the RMS
form for moment-only computations, exactly as BIRCH does.  Property tests in
``tests/metrics`` verify ``avg <= rms`` and exactness in degenerate cases.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.distance import Metric, cross_pairwise, euclidean, manhattan, pairwise

__all__ = [
    "centroid",
    "diameter",
    "radius",
    "rms_diameter_from_moments",
    "rms_radius_from_moments",
    "d1_centroid_distance",
    "d1_from_moments",
    "d2_average_inter_cluster",
    "rms_d2_from_moments",
    "bounding_box",
]


def _points(points: np.ndarray) -> np.ndarray:
    array = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if array.size and array.ndim != 2:
        raise ValueError(f"expected an (n, d) point array, got shape {array.shape}")
    return array


def centroid(points: np.ndarray) -> np.ndarray:
    """Eq. (4): the arithmetic mean of the points."""
    array = _points(points)
    if array.shape[0] == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return array.mean(axis=0)


def diameter(points: np.ndarray, metric: Metric = euclidean) -> float:
    """Dfn 4.1 / Eq. (2): average pairwise distance between distinct points.

    A singleton (or empty) set has diameter 0 by convention — there are no
    pairs to average, and the paper's Theorem 5.1 relies on singleton
    clusters having diameter 0.
    """
    array = _points(points)
    n = array.shape[0]
    if n < 2:
        return 0.0
    distances = pairwise(array, metric)
    # Eq. (2) sums over all ordered pairs i != j and divides by N(N-1);
    # the diagonal contributes zero, so summing everything is equivalent.
    return float(distances.sum() / (n * (n - 1)))


def radius(points: np.ndarray, metric: Metric = euclidean) -> float:
    """Average distance of points to their centroid (BIRCH's R statistic)."""
    array = _points(points)
    n = array.shape[0]
    if n == 0:
        return 0.0
    center = centroid(array)
    return float(np.mean(metric(array, center[None, :])))


def rms_diameter_from_moments(n: int, ls: np.ndarray, ss: float) -> float:
    """Root-mean-square pairwise distance from CF moments (BIRCH's D).

    ``ls`` is the linear sum vector, ``ss`` the scalar sum of squared norms.
    Returns 0 for singletons.  Negative values caused by floating-point
    cancellation are clamped to 0.
    """
    if n < 2:
        return 0.0
    ls = np.asarray(ls, dtype=np.float64)
    squared = (2.0 * n * ss - 2.0 * float(ls @ ls)) / (n * (n - 1))
    return float(np.sqrt(max(squared, 0.0)))


def rms_radius_from_moments(n: int, ls: np.ndarray, ss: float) -> float:
    """Root-mean-square distance to the centroid from CF moments."""
    if n == 0:
        return 0.0
    ls = np.asarray(ls, dtype=np.float64)
    squared = ss / n - float(ls @ ls) / (n * n)
    return float(np.sqrt(max(squared, 0.0)))


def d1_centroid_distance(points_a: np.ndarray, points_b: np.ndarray) -> float:
    """Eq. (5): Manhattan distance between the two centroids."""
    return float(manhattan(centroid(points_a), centroid(points_b))[0])


def d1_from_moments(
    n1: int, ls1: np.ndarray, n2: int, ls2: np.ndarray
) -> float:
    """Eq. (5) computed from moments: |LS1/N1 - LS2/N2| in the L1 norm."""
    if n1 == 0 or n2 == 0:
        raise ValueError("D1 between empty clusters is undefined")
    c1 = np.asarray(ls1, dtype=np.float64) / n1
    c2 = np.asarray(ls2, dtype=np.float64) / n2
    return float(np.sum(np.abs(c1 - c2)))


def d2_average_inter_cluster(
    points_a: np.ndarray, points_b: np.ndarray, metric: Metric = euclidean
) -> float:
    """Eq. (6): average distance over all cross pairs."""
    a = _points(points_a)
    b = _points(points_b)
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("D2 between empty clusters is undefined")
    return float(cross_pairwise(a, b, metric).mean())


def rms_d2_from_moments(
    n1: int, ls1: np.ndarray, ss1: float, n2: int, ls2: np.ndarray, ss2: float
) -> float:
    """Root-mean-square cross-pair distance from CF moments.

    Exact for squared-Euclidean geometry; an upper bound on Eq. (6)'s
    average Euclidean distance (equality when all cross distances agree).
    """
    if n1 == 0 or n2 == 0:
        raise ValueError("D2 between empty clusters is undefined")
    ls1 = np.asarray(ls1, dtype=np.float64)
    ls2 = np.asarray(ls2, dtype=np.float64)
    squared = ss1 / n1 + ss2 / n2 - 2.0 * float(ls1 @ ls2) / (n1 * n2)
    return float(np.sqrt(max(squared, 0.0)))


def bounding_box(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest axis-aligned bounding box (Section 7.2 cluster description)."""
    array = _points(points)
    if array.shape[0] == 0:
        raise ValueError("bounding box of an empty point set is undefined")
    return array.min(axis=0), array.max(axis=0)
