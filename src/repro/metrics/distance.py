"""Point distance metrics ``delta_X`` over attribute-set projections.

The paper is parametric in the point metric ``delta_X`` used inside each
attribute partition (Dfn 4.1 and Section 5).  We provide the metrics the
paper names — Euclidean and Manhattan — plus Chebyshev and the discrete
(0/1) metric used in Section 5.1 to embed *classical* association rules
into the distance-based framework (Theorems 5.1 and 5.2).

All metrics accept either single vectors (1-d arrays) or batches
(``(n, d)`` arrays) and broadcast like numpy.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "euclidean",
    "manhattan",
    "chebyshev",
    "discrete",
    "get_metric",
    "register_metric",
    "available_metrics",
    "pairwise",
    "cross_pairwise",
]

Metric = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _diffs(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    return x - y


def euclidean(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """L2 distance along the last axis."""
    return np.sqrt(np.sum(_diffs(x, y) ** 2, axis=-1))


def manhattan(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """L1 distance along the last axis."""
    return np.sum(np.abs(_diffs(x, y)), axis=-1)


def chebyshev(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """L-infinity distance along the last axis."""
    return np.max(np.abs(_diffs(x, y)), axis=-1)


def discrete(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The 0/1 metric of Section 5.1: 0 iff the projections are equal.

    Under this metric a cluster has diameter 0 iff all members share one
    value (Theorem 5.1), which is what reduces distance-based rules to
    classical ones.
    """
    return (np.any(_diffs(x, y) != 0, axis=-1)).astype(np.float64)


_REGISTRY: Dict[str, Metric] = {
    "euclidean": euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "discrete": discrete,
}


def register_metric(name: str, metric: Metric) -> None:
    """Register a custom point metric under ``name``.

    Raises ``ValueError`` if the name is taken; metrics are global, so pick
    distinctive names.
    """
    if name in _REGISTRY:
        raise ValueError(f"metric {name!r} already registered")
    _REGISTRY[name] = metric


def get_metric(name: str) -> Metric:
    """Look up a metric by name; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> tuple:
    """Names of all registered point metrics, sorted."""
    return tuple(sorted(_REGISTRY))


def pairwise(points: np.ndarray, metric: Metric = euclidean) -> np.ndarray:
    """Full ``(n, n)`` pairwise distance matrix of one point set."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    return metric(points[:, None, :], points[None, :, :])


def cross_pairwise(a: np.ndarray, b: np.ndarray, metric: Metric = euclidean) -> np.ndarray:
    """``(len(a), len(b))`` distance matrix between two point sets."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return metric(a[:, None, :], b[None, :, :])
