"""Distance metrics: point metrics (delta) and cluster statistics (d, D1, D2)."""

from repro.metrics.cluster import (
    bounding_box,
    centroid,
    d1_centroid_distance,
    d1_from_moments,
    d2_average_inter_cluster,
    diameter,
    radius,
    rms_d2_from_moments,
    rms_diameter_from_moments,
    rms_radius_from_moments,
)
from repro.metrics.distance import (
    available_metrics,
    chebyshev,
    cross_pairwise,
    discrete,
    euclidean,
    get_metric,
    manhattan,
    pairwise,
    register_metric,
)

__all__ = [
    "bounding_box",
    "centroid",
    "d1_centroid_distance",
    "d1_from_moments",
    "d2_average_inter_cluster",
    "diameter",
    "radius",
    "rms_d2_from_moments",
    "rms_diameter_from_moments",
    "rms_radius_from_moments",
    "available_metrics",
    "chebyshev",
    "cross_pairwise",
    "discrete",
    "euclidean",
    "get_metric",
    "manhattan",
    "pairwise",
    "register_metric",
]
