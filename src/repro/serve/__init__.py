"""repro.serve — versioned rule snapshots, queries, and HTTP serving.

The serving layer answers ``targets / top-k / degree-band`` rule queries
without re-mining: a ``DARResult`` is compiled into an immutable columnar
:class:`~repro.serve.snapshot.RuleSnapshot`, queried through the unified
:class:`~repro.serve.query.RuleQuery` /
:class:`~repro.serve.query.QueryEngine` surface (LRU answer cache +
``repro_serve_*`` metrics), hot-swapped atomically by a
:class:`~repro.serve.publisher.SnapshotPublisher`, and exposed over HTTP
by :class:`~repro.serve.http.RuleServer`.

The module itself is callable — ``repro.serve(result)`` starts a server::

    import repro

    relation, _ = repro.make_planted_rule_relation(seed=7)
    result = repro.mine(relation)
    server = repro.serve(result, port=0)       # background thread
    print(server.url)                          # http://127.0.0.1:<port>
    ...                                        # GET /rules?targets=claims&top_k=5
    server.shutdown()

The CLI equivalent is ``repro serve --snapshot PATH --port N`` (see
``repro snapshot`` for building the snapshot file).
"""

from __future__ import annotations

import sys
import types
from typing import Any

from repro.serve.http import RuleServer, ServePolicy
from repro.serve.publisher import (
    RefreshSupervisor,
    SnapshotPublisher,
    StalenessPolicy,
)
from repro.serve.query import QueryAnswer, QueryEngine, RuleQuery, apply_query
from repro.serve.snapshot import RuleSnapshot, compile_snapshot

__all__ = [
    "serve",
    "RuleQuery",
    "QueryAnswer",
    "QueryEngine",
    "apply_query",
    "RuleSnapshot",
    "compile_snapshot",
    "SnapshotPublisher",
    "RefreshSupervisor",
    "StalenessPolicy",
    "ServePolicy",
    "RuleServer",
]


def serve(
    source: Any,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_size: int = 256,
    start: bool = True,
    policy: Any = None,
    staleness: Any = None,
) -> RuleServer:
    """Publish ``source`` and serve it over HTTP; the ``repro.serve(...)`` facade.

    ``source`` is anything :func:`~repro.serve.snapshot.compile_snapshot`
    accepts: a ``DARResult``, a :class:`~repro.serve.snapshot.RuleSnapshot`,
    or a path to a snapshot / streaming-miner checkpoint.  With
    ``start=True`` (default) the server runs on a daemon thread and the
    call returns immediately — use ``server.url`` to reach it and
    ``server.shutdown()`` to stop; with ``start=False`` the caller drives
    :meth:`~repro.serve.http.RuleServer.serve_forever` itself (the CLI's
    blocking mode).  ``port=0`` picks a free port.

    ``policy`` (a :class:`~repro.serve.http.ServePolicy`) turns on the
    overload hardening — admission control with ``429``/``503`` +
    ``Retry-After``, per-request deadlines, read timeouts, graceful
    drain; ``staleness`` (a :class:`~repro.serve.publisher.StalenessPolicy`)
    makes ``/healthz`` degrade ok → warn → crit as the snapshot ages.
    """
    publisher = SnapshotPublisher(
        source, cache_size=cache_size, staleness=staleness
    )
    server = RuleServer(publisher, host=host, port=port, policy=policy)
    if start:
        server.start()
    return server


class _CallableModule(types.ModuleType):
    """Module subclass making ``repro.serve(...)`` call :func:`serve`.

    ``import repro.serve`` binds the *module* as the ``serve`` attribute
    of ``repro``; swapping in this class keeps that attribute a normal
    module (submodules, ``__all__``, docs all intact) while also letting
    it be invoked directly as the facade function.
    """

    __call__ = staticmethod(serve)


sys.modules[__name__].__class__ = _CallableModule
