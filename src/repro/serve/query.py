"""The unified rule-query surface: ``RuleQuery``, ``apply_query``, ``QueryEngine``.

One query vocabulary serves three callers: ``DARResult.rules(...)`` on a
fresh mining result, :class:`QueryEngine` over a compiled
:class:`~repro.serve.snapshot.RuleSnapshot`, and the HTTP query-string
parser of :mod:`repro.serve.http`.  All three accept the same frozen
:class:`RuleQuery`, so an answer computed from columnar snapshot arrays
is, rule-id for rule-id, the answer the source result would give — a
property the serve test suite checks by construction.

:func:`apply_query` is the reference semantics: it composes the existing
post-processing primitives (:func:`~repro.core.postprocess.filter_by_consequent`,
:func:`~repro.core.postprocess.filter_by_antecedent`,
:func:`~repro.core.postprocess.prune_redundant`,
:func:`~repro.core.postprocess.select_rules`) in a fixed order —
targets, antecedents, degree band, redundancy pruning, support, final
``(degree, -support, str(rule))`` ranking, top-k.  :class:`QueryEngine`
mirrors that order over snapshot columns and memoizes answers in a
thread-safe LRU cache, publishing ``repro_serve_*`` cache-hit and latency
metrics through :mod:`repro.obs.metrics`.

The legacy ad-hoc keywords (``target=``, ``partition_names=``) are
accepted everywhere a :class:`RuleQuery` is, via a warn-once
``DeprecationWarning`` shim (strict under ``REPRO_STRICT_DEPRECATIONS``,
like the ``cluster_metric`` shim).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qsl, urlencode

from repro.core.config import _warn_deprecated
from repro.core.postprocess import (
    filter_by_antecedent,
    filter_by_consequent,
    prune_redundant,
    select_rules,
)
from repro.obs import metrics as obs_metrics

__all__ = ["RuleQuery", "QueryAnswer", "QueryEngine", "apply_query"]

#: Old ad-hoc keyword spellings and the RuleQuery field each one maps to.
_LEGACY_KWARGS = {
    "target": "targets",
    "partition_names": "targets",
}


def _as_name_tuple(value: Union[str, Iterable[str]], label: str) -> Tuple[str, ...]:
    """Normalize a partition-name constraint to a sorted, deduplicated tuple."""
    if isinstance(value, str):
        names = [part.strip() for part in value.split(",") if part.strip()]
    else:
        names = [str(name) for name in value]
    if not names:
        raise ValueError(f"{label}, when given, must name at least one partition")
    return tuple(sorted(set(names)))


@dataclass(frozen=True)
class RuleQuery:
    """One declarative rule query — the argument every query surface takes.

    Fields mirror the post-processing vocabulary the CLI and
    :mod:`repro.core.postprocess` grew organically; a ``RuleQuery`` is
    hashable (tuples only), so it doubles as the :class:`QueryEngine`
    cache key.  ``targets``/``antecedents`` accept a comma-separated
    string or any iterable of partition names and are canonicalized to
    sorted tuples; numeric bounds are validated eagerly so a bad query
    fails at construction, not mid-serve.
    """

    targets: Optional[Tuple[str, ...]] = None
    antecedents: Optional[Tuple[str, ...]] = None
    min_degree: Optional[float] = None
    max_degree: Optional[float] = None
    min_support: Optional[int] = None
    top_k: Optional[int] = None
    prune_redundant: bool = False

    def __post_init__(self) -> None:
        if self.targets is not None:
            object.__setattr__(self, "targets", _as_name_tuple(self.targets, "targets"))
        if self.antecedents is not None:
            object.__setattr__(
                self, "antecedents", _as_name_tuple(self.antecedents, "antecedents")
            )
        for name in ("min_degree", "max_degree"):
            value = getattr(self, name)
            if value is None:
                continue
            value = float(value)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be a non-negative finite number")
            object.__setattr__(self, name, value)
        if (
            self.min_degree is not None
            and self.max_degree is not None
            and self.min_degree > self.max_degree
        ):
            raise ValueError("min_degree cannot exceed max_degree")
        if self.min_support is not None:
            object.__setattr__(self, "min_support", int(self.min_support))
            if self.min_support < 0:
                raise ValueError("min_support must be non-negative")
        if self.top_k is not None:
            object.__setattr__(self, "top_k", int(self.top_k))
            if self.top_k < 1:
                raise ValueError("top_k must be at least 1")
        object.__setattr__(self, "prune_redundant", bool(self.prune_redundant))

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------

    @classmethod
    def coerce(
        cls,
        query: Optional["RuleQuery"] = None,
        kwargs: Optional[Mapping[str, Any]] = None,
    ) -> "RuleQuery":
        """The one ``(query, **kwargs)`` normalization every surface shares.

        Accepts a ready :class:`RuleQuery`, bare keyword arguments
        (including the deprecated ``target=``/``partition_names=``
        spellings, which warn once and map to ``targets=``), or nothing
        (the match-everything query).  Passing both a query object and
        keywords is ambiguous and raises.
        """
        kwargs = dict(kwargs or {})
        if query is not None:
            if kwargs:
                raise ValueError(
                    "pass either a RuleQuery or keyword filters, not both"
                )
            if not isinstance(query, cls):
                raise TypeError(
                    f"expected a RuleQuery, got {type(query).__name__!r}"
                )
            return query
        for old, new in _LEGACY_KWARGS.items():
            if old in kwargs:
                if new in kwargs:
                    raise ValueError(
                        f"pass either {new!r} or the deprecated {old!r}, not both"
                    )
                _warn_deprecated(
                    f"RuleQuery:{old}",
                    f"the {old!r} keyword is deprecated; use "
                    f"RuleQuery({new}=...)",
                    stacklevel=4,
                )
                kwargs[new] = kwargs.pop(old)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ValueError(
                f"unknown query field(s) {unknown}; accepted: {sorted(known)}"
            )
        return cls(**kwargs)

    @classmethod
    def from_query_string(cls, query_string: str) -> "RuleQuery":
        """Parse an HTTP query string (``targets=a,b&top_k=5``) into a query.

        List-valued fields take comma-separated values (a repeated
        parameter also works); ``prune_redundant`` accepts
        ``1/true/yes/on`` (and their negations).  Unknown parameters
        raise ``ValueError`` naming the accepted ones, which the HTTP
        layer maps to a 400 response.  The deprecated ``target=``
        parameter is accepted through the same warn-once shim as the
        keyword spelling.
        """
        merged: Dict[str, str] = {}
        for key, value in parse_qsl(query_string, keep_blank_values=True):
            merged[key] = f"{merged[key]},{value}" if key in merged else value
        kwargs: Dict[str, Any] = {}
        for key, value in merged.items():
            field_name = _LEGACY_KWARGS.get(key, key)
            if key in _LEGACY_KWARGS:
                _warn_deprecated(
                    f"RuleQuery:{key}",
                    f"the {key!r} query parameter is deprecated; use "
                    f"{field_name!r}",
                )
            if field_name in ("targets", "antecedents"):
                kwargs[field_name] = value
            elif field_name in ("min_degree", "max_degree"):
                kwargs[field_name] = _parse_number(key, value, float)
            elif field_name in ("min_support", "top_k"):
                kwargs[field_name] = _parse_number(key, value, int)
            elif field_name == "prune_redundant":
                kwargs[field_name] = _parse_bool(key, value)
            else:
                accepted = sorted(f.name for f in fields(cls))
                raise ValueError(
                    f"unknown query parameter {key!r}; accepted: {accepted}"
                )
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The non-default constraints as plain built-ins (JSON-ready)."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is None or value is False:
                continue
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    def to_query_string(self) -> str:
        """The query as an HTTP query string; round-trips through
        :meth:`from_query_string`."""
        pairs = []
        for name, value in self.to_dict().items():
            if isinstance(value, list):
                pairs.append((name, ",".join(value)))
            elif isinstance(value, bool):
                pairs.append((name, "1"))
            else:
                pairs.append((name, repr(value) if isinstance(value, float) else str(value)))
        return urlencode(pairs)

    @property
    def is_unconstrained(self) -> bool:
        """True when the query matches every rule (no filters, no cap)."""
        return not self.to_dict()


def _parse_number(key: str, value: str, kind: type):
    """Parse one numeric query-string parameter, naming it on failure."""
    try:
        return kind(value)
    except ValueError:
        raise ValueError(f"query parameter {key!r} must be a {kind.__name__}, "
                         f"got {value!r}")


def _parse_bool(key: str, value: str) -> bool:
    """Parse one boolean query-string parameter (``1/true/yes/on`` etc.)."""
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on", ""):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"query parameter {key!r} must be a boolean, got {value!r}")


def apply_query(rules: Iterable, query: Optional[RuleQuery] = None, **kwargs) -> List:
    """Filter and rank ``rules`` per ``query`` — the reference semantics.

    Stage order is fixed and shared with :class:`QueryEngine`: consequent
    targets, antecedent restriction, ``min_degree``, redundancy pruning,
    then :func:`~repro.core.postprocess.select_rules` for ``max_degree``,
    ``min_support``, the canonical strongest-first ordering and ``top_k``.
    Accepts the same ``(query, **kwargs)`` forms as every other surface.
    """
    resolved = RuleQuery.coerce(query, kwargs)
    selected = list(rules)
    if resolved.targets is not None:
        selected = filter_by_consequent(selected, resolved.targets)
    if resolved.antecedents is not None:
        selected = filter_by_antecedent(selected, resolved.antecedents)
    if resolved.min_degree is not None:
        selected = [rule for rule in selected if rule.degree >= resolved.min_degree]
    if resolved.prune_redundant:
        selected = prune_redundant(selected)
    return select_rules(
        selected,
        max_degree=resolved.max_degree,
        min_support=resolved.min_support,
        top_k=resolved.top_k,
    )


@dataclass(frozen=True)
class QueryAnswer:
    """One :class:`QueryEngine` answer: matching rule ids plus provenance.

    ``ids`` are snapshot rule ids (positions in the compile-order rule
    list), already ranked strongest-first and truncated to ``top_k``.
    ``version`` names the snapshot that produced the answer and
    ``cached`` whether it came from the LRU cache; ``seconds`` is this
    call's latency (near-zero for hits).
    """

    ids: Tuple[int, ...]
    version: int
    total_rules: int
    cached: bool
    seconds: float
    snapshot: Any = field(repr=False, compare=False, default=None)

    def __len__(self) -> int:
        return len(self.ids)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The matching rules rendered as JSON-ready dicts, in rank order."""
        if self.snapshot is None:
            raise RuntimeError("answer is detached from its snapshot")
        return [self.snapshot.rule_dict(rule_id) for rule_id in self.ids]


class QueryEngine:
    """Answers :class:`RuleQuery` instances over one immutable snapshot.

    The engine never touches :class:`~repro.core.rules.DistanceRule`
    objects: it filters the snapshot's columnar arrays with the same
    stage order as :func:`apply_query` and the same tie-breaking keys
    (the stored ``str(rule)`` descriptions), so the returned ids match a
    direct filter of the source ``DARResult`` exactly.  Answers are
    memoized in a thread-safe LRU keyed by the (hashable) query; the
    snapshot is immutable, so cached answers never go stale.
    """

    def __init__(self, snapshot, cache_size: int = 256):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.snapshot = snapshot
        self.cache_size = cache_size
        self._cache: "OrderedDict[RuleQuery, Tuple[int, ...]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------

    def query(self, query: Optional[RuleQuery] = None, **kwargs) -> QueryAnswer:
        """Answer one query, serving from the LRU cache when possible."""
        resolved = RuleQuery.coerce(query, kwargs)
        started = time.perf_counter()
        with self._lock:
            cached_ids = self._cache.get(resolved)
            if cached_ids is not None:
                self._cache.move_to_end(resolved)
                self._hits += 1
        if cached_ids is not None:
            seconds = time.perf_counter() - started
            self._publish(cache="hit", seconds=seconds)
            return QueryAnswer(
                ids=cached_ids,
                version=self.snapshot.version,
                total_rules=self.snapshot.n_rules,
                cached=True,
                seconds=seconds,
                snapshot=self.snapshot,
            )
        ids = tuple(self._evaluate(resolved))
        with self._lock:
            self._misses += 1
            if self.cache_size:
                self._cache[resolved] = ids
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    obs_metrics.inc(
                        "repro_serve_cache_evictions_total",
                        help="Query-cache entries evicted by the LRU policy",
                    )
        seconds = time.perf_counter() - started
        self._publish(cache="miss", seconds=seconds)
        return QueryAnswer(
            ids=ids,
            version=self.snapshot.version,
            total_rules=self.snapshot.n_rules,
            cached=False,
            seconds=seconds,
            snapshot=self.snapshot,
        )

    # ------------------------------------------------------------------

    def _evaluate(self, query: RuleQuery) -> List[int]:
        """The uncached path: mirror :func:`apply_query` over columns."""
        import numpy as np

        snap = self.snapshot
        mask = np.ones(snap.n_rules, dtype=bool)
        if query.targets is not None:
            # consequent ⊆ targets  ⇔  the rule's consequent mentions no
            # partition outside the target set — exclusion via the
            # inverted index is exact and touches only non-target lists.
            allowed = set(query.targets)
            for name, ids in snap.consequent_index.items():
                if name not in allowed:
                    mask[ids] = False
        if query.antecedents is not None:
            allowed = set(query.antecedents)
            for name, ids in snap.antecedent_index.items():
                if name not in allowed:
                    mask[ids] = False
        if query.min_degree is not None:
            mask &= snap.degree >= query.min_degree
        selected = [int(i) for i in np.nonzero(mask)[0]]
        if query.prune_redundant:
            selected = self._prune_redundant_ids(selected)
        if query.max_degree is not None:
            max_degree = query.max_degree
            selected = [i for i in selected if snap.degree[i] <= max_degree]
        if query.min_support is not None:
            support = snap.support
            if any(support[i] < 0 for i in selected):
                raise ValueError(
                    "min_support filtering needs support counts; mine with "
                    "DARConfig(count_rule_support=True)"
                )
            min_support = query.min_support
            selected = [i for i in selected if support[i] >= min_support]
        selected.sort(key=self._rank_key)
        if query.top_k is not None:
            selected = selected[: query.top_k]
        return selected

    def _rank_key(self, rule_id: int):
        """The canonical ``(degree, -support, description)`` ordering key."""
        snap = self.snapshot
        support = int(snap.support[rule_id])
        return (
            float(snap.degree[rule_id]),
            -max(support, 0),
            snap.descriptions[rule_id],
        )

    def _prune_redundant_ids(self, ids: List[int]) -> List[int]:
        """Mirror :func:`~repro.core.postprocess.prune_redundant` on ids."""
        snap = self.snapshot
        ordered = sorted(
            ids,
            key=lambda i: (
                len(snap.antecedent_uids(i)),
                float(snap.degree[i]),
                snap.descriptions[i],
            ),
        )
        kept: List[int] = []
        kept_index: List[tuple] = []
        for rule_id in ordered:
            consequent = frozenset(snap.consequent_uids(rule_id))
            antecedent = frozenset(snap.antecedent_uids(rule_id))
            degree = float(snap.degree[rule_id])
            redundant = any(
                consequent == kept_consequent
                and kept_antecedent < antecedent
                and kept_degree <= degree + 1e-12
                for kept_consequent, kept_antecedent, kept_degree in kept_index
            )
            if not redundant:
                kept.append(rule_id)
                kept_index.append((consequent, antecedent, degree))
        return kept

    # ------------------------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters (for tests and the health endpoint)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._cache),
                "capacity": self.cache_size,
            }

    def _publish(self, *, cache: str, seconds: float) -> None:
        """Emit per-query cache and latency metrics (no-op when disabled)."""
        if not obs_metrics.metrics_enabled():
            return
        obs_metrics.inc(
            "repro_serve_queries_total",
            help="Rule queries answered, by cache outcome",
            cache=cache,
        )
        obs_metrics.observe(
            "repro_serve_query_seconds",
            seconds,
            help="Rule-query latency per call",
            unit="seconds",
        )
        with self._lock:
            entries = len(self._cache)
        obs_metrics.set_gauge(
            "repro_serve_cache_entries",
            entries,
            help="Entries currently held by the query answer cache",
        )
