"""A zero-dependency stdlib HTTP endpoint over a snapshot publisher.

:class:`RuleServer` wraps :class:`http.server.ThreadingHTTPServer` around
a :class:`~repro.serve.publisher.SnapshotPublisher` with four routes:

* ``GET /rules``    — answer a :class:`~repro.serve.query.RuleQuery`
  parsed from the query string; JSON response with snapshot version,
  counts and the matching rules (``400`` on a malformed query, ``503``
  before the first publish);
* ``GET /healthz``  — the publisher's health report as JSON (``503``
  when any check is CRIT, i.e. nothing is published);
* ``GET /metrics``  — the process metrics registry in Prometheus text
  exposition format;
* ``GET /``         — a human status page rendered by the dashboard
  module (version, health, metrics).

Request handling is threaded, so a slow reader never blocks ``/healthz``;
every request increments ``repro_serve_http_requests_total`` by route and
status.  Start with :meth:`RuleServer.start` (background thread, used by
the library facade) or :meth:`RuleServer.serve_forever` (blocking, used
by the CLI); ``port=0`` binds an ephemeral port exposed via
:attr:`RuleServer.address`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.obs import metrics as obs_metrics
from repro.serve.publisher import SnapshotPublisher

__all__ = ["RuleServer"]


class RuleServer:
    """An HTTP server answering rule queries from a publisher's snapshot.

    The server never owns mining: someone else publishes snapshots into
    ``publisher`` (possibly while the server runs — readers pick up the
    swap on their next request).  Usable as a context manager; exit shuts
    the listener down and joins the serving thread.
    """

    def __init__(
        self,
        publisher: SnapshotPublisher,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        self.publisher = publisher
        self.started_at = time.time()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is the real one under ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """The server's base URL, e.g. ``http://127.0.0.1:8765``."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RuleServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._httpd.serve_forever(poll_interval=0.05)

    def shutdown(self) -> None:
        """Stop accepting requests, close the socket, join the thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RuleServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def _make_handler(server: RuleServer):
    """Build the request-handler class bound to one :class:`RuleServer`."""

    class _Handler(BaseHTTPRequestHandler):
        """Routes GET requests; everything else is 405."""

        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
            """Dispatch one GET to its route handler."""
            parsed = urlsplit(self.path)
            route = parsed.path.rstrip("/") or "/"
            try:
                if route == "/rules":
                    self._handle_rules(parsed.query)
                elif route == "/healthz":
                    self._handle_healthz()
                elif route == "/metrics":
                    self._handle_metrics()
                elif route == "/":
                    self._handle_index()
                else:
                    self._send_json(
                        404,
                        {"error": f"unknown path {parsed.path!r}",
                         "paths": ["/rules", "/healthz", "/metrics", "/"]},
                        route="<unknown>",
                    )
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as error:  # never kill the serving thread
                try:
                    self._send_json(
                        500, {"error": str(error)}, route=route
                    )
                except Exception:
                    pass

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
            """The API is read-only; mutation happens through the publisher."""
            self._send_json(
                405, {"error": "the serving API is read-only (GET only)"},
                route="<method>",
            )

        # ------------------------------------------------------------------

        def _handle_rules(self, query_string: str) -> None:
            from repro.serve.query import RuleQuery

            try:
                query = RuleQuery.from_query_string(query_string)
            except (ValueError, DeprecationWarning) as error:
                self._send_json(400, {"error": str(error)}, route="/rules")
                return
            try:
                answer = server.publisher.query(query)
            except RuntimeError as error:
                self._send_json(503, {"error": str(error)}, route="/rules")
                return
            except ValueError as error:
                self._send_json(400, {"error": str(error)}, route="/rules")
                return
            self._send_json(
                200,
                {
                    "snapshot_version": answer.version,
                    "total_rules": answer.total_rules,
                    "count": len(answer),
                    "cached": answer.cached,
                    "query": query.to_dict(),
                    "rules": answer.to_dicts(),
                },
                route="/rules",
            )

        def _handle_healthz(self) -> None:
            report = server.publisher.health()
            report.publish()
            payload = server.publisher.to_dict()
            payload["uptime_seconds"] = time.time() - server.started_at
            status = 503 if report.status == "crit" else 200
            self._send_json(status, payload, route="/healthz")

        def _handle_metrics(self) -> None:
            body = obs_metrics.get_registry().to_prometheus().encode("utf-8")
            self._send_bytes(
                200, body, "text/plain; version=0.0.4; charset=utf-8",
                route="/metrics",
            )

        def _handle_index(self) -> None:
            from repro.report.dashboard import render_serve_page

            document = render_serve_page(
                status=server.publisher.to_dict(),
                metrics=obs_metrics.get_registry().snapshot(),
                uptime_seconds=time.time() - server.started_at,
            )
            self._send_bytes(
                200, document.encode("utf-8"), "text/html; charset=utf-8",
                route="/",
            )

        # ------------------------------------------------------------------

        def _send_json(self, status: int, payload: dict, *, route: str) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._send_bytes(
                status, body, "application/json; charset=utf-8", route=route
            )

        def _send_bytes(
            self, status: int, body: bytes, content_type: str, *, route: str
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_serve_http_requests_total",
                    help="HTTP requests served, by route and status",
                    route=route,
                    status=str(status),
                )

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            """Silence the default per-request stderr chatter; metrics
            carry the request counts instead."""

    return _Handler
