"""A zero-dependency stdlib HTTP endpoint over a snapshot publisher.

:class:`RuleServer` wraps :class:`http.server.ThreadingHTTPServer` around
a :class:`~repro.serve.publisher.SnapshotPublisher` with four routes:

* ``GET /rules``    — answer a :class:`~repro.serve.query.RuleQuery`
  parsed from the query string; JSON response with snapshot version,
  counts and the matching rules (``400`` on a malformed query, ``503``
  before the first publish);
* ``GET /healthz``  — the publisher's health report as JSON (``503``
  when any check is CRIT, i.e. nothing is published);
* ``GET /metrics``  — the process metrics registry in Prometheus text
  exposition format;
* ``GET /``         — a human status page rendered by the dashboard
  module (version, health, metrics).

Request handling is threaded, so a slow reader never blocks ``/healthz``;
every request increments ``repro_serve_http_requests_total`` by route and
status.

**Overload hardening** (:class:`ServePolicy`): every request passes the
policy's :class:`~repro.resilience.runtime.LoadShedder` — a full
in-flight gauge sheds with ``503``, an empty token bucket with ``429``,
both carrying ``Retry-After`` instead of queueing unboundedly
(``/healthz`` and ``/metrics`` are exempt so operators can always look
inside).  Admitted requests run under a per-request
:class:`~repro.resilience.runtime.Deadline` (``503`` on expiry), the
handler socket carries a read timeout so a slow-loris client cannot pin
a thread forever, a mid-response client disconnect is counted
(``repro_serve_client_disconnects_total``) rather than crashing the
thread, and :meth:`RuleServer.shutdown` drains in-flight requests before
closing the socket.

Start with :meth:`RuleServer.start` (background thread, used by the
library facade) or :meth:`RuleServer.serve_forever` (blocking, used by
the CLI); ``port=0`` binds an ephemeral port exposed via
:attr:`RuleServer.address`.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.errors import (
    DeadlineExceeded,
    InjectedFault,
    RejectedError,
)
from repro.resilience.runtime import Clock, Deadline, LoadShedder, SystemClock
from repro.serve.publisher import SnapshotPublisher

__all__ = ["ServePolicy", "RuleServer"]

#: Routes admission control never sheds: operators must be able to read
#: health and metrics precisely when the server is overloaded.
SHED_EXEMPT_ROUTES = ("/healthz", "/metrics")


@dataclass(frozen=True)
class ServePolicy:
    """The serving layer's overload knobs (all optional, all explicit).

    The default policy keeps the pre-hardening behaviour — no admission
    limits, no deadline — except for the read timeout, which always
    applies: an unbounded socket read is never the right default.
    """

    max_inflight: Optional[int] = None
    """Concurrent admitted requests before shedding with ``503``."""
    rate: Optional[float] = None
    """Token-bucket refill in requests/second (``None`` disables)."""
    burst: Optional[int] = None
    """Token-bucket capacity (defaults to ``max(1, int(rate))``)."""
    deadline_seconds: Optional[float] = None
    """Per-request budget; expiry answers ``503`` with ``Retry-After``."""
    read_timeout_seconds: float = 30.0
    """Socket read timeout per request (the anti-slow-loris bound)."""
    drain_seconds: float = 5.0
    """How long shutdown waits for in-flight requests to finish."""
    retry_after_seconds: float = 1.0
    """The ``Retry-After`` hint attached to in-flight sheds."""

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be positive")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.read_timeout_seconds <= 0:
            raise ValueError("read_timeout_seconds must be positive")
        if self.drain_seconds < 0:
            raise ValueError("drain_seconds must be non-negative")
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be non-negative")

    def build_shedder(self, clock: Optional[Clock] = None) -> LoadShedder:
        """The policy's admission controller (always built — the in-flight
        gauge also powers graceful drain even when no limit is set)."""
        return LoadShedder(
            self.max_inflight,
            rate=self.rate,
            burst=self.burst,
            retry_after_hint=self.retry_after_seconds,
            clock=clock,
        )


class RuleServer:
    """An HTTP server answering rule queries from a publisher's snapshot.

    The server never owns mining: someone else publishes snapshots into
    ``publisher`` (possibly while the server runs — readers pick up the
    swap on their next request).  ``policy`` configures admission
    control, deadlines and timeouts; ``clock`` injects time for the
    chaos suite (deadlines, token refill) and defaults to the real one.
    Usable as a context manager; exit drains in-flight requests, shuts
    the listener down and joins the serving thread.
    """

    def __init__(
        self,
        publisher: SnapshotPublisher,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        policy: Optional[ServePolicy] = None,
        clock: Optional[Clock] = None,
        slo_pack=None,
    ):
        self.publisher = publisher
        self.policy = policy or ServePolicy()
        self.clock = clock or SystemClock()
        self.shedder = self.policy.build_shedder(self.clock)
        self.slo_pack = list(slo_pack) if slo_pack is not None else None
        self.started_at = time.time()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is the real one under ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """The server's base URL, e.g. ``http://127.0.0.1:8765``."""
        host, port = self.address
        return f"http://{host}:{port}"

    def slo_report(self):
        """Evaluate the configured SLO pack now, or ``None`` without one."""
        if self.slo_pack is None:
            return None
        from repro.obs.slo import evaluate_pack

        return evaluate_pack(self.slo_pack)

    def start(self) -> "RuleServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._serving = True
        self._httpd.serve_forever(poll_interval=0.05)

    def shutdown(self, drain_seconds: Optional[float] = None) -> bool:
        """Stop accepting, drain in-flight requests, close, join.

        Returns ``True`` when every in-flight request finished within
        the drain window (``drain_seconds`` overrides the policy's),
        ``False`` when the window expired with work still running —
        either way the listener is closed and the thread joined, so the
        caller always gets its port back.
        """
        window = (
            self.policy.drain_seconds if drain_seconds is None else drain_seconds
        )
        # socketserver's shutdown() waits for a serve_forever loop to
        # acknowledge; on a server that never served it would wait forever.
        if self._serving:
            self._httpd.shutdown()
        started = time.perf_counter()
        drained = self.shedder.drain(timeout=window)
        if obs_metrics.metrics_enabled():
            obs_metrics.observe(
                "repro_serve_drain_seconds",
                time.perf_counter() - started,
                help="Time spent draining in-flight requests at shutdown",
                unit="seconds",
            )
            obs_metrics.inc(
                "repro_serve_drains_total",
                help="Graceful shutdowns, by whether the drain completed",
                clean=str(drained).lower(),
            )
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        obs_log.info(
            "serve.shutdown",
            drained=drained,
            drain_seconds=round(time.perf_counter() - started, 6),
        )
        if obs_flight.flight_enabled():
            obs_flight.dump(
                "server-shutdown",
                health=self.publisher.to_dict(),
                config={"policy": self.policy.__dict__, "url": self.url},
            )
        return drained

    def __enter__(self) -> "RuleServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def _retry_after_header(seconds: Optional[float]) -> str:
    """An honest integer ``Retry-After`` value (at least 1 second)."""
    if seconds is None or seconds <= 0:
        return "1"
    return str(max(1, math.ceil(seconds)))


def _make_handler(server: RuleServer):
    """Build the request-handler class bound to one :class:`RuleServer`."""

    class _Handler(BaseHTTPRequestHandler):
        """Routes GET requests; everything else is 405."""

        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"
        # Per-request correlation state, reset at the top of do_GET.
        _request_id: Optional[str] = None
        _status = 0
        _shed_reason = ""
        # socketserver applies this to the connection in setup(): a
        # client that stalls mid-request (slow loris) hits the timeout
        # and the connection is closed instead of pinning the thread.
        timeout = server.policy.read_timeout_seconds

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
            """Correlate, admission-check and dispatch one GET request.

            The ``X-Request-Id`` header (generated when absent) becomes
            the request's trace id: it is echoed on the response, stamped
            into every span and log record the request causes, and
            written into exactly one structured ``serve.access`` record
            per request — success, shed, deadline or crash alike.
            """
            parsed = urlsplit(self.path)
            route = parsed.path.rstrip("/") or "/"
            request_id = (
                self.headers.get("X-Request-Id") or obs_context.new_trace_id()
            )
            self._request_id = request_id
            self._status = 0
            self._shed_reason = ""
            started = time.perf_counter()
            context = obs_context.RequestContext(
                trace_id=request_id, request_id=request_id
            )
            with obs_context.activate(context):
                try:
                    with span("serve.request", route=route):
                        self._dispatch(parsed, route)
                finally:
                    fields = {
                        "method": "GET",
                        "route": route,
                        "status": self._status,
                        "seconds": round(time.perf_counter() - started, 6),
                        "request_id": request_id,
                    }
                    if self._shed_reason:
                        fields["shed_reason"] = self._shed_reason
                    obs_log.event("serve.access", **fields)

        def _dispatch(self, parsed, route: str) -> None:
            """Admission-check, then dispatch one GET to its route handler."""
            admission = None
            deadline = Deadline(None, server.clock)
            if route not in SHED_EXEMPT_ROUTES:
                try:
                    admission = server.shedder.try_admit()
                except RejectedError as rejected:
                    status = 429 if rejected.reason == "rate" else 503
                    self._shed_reason = rejected.reason
                    self._send_json(
                        status,
                        {"error": str(rejected), "reason": rejected.reason},
                        route=route,
                        retry_after=rejected.retry_after,
                    )
                    return
                deadline = Deadline(
                    server.policy.deadline_seconds, server.clock
                )
            try:
                if admission is not None:
                    # Fires only on admission-controlled routes, so chaos
                    # plans can wedge /rules while /healthz and /metrics
                    # stay readable — the exempt-route guarantee.
                    faults.fire("serve.request")
                    deadline.raise_if_expired("request")
                if route == "/rules":
                    self._handle_rules(parsed.query, deadline)
                elif route == "/healthz":
                    self._handle_healthz()
                elif route == "/metrics":
                    self._handle_metrics()
                elif route == "/":
                    self._handle_index()
                else:
                    self._send_json(
                        404,
                        {"error": f"unknown path {parsed.path!r}",
                         "paths": ["/rules", "/healthz", "/metrics", "/"]},
                        route="<unknown>",
                    )
            except DeadlineExceeded as expired:
                if obs_metrics.metrics_enabled():
                    obs_metrics.inc(
                        "repro_resilience_deadline_exceeded_total",
                        help="Requests that blew their deadline, by where",
                        where="serve.request",
                    )
                self._shed_reason = "deadline"
                self._send_json(
                    503,
                    {"error": str(expired), "reason": "deadline"},
                    route=route,
                    retry_after=server.policy.retry_after_seconds,
                )
            except (BrokenPipeError, ConnectionResetError):
                self._count_disconnect(route)
            except Exception as error:  # never kill the serving thread
                kind = "fault" if isinstance(error, InjectedFault) else "error"
                try:
                    self._send_json(
                        500, {"error": str(error), "reason": kind}, route=route
                    )
                except Exception:
                    pass
            finally:
                if admission is not None:
                    admission.release()

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
            """The API is read-only; mutation happens through the publisher."""
            self._request_id = (
                self.headers.get("X-Request-Id") or obs_context.new_trace_id()
            )
            self._send_json(
                405, {"error": "the serving API is read-only (GET only)"},
                route="<method>",
            )
            obs_log.event(
                "serve.access",
                method="POST",
                route="<method>",
                status=self._status,
                request_id=self._request_id,
            )

        # ------------------------------------------------------------------

        def _handle_rules(self, query_string: str, deadline: Deadline) -> None:
            from repro.serve.query import RuleQuery

            try:
                query = RuleQuery.from_query_string(query_string)
            except (ValueError, DeprecationWarning) as error:
                self._send_json(400, {"error": str(error)}, route="/rules")
                return
            try:
                answer = server.publisher.query(query)
            except RuntimeError as error:
                self._send_json(503, {"error": str(error)}, route="/rules")
                return
            except ValueError as error:
                self._send_json(400, {"error": str(error)}, route="/rules")
                return
            # The answer is computed but undeliverable within its budget:
            # shedding here keeps tail latency honest instead of letting
            # an overloaded server stream ever-later responses.
            deadline.raise_if_expired("request")
            self._send_json(
                200,
                {
                    "snapshot_version": answer.version,
                    "total_rules": answer.total_rules,
                    "count": len(answer),
                    "cached": answer.cached,
                    "query": query.to_dict(),
                    "rules": answer.to_dicts(),
                },
                route="/rules",
            )

        def _handle_healthz(self) -> None:
            from repro.obs.health import HealthReport

            report = server.publisher.health()
            slo_report = server.slo_report()
            if slo_report is not None:
                report = HealthReport(
                    checks=list(report.checks) + slo_report.to_health_checks()
                )
            report.publish()
            payload = server.publisher.to_dict()
            payload["uptime_seconds"] = time.time() - server.started_at
            payload["admission"] = server.shedder.to_dict()
            payload["health"] = report.to_dict()
            if slo_report is not None:
                payload["slo"] = slo_report.to_dict()
            status = 503 if report.status == "crit" else 200
            self._send_json(status, payload, route="/healthz")

        def _handle_metrics(self) -> None:
            body = obs_metrics.get_registry().to_prometheus().encode("utf-8")
            self._send_bytes(
                200, body, "text/plain; version=0.0.4; charset=utf-8",
                route="/metrics",
            )

        def _handle_index(self) -> None:
            from repro.report.dashboard import render_serve_page

            status_payload = server.publisher.to_dict()
            slo_report = server.slo_report()
            if slo_report is not None:
                status_payload["slo"] = slo_report.to_dict()
            document = render_serve_page(
                status=status_payload,
                metrics=obs_metrics.get_registry().snapshot(),
                uptime_seconds=time.time() - server.started_at,
            )
            self._send_bytes(
                200, document.encode("utf-8"), "text/html; charset=utf-8",
                route="/",
            )

        # ------------------------------------------------------------------

        def _count_disconnect(self, route: str) -> None:
            """A client vanished mid-response: count it, keep the thread."""
            self.close_connection = True
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_serve_client_disconnects_total",
                    help="Responses abandoned because the client disconnected",
                    route=route,
                )

        def _send_json(
            self,
            status: int,
            payload: dict,
            *,
            route: str,
            retry_after: Optional[float] = None,
        ) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._send_bytes(
                status, body, "application/json; charset=utf-8", route=route,
                retry_after=retry_after if status in (429, 503) else None,
            )

        def _send_bytes(
            self,
            status: int,
            body: bytes,
            content_type: str,
            *,
            route: str,
            retry_after: Optional[float] = None,
        ) -> None:
            self._status = status
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                if self._request_id is not None:
                    self.send_header("X-Request-Id", self._request_id)
                if retry_after is not None:
                    self.send_header(
                        "Retry-After", _retry_after_header(retry_after)
                    )
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self._count_disconnect(route)
                return
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_serve_http_requests_total",
                    help="HTTP requests served, by route and status",
                    route=route,
                    status=str(status),
                )

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            """Silence the default per-request stderr chatter; metrics
            carry the request counts instead."""

    return _Handler
