"""Atomic snapshot publication for non-blocking readers.

A :class:`SnapshotPublisher` owns the *current* query engine.  Publishing
compiles the new snapshot and engine completely off to the side and then
installs them with a single attribute store — the only write readers can
observe.  Readers grab that reference once per query, so a query started
against version N finishes against version N even if version N+1 lands
mid-flight; there are no locks on the read path and no torn states.

Feed it from a live :class:`~repro.core.streaming.StreamingDARMiner` via
:meth:`refresh` (absorb a batch, re-publish), from batch mining results,
or from checkpoint files — anything :func:`~repro.serve.snapshot.compile_snapshot`
accepts.  Versions are assigned monotonically by the publisher, and every
swap updates the ``repro_serve_snapshot_*`` gauges.

**Failure visibility.**  A publish that dies mid-compile leaves the old
snapshot serving — and leaves a record: the failure's timestamp, error
class and message appear in :meth:`SnapshotPublisher.to_dict` and as a
WARN check in :meth:`SnapshotPublisher.health`, so "the refresh silently
stopped working an hour ago" is a page, not an archaeology project.

**Supervised refresh.**  :class:`RefreshSupervisor` wraps the
refresh-from-a-source loop in the resilience runtime: compile failures
retry with jittered exponential backoff
(:class:`~repro.resilience.runtime.RetryPolicy`), repeated failures trip
a :class:`~repro.resilience.runtime.CircuitBreaker` (visible in
``/healthz`` and ``/metrics``) so a broken miner is probed on a cooldown
instead of hammered, and a :class:`StalenessPolicy` grace window
degrades health ok → warn → crit as the served snapshot ages past its
expected refresh cadence — no flapping.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.health import CRIT, OK, WARN, HealthCheck, HealthReport
from repro.resilience import faults
from repro.resilience.errors import CircuitOpenError
from repro.resilience.runtime import (
    CircuitBreaker,
    Clock,
    RetryPolicy,
    SystemClock,
)
from repro.serve.query import QueryAnswer, QueryEngine, RuleQuery
from repro.serve.snapshot import RuleSnapshot, compile_snapshot

__all__ = ["StalenessPolicy", "SnapshotPublisher", "RefreshSupervisor"]


@dataclass(frozen=True)
class StalenessPolicy:
    """The grace window before a served snapshot's age degrades health.

    ``warn_after_seconds`` and ``crit_after_seconds`` bound the ok →
    warn → crit ladder; pick them as small multiples of the refresh
    cadence (e.g. 3x and 10x) so one missed refresh warns and a dead
    refresh loop eventually pages.
    """

    warn_after_seconds: float = 300.0
    crit_after_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.warn_after_seconds <= 0:
            raise ValueError("warn_after_seconds must be positive")
        if self.crit_after_seconds < self.warn_after_seconds:
            raise ValueError("crit_after_seconds must be >= warn_after_seconds")

    def grade(self, age_seconds: float) -> str:
        """``ok``/``warn``/``crit`` for a snapshot of the given age."""
        if age_seconds >= self.crit_after_seconds:
            return CRIT
        if age_seconds >= self.warn_after_seconds:
            return WARN
        return OK


class SnapshotPublisher:
    """Serves queries against an atomically swappable rule snapshot.

    ``source`` (optional) is published immediately; otherwise the
    publisher starts empty and :meth:`query` raises until the first
    :meth:`publish`.  A lock serializes concurrent *publishers* (version
    assignment stays monotone); readers never take it.  ``staleness``
    (optional) grades snapshot age in :meth:`health`; ``clock`` injects
    time for deterministic tests.
    """

    def __init__(
        self,
        source: Any = None,
        *,
        cache_size: int = 256,
        staleness: Optional[StalenessPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.cache_size = cache_size
        self.staleness = staleness
        self._clock = clock or SystemClock()
        self._engine: Optional[QueryEngine] = None
        self._publish_lock = threading.Lock()
        self._versions = itertools.count(1)
        self._published_at: Optional[float] = None
        self._last_failure: Optional[Dict[str, Any]] = None
        self._failures_total = 0
        self._supervisor: Optional["RefreshSupervisor"] = None
        if source is not None:
            self.publish(source)

    # ------------------------------------------------------------------
    # Read path — lock-free
    # ------------------------------------------------------------------

    @property
    def engine(self) -> Optional[QueryEngine]:
        """The current query engine (``None`` before the first publish)."""
        return self._engine

    @property
    def snapshot(self) -> Optional[RuleSnapshot]:
        """The current snapshot (``None`` before the first publish)."""
        engine = self._engine
        return engine.snapshot if engine is not None else None

    @property
    def version(self) -> int:
        """The published snapshot version (0 before the first publish)."""
        snapshot = self.snapshot
        return snapshot.version if snapshot is not None else 0

    @property
    def last_failure(self) -> Optional[Dict[str, Any]]:
        """The most recent failed publish attempt (``None`` if none ever).

        ``{"at": epoch_seconds, "error": class_name, "message": str}`` —
        recorded even when (especially when) the previous snapshot kept
        serving, and cleared by the next successful publish.
        """
        return self._last_failure

    def query(self, query: Optional[RuleQuery] = None, **kwargs) -> QueryAnswer:
        """Answer against the currently published snapshot.

        Captures the engine reference once, so the answer is internally
        consistent even if a swap happens concurrently.  Raises
        ``RuntimeError`` while nothing is published yet.
        """
        engine = self._engine
        if engine is None:
            raise RuntimeError("no snapshot published yet")
        return engine.query(query, **kwargs)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def publish(self, source: Any) -> RuleSnapshot:
        """Compile ``source`` and swap it in; returns the new snapshot.

        The compile (the expensive part) runs under the publish lock but
        readers never wait on it — they keep answering from the previous
        engine until the final attribute store below.  A compile failure
        leaves the old snapshot serving, records itself (see
        :attr:`last_failure`) and re-raises.
        """
        started = time.perf_counter()
        with self._publish_lock:
            version = next(self._versions)
            try:
                snapshot = compile_snapshot(
                    source, version=version, existing_version=version
                )
            except Exception as error:
                self._record_failure(error)
                raise
            self.swap(snapshot)
        seconds = time.perf_counter() - started
        if obs_metrics.metrics_enabled():
            obs_metrics.observe(
                "repro_serve_publish_seconds",
                seconds,
                help="Snapshot compile+swap latency per publish",
                unit="seconds",
            )
        obs_log.info(
            "serve.publish",
            version=snapshot.version,
            n_rules=snapshot.n_rules,
            seconds=round(seconds, 6),
        )
        return snapshot

    def _record_failure(self, error: BaseException) -> None:
        """Remember a failed publish so health/status can surface it."""
        self._failures_total += 1
        self._last_failure = {
            "at": self._clock.time(),
            "error": type(error).__name__,
            "message": str(error),
        }
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_serve_publish_failures_total",
                help="Publish attempts that failed mid-compile, by error class",
                error=type(error).__name__,
            )
        obs_log.error(
            "serve.publish_failed",
            error=type(error).__name__,
            message=str(error),
            failures_total=self._failures_total,
        )

    def swap(self, snapshot: RuleSnapshot) -> None:
        """Install a pre-built snapshot: one attribute store, no reader locks."""
        engine = QueryEngine(snapshot, cache_size=self.cache_size)
        self._engine = engine  # the atomic swap readers observe
        self._published_at = self._clock.time()
        self._last_failure = None
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_serve_publishes_total", help="Snapshot swaps performed"
            )
            obs_metrics.set_gauge(
                "repro_serve_snapshot_version",
                snapshot.version,
                help="Version of the currently served rule snapshot",
            )
            obs_metrics.set_gauge(
                "repro_serve_snapshot_rules",
                snapshot.n_rules,
                help="Rules held by the currently served snapshot",
            )

    def refresh(self, miner) -> RuleSnapshot:
        """Re-publish from a streaming miner's current rule set.

        The ``publisher.refresh`` fault point fires first, so the chaos
        suite can fail or delay exactly this path; a failure inside
        ``miner.rules()`` is recorded like any other publish failure.
        """
        try:
            faults.fire("publisher.refresh")
            source = miner.rules()
        except Exception as error:
            self._record_failure(error)
            raise
        return self.publish(source)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def snapshot_age_seconds(self) -> Optional[float]:
        """Seconds since the last swap (``None`` before the first)."""
        if self._published_at is None:
            return None
        return max(0.0, self._clock.time() - self._published_at)

    def health(self) -> HealthReport:
        """A serve-side :class:`~repro.obs.health.HealthReport`.

        ``snapshot_published`` is the only gating check (CRIT while
        nothing is served — the ``/healthz`` 503 condition).  With a
        :class:`StalenessPolicy` the age check degrades ok → warn →
        crit through the grace window; a recorded publish failure and a
        non-closed refresh circuit surface as WARN so operators see a
        broken refresh long before the snapshot is stale enough to
        page.  The rest are informational readings a scraper can trend.
        """
        report = HealthReport()
        snapshot = self.snapshot
        if snapshot is None:
            report.checks.append(
                HealthCheck(
                    "snapshot_published", CRIT, 0.0, "no snapshot published yet"
                )
            )
            self._append_failure_check(report)
            return report
        report.checks.append(
            HealthCheck(
                "snapshot_published",
                OK,
                float(snapshot.version),
                f"serving snapshot v{snapshot.version} "
                f"({snapshot.n_rules} rules)",
            )
        )
        age = self.snapshot_age_seconds() or 0.0
        if self.staleness is not None:
            status = self.staleness.grade(age)
            detail = (
                f"seconds since the last snapshot swap (warn at "
                f"{self.staleness.warn_after_seconds:g}s, crit at "
                f"{self.staleness.crit_after_seconds:g}s)"
            )
        else:
            status, detail = OK, "seconds since the last snapshot swap"
        report.checks.append(
            HealthCheck("snapshot_age_seconds", status, age, detail)
        )
        self._append_failure_check(report)
        supervisor = self._supervisor
        if supervisor is not None:
            report.checks.append(supervisor.health_check())
        engine = self._engine
        if engine is not None:
            info = engine.cache_info()
            report.checks.append(
                HealthCheck(
                    "query_cache_entries",
                    OK,
                    float(info["entries"]),
                    f"{info['hits']} hits / {info['misses']} misses "
                    f"(capacity {info['capacity']})",
                )
            )
        return report

    def _append_failure_check(self, report: HealthReport) -> None:
        """WARN while the most recent publish attempt failed."""
        if self._last_failure is None:
            if self._failures_total:
                report.checks.append(
                    HealthCheck(
                        "last_refresh_failure",
                        OK,
                        0.0,
                        f"recovered; {self._failures_total} failure(s) total",
                    )
                )
            return
        ago = max(0.0, self._clock.time() - self._last_failure["at"])
        report.checks.append(
            HealthCheck(
                "last_refresh_failure",
                WARN,
                ago,
                f"{self._last_failure['error']}: "
                f"{self._last_failure['message']} "
                f"({self._failures_total} failure(s) total; previous "
                f"snapshot still serving)",
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serving status as built-ins (the ``/healthz`` payload core)."""
        snapshot = self.snapshot
        payload = {
            "version": self.version,
            "n_rules": snapshot.n_rules if snapshot is not None else 0,
            "created_at": snapshot.created_at if snapshot is not None else None,
            "partitions": list(snapshot.partitions) if snapshot is not None else [],
            "snapshot_age_seconds": self.snapshot_age_seconds(),
            "last_failure": self._last_failure,
            "publish_failures_total": self._failures_total,
            "health": self.health().to_dict(),
        }
        if self._supervisor is not None:
            payload["refresh"] = self._supervisor.to_dict()
        return payload


class RefreshSupervisor:
    """Keeps a publisher fresh from a source that is allowed to fail.

    ``source`` is whatever :meth:`SnapshotPublisher.refresh` accepts (an
    object with ``rules()``, typically a streaming miner).  Each
    :meth:`refresh_once`:

    1. asks the circuit breaker for permission — while the circuit is
       open the refresh is *skipped* (counted, visible in health), not
       attempted, so a broken miner gets a cooldown instead of a
       hammering;
    2. runs the refresh under the retry policy — transient compile
       failures back off (jittered exponential, through the clock) and
       retry up to the policy's cap;
    3. records the overall outcome with the breaker: enough consecutive
       failed refreshes trip it, and the first successful probe after
       the cooldown closes it again.

    Attaching the supervisor registers it with the publisher so its
    circuit state appears in ``/healthz``.  :meth:`run` drives the loop
    on an interval through the injectable clock; tests call
    :meth:`refresh_once` directly and never sleep.
    """

    def __init__(
        self,
        publisher: SnapshotPublisher,
        source: Any,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Optional[Clock] = None,
    ):
        self.publisher = publisher
        self.source = source
        self.clock = clock or publisher._clock
        self.retry = retry if retry is not None else RetryPolicy(retries=2)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, reset_timeout=30.0,
            name="publisher.refresh", clock=self.clock,
        )
        self.refreshes_total = 0
        self.skips_total = 0
        self._stop = threading.Event()
        publisher._supervisor = self

    def refresh_once(self) -> Optional[RuleSnapshot]:
        """One supervised refresh; ``None`` when skipped by an open circuit.

        A refresh that still fails after the retry budget re-raises (the
        caller's loop decides whether to keep going) *after* the breaker
        has recorded the failure.
        """
        try:
            self.breaker.check()
        except CircuitOpenError:
            self.skips_total += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_serve_refresh_skips_total",
                    help="Refresh ticks skipped because the circuit was open",
                )
            obs_log.warn(
                "serve.refresh_skipped",
                circuit=self.breaker.state,
                skips_total=self.skips_total,
            )
            return None
        try:
            snapshot = self.retry.call(
                lambda: self.publisher.refresh(self.source),
                clock=self.clock,
            )
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        self.refreshes_total += 1
        return snapshot

    def run(
        self,
        interval_seconds: float,
        *,
        max_ticks: Optional[int] = None,
    ) -> None:
        """Tick :meth:`refresh_once` every interval until :meth:`stop`.

        Failures (including post-retry ones) are swallowed here — they
        are already recorded in the publisher's failure state, the
        breaker and the metrics; the loop's job is to survive them.
        ``max_ticks`` bounds the loop for tests and drills.
        """
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        ticks = 0
        while not self._stop.is_set():
            if max_ticks is not None and ticks >= max_ticks:
                return
            try:
                self.refresh_once()
            except Exception:
                pass
            ticks += 1
            self.clock.sleep(interval_seconds)

    def start(self, interval_seconds: float) -> threading.Thread:
        """Run the loop on a named daemon thread; returns it."""
        thread = threading.Thread(
            target=self.run,
            args=(interval_seconds,),
            name="repro-refresh",
            daemon=True,
        )
        thread.start()
        return thread

    def stop(self) -> None:
        """Ask a running loop to exit after its current tick."""
        self._stop.set()

    def health_check(self) -> HealthCheck:
        """The circuit's state as a health row (warn unless closed)."""
        state = self.breaker.state
        status = OK if state == "closed" else WARN
        retry_after = self.breaker.retry_after()
        detail = (
            f"refresh circuit {state} "
            f"({self.breaker.consecutive_failures} consecutive failure(s), "
            f"{self.skips_total} skip(s)"
            + (f"; probe in {retry_after:.1f}s" if retry_after else "")
            + ")"
        )
        from repro.resilience.runtime import _STATE_LEVELS

        return HealthCheck(
            "refresh_circuit", status, float(_STATE_LEVELS[state]), detail
        )

    def to_dict(self) -> Dict[str, Any]:
        """Supervisor status for the ``/healthz`` payload."""
        return {
            "circuit": self.breaker.to_dict(),
            "refreshes_total": self.refreshes_total,
            "skips_total": self.skips_total,
            "retries": self.retry.retries,
        }
