"""Atomic snapshot publication for non-blocking readers.

A :class:`SnapshotPublisher` owns the *current* query engine.  Publishing
compiles the new snapshot and engine completely off to the side and then
installs them with a single attribute store — the only write readers can
observe.  Readers grab that reference once per query, so a query started
against version N finishes against version N even if version N+1 lands
mid-flight; there are no locks on the read path and no torn states.

Feed it from a live :class:`~repro.core.streaming.StreamingDARMiner` via
:meth:`refresh` (absorb a batch, re-publish), from batch mining results,
or from checkpoint files — anything :func:`~repro.serve.snapshot.compile_snapshot`
accepts.  Versions are assigned monotonically by the publisher, and every
swap updates the ``repro_serve_snapshot_*`` gauges.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.health import CRIT, OK, HealthCheck, HealthReport
from repro.serve.query import QueryAnswer, QueryEngine, RuleQuery
from repro.serve.snapshot import RuleSnapshot, compile_snapshot

__all__ = ["SnapshotPublisher"]


class SnapshotPublisher:
    """Serves queries against an atomically swappable rule snapshot.

    ``source`` (optional) is published immediately; otherwise the
    publisher starts empty and :meth:`query` raises until the first
    :meth:`publish`.  A lock serializes concurrent *publishers* (version
    assignment stays monotone); readers never take it.
    """

    def __init__(self, source: Any = None, *, cache_size: int = 256):
        self.cache_size = cache_size
        self._engine: Optional[QueryEngine] = None
        self._publish_lock = threading.Lock()
        self._versions = itertools.count(1)
        self._published_at: Optional[float] = None
        if source is not None:
            self.publish(source)

    # ------------------------------------------------------------------
    # Read path — lock-free
    # ------------------------------------------------------------------

    @property
    def engine(self) -> Optional[QueryEngine]:
        """The current query engine (``None`` before the first publish)."""
        return self._engine

    @property
    def snapshot(self) -> Optional[RuleSnapshot]:
        """The current snapshot (``None`` before the first publish)."""
        engine = self._engine
        return engine.snapshot if engine is not None else None

    @property
    def version(self) -> int:
        """The published snapshot version (0 before the first publish)."""
        snapshot = self.snapshot
        return snapshot.version if snapshot is not None else 0

    def query(self, query: Optional[RuleQuery] = None, **kwargs) -> QueryAnswer:
        """Answer against the currently published snapshot.

        Captures the engine reference once, so the answer is internally
        consistent even if a swap happens concurrently.  Raises
        ``RuntimeError`` while nothing is published yet.
        """
        engine = self._engine
        if engine is None:
            raise RuntimeError("no snapshot published yet")
        return engine.query(query, **kwargs)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def publish(self, source: Any) -> RuleSnapshot:
        """Compile ``source`` and swap it in; returns the new snapshot.

        The compile (the expensive part) runs under the publish lock but
        readers never wait on it — they keep answering from the previous
        engine until the final attribute store below.
        """
        started = time.perf_counter()
        with self._publish_lock:
            version = next(self._versions)
            snapshot = compile_snapshot(
                source, version=version, existing_version=version
            )
            self.swap(snapshot)
        seconds = time.perf_counter() - started
        if obs_metrics.metrics_enabled():
            obs_metrics.observe(
                "repro_serve_publish_seconds",
                seconds,
                help="Snapshot compile+swap latency per publish",
                unit="seconds",
            )
        return snapshot

    def swap(self, snapshot: RuleSnapshot) -> None:
        """Install a pre-built snapshot: one attribute store, no reader locks."""
        engine = QueryEngine(snapshot, cache_size=self.cache_size)
        self._engine = engine  # the atomic swap readers observe
        self._published_at = time.time()
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_serve_publishes_total", help="Snapshot swaps performed"
            )
            obs_metrics.set_gauge(
                "repro_serve_snapshot_version",
                snapshot.version,
                help="Version of the currently served rule snapshot",
            )
            obs_metrics.set_gauge(
                "repro_serve_snapshot_rules",
                snapshot.n_rules,
                help="Rules held by the currently served snapshot",
            )

    def refresh(self, miner) -> RuleSnapshot:
        """Re-publish from a streaming miner's current rule set."""
        return self.publish(miner.rules())

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def health(self) -> HealthReport:
        """A serve-side :class:`~repro.obs.health.HealthReport`.

        ``snapshot_published`` is the only gating check (CRIT while
        nothing is served — the ``/healthz`` 503 condition); the rest are
        informational readings a scraper can trend.
        """
        report = HealthReport()
        snapshot = self.snapshot
        if snapshot is None:
            report.checks.append(
                HealthCheck(
                    "snapshot_published", CRIT, 0.0, "no snapshot published yet"
                )
            )
            return report
        report.checks.append(
            HealthCheck(
                "snapshot_published",
                OK,
                float(snapshot.version),
                f"serving snapshot v{snapshot.version} "
                f"({snapshot.n_rules} rules)",
            )
        )
        age = time.time() - self._published_at if self._published_at else 0.0
        report.checks.append(
            HealthCheck(
                "snapshot_age_seconds", OK, age,
                "seconds since the last snapshot swap",
            )
        )
        engine = self._engine
        if engine is not None:
            info = engine.cache_info()
            report.checks.append(
                HealthCheck(
                    "query_cache_entries",
                    OK,
                    float(info["entries"]),
                    f"{info['hits']} hits / {info['misses']} misses "
                    f"(capacity {info['capacity']})",
                )
            )
        return report

    def to_dict(self) -> Dict[str, Any]:
        """Serving status as built-ins (the ``/healthz`` payload core)."""
        snapshot = self.snapshot
        return {
            "version": self.version,
            "n_rules": snapshot.n_rules if snapshot is not None else 0,
            "created_at": snapshot.created_at if snapshot is not None else None,
            "partitions": list(snapshot.partitions) if snapshot is not None else [],
            "health": self.health().to_dict(),
        }
