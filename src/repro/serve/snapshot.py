"""Immutable, versioned rule snapshots in columnar form.

A :class:`RuleSnapshot` is a ``DARResult`` compiled for serving: rule
measures packed into flat numpy columns (degree, support, CSR-encoded
antecedent/consequent cluster uids with per-consequent degrees), the
rendered ``str(rule)`` descriptions (which double as the deterministic
tie-break key the query engine shares with
:func:`~repro.serve.query.apply_query`), every referenced cluster's
JSON descriptor, and inverted indexes mapping partition names to the
rule ids that mention them on each side.  Rule id = position in the
result's ``rules`` list, so ids are stable across save/load and
comparable against direct ``DARResult`` filtering.

Persistence reuses the resilience layer's versioned+CRC checkpoint
container (:mod:`repro.resilience.checkpoint`): floats round-trip
through JSON ``repr`` exactly, so a loaded snapshot's ``state_dict`` is
bit-identical to the saved one.  :func:`compile_snapshot` is the
any-source entry point — a ``DARResult``, an existing snapshot file, or
a streaming-miner checkpoint (which is restored and asked for its
current rules).
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.checkpoint import read_checkpoint, write_checkpoint
from repro.resilience.errors import CheckpointCorruptError

__all__ = ["SNAPSHOT_KIND", "RuleSnapshot", "compile_snapshot"]

#: The ``kind`` tag distinguishing snapshot checkpoints from streaming ones.
SNAPSHOT_KIND = "rule-snapshot"

#: Bump when the snapshot ``state_dict`` layout changes meaning.
SNAPSHOT_STATE_VERSION = 1

PathLike = Union[str, Path]


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class RuleSnapshot:
    """One compiled, immutable rule set ready for query serving.

    Construct via :meth:`from_result`, :meth:`from_state` or :meth:`load`
    — the constructor takes already-validated columns.  Instances are
    treated as frozen: the publisher swaps whole snapshots instead of
    mutating one, so readers can keep using a reference with no locking.
    """

    def __init__(
        self,
        *,
        version: int,
        created_at: str,
        degree: np.ndarray,
        support: np.ndarray,
        ant_offsets: np.ndarray,
        ant_uids: np.ndarray,
        con_offsets: np.ndarray,
        con_uids: np.ndarray,
        con_degrees: np.ndarray,
        descriptions: List[str],
        clusters: Dict[int, Dict[str, Any]],
        partitions: List[str],
        density_thresholds: Dict[str, float],
        degree_thresholds: Dict[str, float],
        frequency_count: int,
    ):
        self.version = int(version)
        self.created_at = created_at
        self.degree = np.asarray(degree, dtype=np.float64)
        self.support = np.asarray(support, dtype=np.int64)
        self.ant_offsets = np.asarray(ant_offsets, dtype=np.int64)
        self.ant_uids = np.asarray(ant_uids, dtype=np.int64)
        self.con_offsets = np.asarray(con_offsets, dtype=np.int64)
        self.con_uids = np.asarray(con_uids, dtype=np.int64)
        self.con_degrees = np.asarray(con_degrees, dtype=np.float64)
        self.descriptions = list(descriptions)
        self.clusters = dict(clusters)
        self.partitions = list(partitions)
        self.density_thresholds = dict(density_thresholds)
        self.degree_thresholds = dict(degree_thresholds)
        self.frequency_count = int(frequency_count)
        if not (
            len(self.degree)
            == len(self.support)
            == len(self.descriptions)
            == len(self.ant_offsets) - 1
            == len(self.con_offsets) - 1
        ):
            raise ValueError("snapshot columns disagree on the rule count")
        self.antecedent_index: Dict[str, np.ndarray] = {}
        self.consequent_index: Dict[str, np.ndarray] = {}
        self._build_indexes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(cls, result, *, version: int = 1) -> "RuleSnapshot":
        """Compile a ``DARResult`` into a snapshot (rule id = list position)."""
        from repro.report.export import cluster_to_dict

        started_span = span("serve.compile", rules=len(result.rules))
        with started_span:
            rules = list(result.rules)
            degree = np.empty(len(rules), dtype=np.float64)
            support = np.empty(len(rules), dtype=np.int64)
            ant_offsets = np.zeros(len(rules) + 1, dtype=np.int64)
            con_offsets = np.zeros(len(rules) + 1, dtype=np.int64)
            ant_uids: List[int] = []
            con_uids: List[int] = []
            con_degrees: List[float] = []
            descriptions: List[str] = []
            clusters: Dict[int, Dict[str, Any]] = {}
            for i, rule in enumerate(rules):
                degree[i] = float(rule.degree)
                support[i] = -1 if rule.support_count is None else int(rule.support_count)
                for cluster in rule.antecedent:
                    ant_uids.append(cluster.uid)
                    clusters.setdefault(cluster.uid, cluster_to_dict(cluster))
                for cluster in rule.consequent:
                    con_uids.append(cluster.uid)
                    con_degrees.append(float(rule.degrees.get(cluster.uid, rule.degree)))
                    clusters.setdefault(cluster.uid, cluster_to_dict(cluster))
                ant_offsets[i + 1] = len(ant_uids)
                con_offsets[i + 1] = len(con_uids)
                descriptions.append(str(rule))
            snapshot = cls(
                version=version,
                created_at=_utc_now(),
                degree=degree,
                support=support,
                ant_offsets=ant_offsets,
                ant_uids=np.asarray(ant_uids, dtype=np.int64),
                con_offsets=con_offsets,
                con_uids=np.asarray(con_uids, dtype=np.int64),
                con_degrees=np.asarray(con_degrees, dtype=np.float64),
                descriptions=descriptions,
                clusters=clusters,
                partitions=sorted(result.density_thresholds),
                density_thresholds={
                    k: float(v) for k, v in result.density_thresholds.items()
                },
                degree_thresholds={
                    k: float(v) for k, v in result.degree_thresholds.items()
                },
                frequency_count=int(result.frequency_count),
            )
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_serve_compiles_total", help="Rule snapshots compiled"
            )
        return snapshot

    def _build_indexes(self) -> None:
        """Derive the partition → rule-id inverted indexes from the CSR
        columns (rebuilt on load — derived state is never persisted)."""
        ant_sets: Dict[str, List[int]] = {}
        con_sets: Dict[str, List[int]] = {}
        for i in range(self.n_rules):
            for uid in self.antecedent_uids(i):
                name = self.clusters[uid]["partition"]
                ant_sets.setdefault(name, []).append(i)
            for uid in self.consequent_uids(i):
                name = self.clusters[uid]["partition"]
                con_sets.setdefault(name, []).append(i)
        self.antecedent_index = {
            name: np.unique(np.asarray(ids, dtype=np.int64))
            for name, ids in ant_sets.items()
        }
        self.consequent_index = {
            name: np.unique(np.asarray(ids, dtype=np.int64))
            for name, ids in con_sets.items()
        }

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        """How many rules the snapshot holds."""
        return len(self.degree)

    def antecedent_uids(self, rule_id: int) -> Tuple[int, ...]:
        """The antecedent cluster uids of one rule, in rule order."""
        lo, hi = self.ant_offsets[rule_id], self.ant_offsets[rule_id + 1]
        return tuple(int(u) for u in self.ant_uids[lo:hi])

    def consequent_uids(self, rule_id: int) -> Tuple[int, ...]:
        """The consequent cluster uids of one rule, in rule order."""
        lo, hi = self.con_offsets[rule_id], self.con_offsets[rule_id + 1]
        return tuple(int(u) for u in self.con_uids[lo:hi])

    def rule_dict(self, rule_id: int) -> Dict[str, Any]:
        """One rule as a JSON-ready dict (the ``/rules`` response row).

        Matches :func:`repro.report.export.rule_to_dict` plus the stable
        ``id`` and the rendered ``description``.
        """
        if not 0 <= rule_id < self.n_rules:
            raise IndexError(f"no rule with id {rule_id}")
        lo, hi = self.con_offsets[rule_id], self.con_offsets[rule_id + 1]
        support = int(self.support[rule_id])
        return {
            "id": int(rule_id),
            "antecedent": list(self.antecedent_uids(rule_id)),
            "consequent": list(self.consequent_uids(rule_id)),
            "degree": float(self.degree[rule_id]),
            "degrees": {
                str(int(uid)): float(value)
                for uid, value in zip(self.con_uids[lo:hi], self.con_degrees[lo:hi])
            },
            "support_count": None if support < 0 else support,
            "description": self.descriptions[rule_id],
        }

    def describe(self) -> str:
        """One status line (the CLI/serve banner)."""
        return (
            f"snapshot v{self.version}: {self.n_rules} rules over "
            f"{len(self.partitions)} partitions, {len(self.clusters)} clusters, "
            f"compiled {self.created_at}"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Everything needed to reconstruct the snapshot, as JSON built-ins."""
        return {
            "kind": SNAPSHOT_KIND,
            "state_version": SNAPSHOT_STATE_VERSION,
            "version": self.version,
            "created_at": self.created_at,
            "partitions": list(self.partitions),
            "density_thresholds": dict(self.density_thresholds),
            "degree_thresholds": dict(self.degree_thresholds),
            "frequency_count": self.frequency_count,
            "rules": {
                "degree": [float(v) for v in self.degree],
                "support": [int(v) for v in self.support],
                "ant_offsets": [int(v) for v in self.ant_offsets],
                "ant_uids": [int(v) for v in self.ant_uids],
                "con_offsets": [int(v) for v in self.con_offsets],
                "con_uids": [int(v) for v in self.con_uids],
                "con_degrees": [float(v) for v in self.con_degrees],
                "descriptions": list(self.descriptions),
            },
            "clusters": {str(uid): entry for uid, entry in self.clusters.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RuleSnapshot":
        """Rebuild a snapshot from :meth:`state_dict` output."""
        if state.get("kind") != SNAPSHOT_KIND:
            raise CheckpointCorruptError(
                f"state holds a {state.get('kind')!r} payload, not a "
                f"{SNAPSHOT_KIND!r}"
            )
        if state.get("state_version") != SNAPSHOT_STATE_VERSION:
            raise CheckpointCorruptError(
                f"snapshot state version {state.get('state_version')!r} is not "
                f"supported (this build reads version {SNAPSHOT_STATE_VERSION})"
            )
        columns = state["rules"]
        return cls(
            version=int(state["version"]),
            created_at=str(state["created_at"]),
            degree=np.asarray(columns["degree"], dtype=np.float64),
            support=np.asarray(columns["support"], dtype=np.int64),
            ant_offsets=np.asarray(columns["ant_offsets"], dtype=np.int64),
            ant_uids=np.asarray(columns["ant_uids"], dtype=np.int64),
            con_offsets=np.asarray(columns["con_offsets"], dtype=np.int64),
            con_uids=np.asarray(columns["con_uids"], dtype=np.int64),
            con_degrees=np.asarray(columns["con_degrees"], dtype=np.float64),
            descriptions=list(columns["descriptions"]),
            clusters={int(uid): entry for uid, entry in state["clusters"].items()},
            partitions=list(state["partitions"]),
            density_thresholds=dict(state["density_thresholds"]),
            degree_thresholds=dict(state["degree_thresholds"]),
            frequency_count=int(state["frequency_count"]),
        )

    def save(self, path: PathLike):
        """Persist atomically via the checkpoint container; returns its
        :class:`~repro.resilience.checkpoint.CheckpointInfo`."""
        return write_checkpoint(self.state_dict(), path)

    @classmethod
    def load(cls, path: PathLike) -> "RuleSnapshot":
        """Load a snapshot written by :meth:`save` (CRC-verified)."""
        state = read_checkpoint(path)
        if state.get("kind") != SNAPSHOT_KIND:
            raise CheckpointCorruptError(
                f"{path}: checkpoint holds a {state.get('kind')!r} state, not "
                f"a {SNAPSHOT_KIND!r}"
            )
        return cls.from_state(state)


def compile_snapshot(
    source, *, version: int = 1, existing_version: Optional[int] = None
) -> "RuleSnapshot":
    """Turn any rule source into a :class:`RuleSnapshot`.

    Accepts, in order of directness: a ready snapshot (returned as-is,
    or re-versioned via ``existing_version``), a ``DARResult``, or a
    path to either a snapshot checkpoint or a streaming-miner checkpoint
    (the latter is restored and its current :meth:`rules` compiled).
    Anything else raises ``TypeError``.
    """
    if isinstance(source, RuleSnapshot):
        if existing_version is not None and source.version != existing_version:
            source.version = int(existing_version)
        return source
    if hasattr(source, "rules") and hasattr(source, "density_thresholds"):
        return RuleSnapshot.from_result(source, version=version)
    if isinstance(source, (str, Path)):
        state = read_checkpoint(source)
        kind = state.get("kind")
        if kind == SNAPSHOT_KIND:
            snapshot = RuleSnapshot.from_state(state)
            if existing_version is not None:
                snapshot.version = int(existing_version)
            return snapshot
        if kind == "streaming-darminer":
            from repro.core.streaming import StreamingDARMiner

            miner = StreamingDARMiner.from_checkpoint(source)
            return RuleSnapshot.from_result(miner.rules(), version=version)
        raise CheckpointCorruptError(
            f"{source}: checkpoint holds a {kind!r} state; expected a "
            f"{SNAPSHOT_KIND!r} or 'streaming-darminer' checkpoint"
        )
    raise TypeError(
        "compile_snapshot needs a DARResult, a RuleSnapshot, or a checkpoint "
        f"path, got {type(source).__name__!r}"
    )
