"""Value partitioning for ordered attributes: equi-depth and equi-width.

Equi-depth partitioning is the [SA96] scheme the paper critiques in Figure 1:
"for a depth d, the first d values (in order) are placed in one interval,
the next d in a second interval, etc." — it uses only the *ordinal*
structure of the data, ignoring the separations that give interval data its
meaning.  We reproduce it faithfully (including keeping ties together, so an
attribute value never straddles two intervals), along with equi-width
partitioning and the K-partial-completeness rule for choosing the number of
base intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "Interval",
    "equidepth_intervals",
    "equiwidth_intervals",
    "partial_completeness_interval_count",
    "assign_to_intervals",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed range predicate ``lo <= attribute <= hi`` (an ``I_A`` of Dfn 4.3)."""

    attribute: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the closed interval."""
        return self.lo <= value <= self.hi

    @property
    def width(self) -> float:
        """``hi - lo``."""
        return self.hi - self.lo

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"{self.attribute}={_fmt(self.lo)}"
        return f"{self.attribute} in [{_fmt(self.lo)}, {_fmt(self.hi)}]"


def _fmt(value: float) -> str:
    return f"{value:g}"


def equidepth_intervals(
    values: Sequence[float], depth: int, attribute: str = "value"
) -> List[Interval]:
    """Equi-depth partition: consecutive runs of ``depth`` sorted values.

    Runs are extended so that equal values never straddle a boundary (an
    equality predicate must map to exactly one interval).  The last run may
    be short.  Interval bounds are the extreme *data values* of the run, as
    in Figure 1 of the paper ("[18K, 30K]" covers the first two values).
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    data = np.sort(np.asarray(values, dtype=np.float64))
    if data.size == 0:
        return []
    intervals: List[Interval] = []
    start = 0
    n = data.size
    while start < n:
        end = min(start + depth, n)
        # Extend to keep ties together.
        while end < n and data[end] == data[end - 1]:
            end += 1
        intervals.append(Interval(attribute, float(data[start]), float(data[end - 1])))
        start = end
    return intervals


def equiwidth_intervals(
    values: Sequence[float], n_intervals: int, attribute: str = "value"
) -> List[Interval]:
    """Equi-width partition of the value range into ``n_intervals`` bins."""
    if n_intervals < 1:
        raise ValueError("n_intervals must be at least 1")
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return []
    lo, hi = float(data.min()), float(data.max())
    if lo == hi:
        return [Interval(attribute, lo, hi)]
    edges = np.linspace(lo, hi, n_intervals + 1)
    return [
        Interval(attribute, float(edges[i]), float(edges[i + 1]))
        for i in range(n_intervals)
    ]


def partial_completeness_interval_count(min_support: float, k: float) -> int:
    """Number of base intervals for K-partial completeness ([SA96], §2.2).

    ``N = 2 / (min_support * (K - 1))`` — fewer intervals are needed when
    either the support bar or the completeness slack grows.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    if k <= 1.0:
        raise ValueError("partial completeness level K must exceed 1")
    return max(1, math.ceil(2.0 / (min_support * (k - 1.0))))


def assign_to_intervals(values: Sequence[float], intervals: Sequence[Interval]) -> np.ndarray:
    """Index of the containing interval per value (-1 when none contains it).

    When intervals overlap at their endpoints (adjacent equi-width bins),
    the first containing interval in the given order wins.
    """
    data = np.asarray(values, dtype=np.float64)
    labels = np.full(data.shape[0], -1, dtype=np.intp)
    for index, interval in enumerate(intervals):
        mask = (labels == -1) & (data >= interval.lo) & (data <= interval.hi)
        labels[mask] = index
    return labels
