"""Quantitative association rules (Dfn 4.3, after [SA96]) — the baseline.

The QAR pipeline: equi-depth partition each interval attribute into base
intervals (the depth chosen from the partial-completeness level), keep
nominal attributes as equality items, optionally merge adjacent base
intervals whose combined support stays under a cap, then run classical
Apriori over the interval items and generate support/confidence rules whose
predicates are ranges.

This is the system Figure 1 and Section 2 of the paper critique: interval
boundaries come from relative order alone, so a "[31K, 80K]" interval with
an unpopulated interior is a perfectly legal — and misleading — item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.classic.itemsets import apriori_itemsets
from repro.classic.rules import ClassicalRule, generate_rules
from repro.classic.transactions import Item, TransactionSet
from repro.data.relation import AttributeKind, Relation
from repro.quantitative.partition import (
    Interval,
    assign_to_intervals,
    equidepth_intervals,
    partial_completeness_interval_count,
)

__all__ = [
    "QARConfig",
    "QuantitativeRule",
    "QARMiner",
    "QARResult",
    "EqualityPredicate",
    "Predicate",
]


@dataclass(frozen=True, order=True)
class EqualityPredicate:
    """An ``attribute = value`` predicate on a nominal attribute."""

    attribute: str
    value: str

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


@dataclass(frozen=True)
class QARConfig:
    """Knobs of the [SA96] baseline."""

    min_support: float = 0.1
    min_confidence: float = 0.5
    partial_completeness: float = 1.5
    max_combined_support: Optional[float] = None
    max_rule_size: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError("min_support must be in [0, 1]")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if self.partial_completeness <= 1.0:
            raise ValueError("partial_completeness must exceed 1")


Predicate = object  # Union[Interval, EqualityPredicate]; kept loose for 3.9.


@dataclass(frozen=True)
class QuantitativeRule:
    """A rule whose predicates are intervals (ranges) or equality items."""

    antecedent: Tuple[Predicate, ...]
    consequent: Tuple[Predicate, ...]
    support: float
    confidence: float

    def __str__(self) -> str:
        lhs = " & ".join(str(interval) for interval in self.antecedent)
        rhs = " & ".join(str(interval) for interval in self.consequent)
        return f"{lhs} => {rhs} (sup={self.support:.3f}, conf={self.confidence:.3f})"


@dataclass
class QARResult:
    """Output of the baseline miner: rules plus the intervals used."""

    rules: List[QuantitativeRule]
    intervals: Dict[str, List[Interval]]
    depth: Dict[str, int]


class QARMiner:
    """Srikant–Agrawal style quantitative rule mining over a relation."""

    def __init__(self, config: QARConfig = QARConfig()):
        self.config = config

    def mine(
        self, relation: Relation, attributes: Optional[Sequence[str]] = None
    ) -> QARResult:
        """Mine quantitative rules over ``attributes`` (default: all)."""
        names = tuple(attributes or relation.schema.names)
        n = len(relation)
        intervals_by_attribute: Dict[str, List[Interval]] = {}
        depth_by_attribute: Dict[str, int] = {}
        item_columns: Dict[str, List[Item]] = {}

        for name in names:
            kind = relation.schema[name].kind
            column = relation.column(name)
            if kind is AttributeKind.NOMINAL:
                item_columns[name] = [Item(name, value) for value in column]
                continue
            intervals = self._base_intervals(name, column, n)
            intervals_by_attribute[name] = intervals
            depth_by_attribute[name] = self._depth(n)
            labels = assign_to_intervals(column, intervals)
            item_columns[name] = [Item(name, int(label)) for label in labels]

        transactions = TransactionSet(
            [item_columns[name][i] for name in names] for i in range(n)
        )
        itemsets = apriori_itemsets(
            transactions, self.config.min_support, max_size=self.config.max_rule_size
        )
        classical = generate_rules(itemsets, self.config.min_confidence)
        rules = [
            self._to_quantitative(rule, intervals_by_attribute) for rule in classical
        ]
        return QARResult(
            rules=rules, intervals=intervals_by_attribute, depth=depth_by_attribute
        )

    # ------------------------------------------------------------------

    def _depth(self, n: int) -> int:
        """Equi-depth depth from the partial-completeness level.

        The number of base intervals is ``2/(minsup (K-1))`` ([SA96]), so
        the depth (support per base interval) is ``n`` divided by that.
        """
        if self.config.min_support == 0:
            return 1
        n_intervals = partial_completeness_interval_count(
            self.config.min_support, self.config.partial_completeness
        )
        return max(1, n // max(n_intervals, 1))

    def _base_intervals(self, name: str, column: np.ndarray, n: int) -> List[Interval]:
        intervals = equidepth_intervals(column, self._depth(n), attribute=name)
        if self.config.max_combined_support is not None:
            intervals = self._merge_adjacent(intervals, column, n)
        return intervals

    def _merge_adjacent(
        self, intervals: List[Interval], column: np.ndarray, n: int
    ) -> List[Interval]:
        """Greedy merge of adjacent intervals under the combined-support cap.

        [SA96] considers all combinations of adjacent base intervals up to a
        maximum support; we realize the same coverage greedily, which keeps
        the item universe linear while still producing coarser ranges where
        the data is thin.
        """
        cap = self.config.max_combined_support
        assert cap is not None
        merged: List[Interval] = []
        current: Optional[Interval] = None
        for interval in intervals:
            if current is None:
                current = interval
                continue
            candidate = Interval(interval.attribute, current.lo, interval.hi)
            count = int(
                np.count_nonzero((column >= candidate.lo) & (column <= candidate.hi))
            )
            if n and count / n <= cap:
                current = candidate
            else:
                merged.append(current)
                current = interval
        if current is not None:
            merged.append(current)
        return merged

    @staticmethod
    def _to_quantitative(
        rule: ClassicalRule, intervals_by_attribute: Dict[str, List[Interval]]
    ) -> QuantitativeRule:
        def convert(items: FrozenSet[Item]) -> Tuple[Predicate, ...]:
            predicates: List[Predicate] = []
            for item in sorted(items):
                if item.attribute in intervals_by_attribute:
                    interval = intervals_by_attribute[item.attribute][int(item.value)]
                    predicates.append(interval)
                else:
                    predicates.append(EqualityPredicate(item.attribute, str(item.value)))
            return tuple(predicates)

        return QuantitativeRule(
            antecedent=convert(rule.antecedent),
            consequent=convert(rule.consequent),
            support=rule.support,
            confidence=rule.confidence,
        )
