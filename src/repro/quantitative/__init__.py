"""Quantitative association rules ([SA96]) — the equi-depth baseline."""

from repro.quantitative.partition import (
    Interval,
    assign_to_intervals,
    equidepth_intervals,
    equiwidth_intervals,
    partial_completeness_interval_count,
)
from repro.quantitative.qar import (
    EqualityPredicate,
    QARConfig,
    QARMiner,
    QARResult,
    QuantitativeRule,
)

__all__ = [
    "Interval",
    "assign_to_intervals",
    "equidepth_intervals",
    "equiwidth_intervals",
    "partial_completeness_interval_count",
    "EqualityPredicate",
    "QARConfig",
    "QARMiner",
    "QARResult",
    "QuantitativeRule",
]
