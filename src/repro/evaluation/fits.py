"""Statistical helpers for the evaluation harness.

Small, dependency-free (numpy only) utilities shared by the benchmark
suite and usable by downstream scalability studies: least-squares linear
fits with R², and the centroid-drift measure used by the §7.2 stability
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["LinearFit", "linear_fit", "nearest_match_drift"]


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line with its goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted line evaluated at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``ys`` against ``xs``.

    Requires at least two points.  A constant ``ys`` series fits perfectly
    (R² = 1 by convention: the model explains all — zero — variance).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be equal-length 1-d sequences")
    if x.size < 2:
        raise ValueError("a linear fit needs at least two points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def nearest_match_drift(
    reference: Mapping[str, Sequence[float]],
    other: Mapping[str, Sequence[float]],
) -> float:
    """Mean relative drift of ``other``'s values to their nearest reference.

    Used to compare cluster centroids across runs: every centroid in
    ``other`` is matched to the closest centroid of the same key in
    ``reference`` and the relative gap is averaged (the §7.2 "difference
    in the centroid of the clusters" measure).  Keys missing from the
    reference, or empty reference lists, are skipped; returns 0.0 when
    nothing is comparable.
    """
    drifts = []
    for key, values in other.items():
        ref = np.asarray(reference.get(key, ()), dtype=np.float64)
        if ref.size == 0:
            continue
        for value in values:
            nearest = ref[int(np.argmin(np.abs(ref - value)))]
            scale = max(abs(float(nearest)), 1e-9)
            drifts.append(abs(float(nearest) - float(value)) / scale)
    return float(np.mean(drifts)) if drifts else 0.0
