"""Evaluation support: fits, drift measures and reusable Phase I runs."""

from repro.evaluation.fits import LinearFit, linear_fit, nearest_match_drift
from repro.evaluation.phase1 import Phase1Measurement, measure_phase1

__all__ = [
    "LinearFit",
    "linear_fit",
    "nearest_match_drift",
    "Phase1Measurement",
    "measure_phase1",
]
