"""Reusable Phase I measurement runs for scalability studies.

The Figure 6 / §7.2 experiments all share one shape: cluster a set of
attribute partitions over a relation at the paper's operating point (3%
frequency threshold, 5MB budget, density thresholds derived per column)
and record time, entry counts and frequent-cluster centroids.  This module
packages that run so benchmarks — and downstream users reproducing the
study on their own data — don't each re-implement it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.birch.birch import BirchClusterer, BirchOptions
from repro.birch.features import CF
from repro.data.relation import AttributePartition, Relation

__all__ = ["Phase1Measurement", "measure_phase1"]


@dataclass
class Phase1Measurement:
    """Aggregate Phase I outcome over a set of partitions."""

    n_tuples: int
    seconds: float
    entry_count: int
    frequent_count: int
    centroids: Dict[str, List[float]] = field(default_factory=dict)
    rebuilds: int = 0


def measure_phase1(
    relation: Relation,
    attribute_names: Sequence[str],
    frequency_fraction: float = 0.03,
    density_fraction: float = 0.15,
    memory_limit_bytes: int = 5 * 2**20,
    with_cross_moments: bool = True,
) -> Phase1Measurement:
    """Run Phase I over single-attribute partitions and measure it.

    ``with_cross_moments=True`` builds full ACFs (every other attribute's
    moments carried along), which is what the DAR miner does;
    ``False`` measures bare clustering (the §7.2 census runs).
    """
    partitions = [AttributePartition(name, (name,)) for name in attribute_names]
    frequency_count = max(1, math.ceil(frequency_fraction * len(relation)))
    measurement = Phase1Measurement(
        n_tuples=len(relation), seconds=0.0, entry_count=0, frequent_count=0
    )
    for partition in partitions:
        others: Tuple[AttributePartition, ...] = (
            tuple(p for p in partitions if p.name != partition.name)
            if with_cross_moments
            else ()
        )
        column = relation.matrix(partition.attributes)
        threshold = density_fraction * CF.of_points(column).rms_diameter
        options = BirchOptions(
            initial_threshold=threshold if threshold > 0 else 1e-9,
            memory_limit_bytes=memory_limit_bytes,
            frequency_fraction=frequency_fraction,
        )
        result = BirchClusterer(partition, others, options).fit(relation)
        frequent = result.frequent(frequency_count)
        measurement.seconds += result.stats.seconds
        measurement.entry_count += result.stats.final_entry_count
        measurement.frequent_count += len(frequent)
        measurement.rebuilds += result.stats.rebuilds
        measurement.centroids[partition.name] = sorted(
            float(acf.centroid[0]) for acf in frequent
        )
    return measurement
