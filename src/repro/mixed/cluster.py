"""Clusters over mixed interval + qualitative data.

A :class:`MixedCluster` plays the role of :class:`repro.core.cluster.Cluster`
in the Section 8 extension: it is defined either on an interval partition
(where it wraps an ACF exactly as before) or on a single nominal attribute
(where, per Theorem 5.1, the only diameter-0 clusters are the value-pure
sets, so a cluster IS a frequent attribute value).  Either way it carries
images for *every* partition — CFs for interval projections, value
histograms (:class:`~repro.mixed.features.NominalFeature`) for qualitative
ones — so Phase II runs on summaries alone, exactly like the pure-interval
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple, Union

import numpy as np

from repro.birch.features import CF
from repro.data.relation import AttributePartition
from repro.mixed.features import NominalFeature

__all__ = ["MixedCluster", "Image"]

Image = Union[CF, NominalFeature]


@dataclass(frozen=True)
class MixedCluster:
    """A cluster over one partition of a mixed relation.

    ``images`` must contain an entry for every partition in the mining
    run, including the cluster's own (its primary summary).  ``value`` is
    set only for nominal clusters and names the attribute value the
    cluster is pure on.
    """

    uid: int
    partition: AttributePartition
    images: Dict[str, Image] = field(compare=False, hash=False, repr=False)
    value: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.partition.name not in self.images:
            raise ValueError(
                f"cluster {self.uid} lacks its own image on "
                f"{self.partition.name!r}"
            )

    @property
    def is_nominal(self) -> bool:
        """Whether the cluster summarizes a nominal partition."""
        return self.value is not None

    @property
    def n(self) -> int:
        """Number of tuples in the cluster."""
        return self.images[self.partition.name].n

    @property
    def dimension(self) -> int:
        """Dimension of the cluster's own partition."""
        return self.partition.dimension

    @property
    def diameter(self) -> float:
        """0/1-metric diameter for nominal clusters (0: value-pure),
        RMS diameter for interval ones."""
        own = self.images[self.partition.name]
        if isinstance(own, NominalFeature):
            return own.diameter
        return own.rms_diameter

    @property
    def centroid(self) -> np.ndarray:
        """Centroid for interval clusters; raises for nominal ones."""
        own = self.images[self.partition.name]
        if isinstance(own, NominalFeature):
            raise TypeError("a nominal cluster has a mode, not a centroid")
        return own.centroid

    def image(self, partition_name: str) -> Image:
        """The cluster's image on ``partition_name`` (raises if absent)."""
        try:
            return self.images[partition_name]
        except KeyError:
            raise KeyError(
                f"cluster {self.uid} has no image on {partition_name!r}; "
                f"available: {sorted(self.images)}"
            ) from None

    def image_diameter(self, partition_name: str) -> float:
        """Image diameter: 0/1-metric for nominal, RMS otherwise."""
        image = self.image(partition_name)
        if isinstance(image, NominalFeature):
            return image.diameter
        return image.rms_diameter

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Interval clusters only: centroid +- RMS radius (the ACF is not
        kept here, so the exact min/max box is unavailable; the miner
        substitutes the true box when it has one)."""
        own = self.images[self.partition.name]
        if isinstance(own, NominalFeature):
            raise TypeError("a nominal cluster has no bounding box")
        radius = own.rms_radius
        return own.centroid - radius, own.centroid + radius

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MixedCluster):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __str__(self) -> str:
        if self.is_nominal:
            return (
                f"C{self.uid}({self.partition.name}={self.value!s}; n={self.n})"
            )
        own = self.images[self.partition.name]
        center = ", ".join(f"{v:g}" for v in np.atleast_1d(own.centroid))
        return f"C{self.uid}({self.partition.name}~[{center}]; n={self.n})"
