"""Mixed interval + qualitative data mining (the paper's Section 8 extension)."""

from repro.mixed.cluster import MixedCluster
from repro.mixed.features import NominalFeature
from repro.mixed.miner import MixedDARConfig, MixedDARMiner, MixedDARResult

__all__ = [
    "MixedCluster",
    "NominalFeature",
    "MixedDARConfig",
    "MixedDARMiner",
    "MixedDARResult",
]
