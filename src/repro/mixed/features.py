"""Additive summaries for qualitative (nominal) attributes.

Section 8 of the paper: "We are currently extending our techniques to
consider the mining of rules over mixed variable data including interval
and qualitative data.  This involves combining the quality and interest
measures used for different types of data."

Under the 0/1 metric of Section 5.1, the inter-cluster distance D2 between
two tuple sets A and B projected on a nominal attribute is

    D2(A, B) = 1 - sum_v  count_A(v) * count_B(v) / (|A| |B|)

— one minus the probability that a random cross pair agrees.  That is not
a function of moments, so CF-style summaries do not suffice; it IS a
function of the per-value histograms, and histograms are additive under
union exactly like CFs.  :class:`NominalFeature` is therefore the
qualitative analogue of a CF, and the mixed miner's cluster summaries
carry one per nominal attribute (the qualitative analogue of ACF cross
moments).

The diameter of a tuple set under the 0/1 metric follows the same algebra:

    d(A) = 1 - sum_v count_A(v) * (count_A(v) - 1) / (|A| (|A| - 1))

which is 0 iff the set is value-pure — exactly Theorem 5.1.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

__all__ = ["NominalFeature"]


class NominalFeature:
    """An additive per-value histogram of a nominal column's projection."""

    __slots__ = ("counts", "n")

    def __init__(self, counts: Dict[Hashable, int] = None):
        self.counts: Dict[Hashable, int] = dict(counts or {})
        for value, count in self.counts.items():
            if count < 0:
                raise ValueError(f"negative count for value {value!r}")
        self.n = sum(self.counts.values())

    @classmethod
    def of_value(cls, value: Hashable) -> "NominalFeature":
        """The feature counting a single value."""
        return cls({value: 1})

    @classmethod
    def of_values(cls, values: Iterable[Hashable]) -> "NominalFeature":
        """The feature counting every value in ``values``."""
        counts: Dict[Hashable, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        return cls(counts)

    def copy(self) -> "NominalFeature":
        """An independent copy of the counts."""
        return NominalFeature(self.counts)

    # ------------------------------------------------------------------
    # Additivity (the qualitative Additivity Theorem)
    # ------------------------------------------------------------------

    def add_value(self, value: Hashable) -> None:
        """Count one more occurrence of ``value``, in place."""
        self.counts[value] = self.counts.get(value, 0) + 1
        self.n += 1

    def merge(self, other: "NominalFeature") -> None:
        """In-place union of value counts."""
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count
        self.n += other.n

    def merged(self, other: "NominalFeature") -> "NominalFeature":
        """The union of two features as a new object."""
        result = self.copy()
        result.merge(other)
        return result

    # ------------------------------------------------------------------
    # Derived 0/1-metric statistics
    # ------------------------------------------------------------------

    @property
    def diameter(self) -> float:
        """Average pairwise 0/1 distance (Eq. 2 under the discrete metric).

        Zero iff value-pure (Theorem 5.1); singletons and empty sets are 0
        by convention.
        """
        if self.n < 2:
            return 0.0
        agreements = sum(count * (count - 1) for count in self.counts.values())
        return 1.0 - agreements / (self.n * (self.n - 1))

    def d2(self, other: "NominalFeature") -> float:
        """Average cross-pair 0/1 distance (Eq. 6 under the discrete metric)."""
        if self.n == 0 or other.n == 0:
            raise ValueError("D2 between empty nominal clusters is undefined")
        agreements = sum(
            count * other.counts.get(value, 0)
            for value, count in self.counts.items()
        )
        return 1.0 - agreements / (self.n * other.n)

    def mode(self) -> Hashable:
        """The most frequent value (ties broken by value order)."""
        if not self.counts:
            raise ValueError("mode of an empty nominal feature is undefined")
        return min(self.counts, key=lambda value: (-self.counts[value], str(value)))

    def purity(self) -> float:
        """Fraction of tuples holding the modal value."""
        if self.n == 0:
            raise ValueError("purity of an empty nominal feature is undefined")
        return self.counts[self.mode()] / self.n

    def __repr__(self) -> str:
        return f"NominalFeature(n={self.n}, values={len(self.counts)})"
