"""Distance-based association rules over mixed interval + qualitative data.

The Section 8 extension, realized: interval partitions are clustered with
the adaptive BIRCH/ACF machinery of the base miner; each qualitative
attribute becomes a partition whose clusters are its frequent values
(Theorem 5.1: under the 0/1 metric, the diameter-0 clusters are exactly
the value-pure tuple sets, so "clustering" a nominal attribute is value
grouping).  Every cluster then carries images over every partition — CFs
over interval projections, value histograms over nominal ones — and
Phase II proceeds verbatim: clustering graph, maximal cliques, ``assoc``
sets, rules.

Degrees of association toward a nominal consequent are 0/1-metric D2
distances, so by Theorem 5.2 they read as ``1 - confidence``: a degree
threshold of 0.4 means "at least 60% of the antecedent's tuples carry the
value".  This is precisely the "combining the quality and interest
measures used for different types of data" the paper calls for.

Cost: one extra labeling pass over the data (shared with the optional
support count) to attach nominal histograms to interval clusters; the
ACF-tree itself is unchanged.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

import numpy as np

from repro.birch.birch import BirchClusterer, assign_to_centroids
from repro.birch.features import CF
from repro.core.cliques import maximal_cliques, non_trivial_cliques
from repro.core.config import DARConfig
from repro.core.graph import ClusteringGraph, build_clustering_graph
from repro.core.miner import DARMiner, Phase2Stats
from repro.core.rules import DistanceRule
from repro.data.relation import AttributeKind, AttributePartition, Relation
from repro.mixed.cluster import MixedCluster
from repro.mixed.features import NominalFeature

__all__ = ["MixedDARConfig", "MixedDARMiner", "MixedDARResult"]


@dataclass(frozen=True)
class MixedDARConfig:
    """Thresholds for the qualitative side of mixed mining.

    ``nominal_density`` bounds the 0/1-metric D2 between two clusters'
    nominal images for a clustering-graph edge; ``nominal_degree`` is the
    degree-of-association threshold toward nominal consequents
    (``1 - min_confidence`` by Theorem 5.2).  Both live in [0, 1].
    """

    base: DARConfig = DARConfig()
    nominal_density: float = 0.6
    nominal_degree: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.nominal_density <= 1.0:
            raise ValueError("nominal_density must be in [0, 1]")
        if not 0.0 <= self.nominal_degree <= 1.0:
            raise ValueError("nominal_degree must be in [0, 1]")


@dataclass
class MixedDARResult:
    """Mixed mining output: rules over MixedCluster sides."""

    rules: List[DistanceRule]
    clusters: Dict[str, List[MixedCluster]]
    graph: Optional[ClusteringGraph]
    cliques: List[FrozenSet[int]]
    density_thresholds: Dict[str, float]
    degree_thresholds: Dict[str, float]
    frequency_count: int
    phase2: Phase2Stats

    def rules_sorted(self) -> List[DistanceRule]:
        """Rules ordered by degree (ties broken textually)."""
        return sorted(self.rules, key=lambda rule: (rule.degree, str(rule)))


class MixedDARMiner(DARMiner):
    """Mines DARs over relations mixing interval and nominal attributes."""

    def __init__(self, config: MixedDARConfig = MixedDARConfig()):
        super().__init__(config.base)
        self.mixed_config = config

    # ------------------------------------------------------------------

    def mine_mixed(
        self,
        relation: Relation,
        interval_partitions: Optional[Sequence[AttributePartition]] = None,
        nominal_attributes: Optional[Sequence[str]] = None,
        taxonomies: Optional[Mapping[str, "Taxonomy"]] = None,
    ) -> MixedDARResult:
        """Run both phases over a mixed relation.

        Interval partitions default to one per interval attribute; nominal
        attributes default to every nominal attribute in the schema.

        ``taxonomies`` optionally maps a nominal attribute to a
        :class:`~repro.classic.taxonomy.Taxonomy`; each generalization
        level then becomes an additional virtual nominal partition
        (``attr@1``, ``attr@2``, ...) whose values are the ancestors at
        that level — the [SA95] "one count for all cars" grouping of
        Section 3, lifted into the distance-based framework.  Rules never
        combine two levels of the same attribute (those would be vacuous).
        """
        if len(relation) == 0:
            raise ValueError("cannot mine an empty relation")
        if interval_partitions is None:
            interval_partitions = [
                AttributePartition(name, (name,))
                for name in relation.schema.interval_names()
            ]
        if nominal_attributes is None:
            nominal_attributes = list(relation.schema.nominal_names())
        for name in nominal_attributes:
            if relation.schema[name].kind is not AttributeKind.NOMINAL:
                raise ValueError(f"attribute {name!r} is not nominal")
        interval_partitions = list(interval_partitions)
        nominal_partitions = [
            AttributePartition(name, (name,), metric="discrete")
            for name in nominal_attributes
        ]
        if not interval_partitions and not nominal_partitions:
            raise ValueError("nothing to mine: no partitions")

        n = len(relation)
        frequency_count = max(1, math.ceil(self.config.frequency_fraction * n))
        matrices = {
            p.name: relation.matrix(p.attributes) for p in interval_partitions
        }
        nominal_columns: Dict[str, np.ndarray] = {
            name: relation.column(name) for name in nominal_attributes
        }

        # Generalized virtual partitions from taxonomies ([SA95] levels).
        base_attribute: Dict[str, str] = {
            p.name: p.name for p in interval_partitions + nominal_partitions
        }
        for attribute, taxonomy in (taxonomies or {}).items():
            if attribute not in nominal_columns:
                raise ValueError(
                    f"taxonomy given for {attribute!r}, which is not a mined "
                    "nominal attribute"
                )
            column = nominal_columns[attribute]
            max_depth = max(
                (taxonomy.depth(value) for value in set(column.tolist())), default=0
            )
            for level in range(1, max_depth + 1):
                name = f"{attribute}@{level}"
                generalized = np.empty(n, dtype=object)
                for i, value in enumerate(column):
                    chain = taxonomy.ancestors(value)
                    generalized[i] = chain[level - 1] if len(chain) >= level else value
                nominal_columns[name] = generalized
                nominal_partitions.append(
                    AttributePartition(name, (attribute,), metric="discrete")
                )
                base_attribute[name] = attribute

        all_names = [p.name for p in interval_partitions + nominal_partitions]
        if len(set(all_names)) != len(all_names):
            raise ValueError(f"partition names must be unique, got {all_names}")

        density = self._resolve_density_thresholds(interval_partitions, matrices)
        degree = {
            p.name: self.config.degree_threshold(p.name, density[p.name])
            for p in interval_partitions
        }
        for p in nominal_partitions:
            density[p.name] = self.mixed_config.nominal_density
            degree[p.name] = self.mixed_config.nominal_degree

        # ---------------- Phase I: interval clustering -----------------
        uid = itertools.count()
        clusters: Dict[str, List[MixedCluster]] = {}
        interval_masks: Dict[int, np.ndarray] = {}

        for partition in interval_partitions:
            others = [p for p in interval_partitions if p.name != partition.name]
            options = replace(
                self.config.birch,
                initial_threshold=density[partition.name],
                frequency_fraction=self.config.frequency_fraction,
            )
            clusterer = BirchClusterer(partition, others, options)
            result = clusterer.fit_arrays(
                matrices[partition.name],
                {p.name: matrices[p.name] for p in others},
            )
            frequent = result.frequent(frequency_count)
            if not frequent:
                continue
            centroids = np.stack([acf.centroid for acf in frequent])
            labels = assign_to_centroids(matrices[partition.name], centroids)
            partition_clusters: List[MixedCluster] = []
            for index, acf in enumerate(frequent):
                mask = labels == index
                if not mask.any():
                    # Greedy closest-centroid labeling can strand a summary
                    # with no assigned tuples; it cannot carry nominal
                    # images, so it sits out Phase II.
                    continue
                images: Dict[str, object] = {partition.name: acf.cf}
                for other in others:
                    images[other.name] = acf.cross[other.name]
                for name, column in nominal_columns.items():
                    images[name] = NominalFeature.of_values(column[mask])
                cluster = MixedCluster(
                    uid=next(uid), partition=partition, images=images
                )
                interval_masks[cluster.uid] = mask
                partition_clusters.append(cluster)
            clusters[partition.name] = partition_clusters

        # ---------------- Phase I': nominal value grouping --------------
        nominal_masks: Dict[int, np.ndarray] = {}
        for partition in nominal_partitions:
            column = nominal_columns[partition.name]
            values, counts = np.unique(column.astype(str), return_counts=True)
            raw_column = column
            partition_clusters = []
            for value, count in zip(values, counts):
                if count < frequency_count:
                    continue
                mask = raw_column.astype(str) == value
                images = {
                    partition.name: NominalFeature({value: int(count)})
                }
                for p in interval_partitions:
                    images[p.name] = CF.of_points(matrices[p.name][mask])
                for name, other_column in nominal_columns.items():
                    if name == partition.name:
                        continue
                    images[name] = NominalFeature.of_values(other_column[mask])
                cluster = MixedCluster(
                    uid=next(uid),
                    partition=partition,
                    images=images,
                    value=value,
                )
                nominal_masks[cluster.uid] = mask
                partition_clusters.append(cluster)
            if partition_clusters:
                clusters[partition.name] = partition_clusters

        # ---------------- Phase II --------------------------------------
        phase2 = Phase2Stats()
        started = time.perf_counter()
        flat = [cluster for group in clusters.values() for cluster in group]
        phase2.n_clusters = len(flat)
        phase2.n_frequent_clusters = len(flat)

        graph: Optional[ClusteringGraph] = None
        cliques: List[FrozenSet[int]] = []
        rules: List[DistanceRule] = []
        if len(clusters) >= 2:
            lenient = {}
            for name, threshold in density.items():
                if any(p.name == name for p in nominal_partitions):
                    lenient[name] = threshold  # already a [0, 1] fraction
                else:
                    lenient[name] = self.config.phase2_leniency * threshold
            graph = build_clustering_graph(
                flat,
                lenient,
                metric=self.config.metric,
                use_density_pruning=self.config.use_density_pruning,
                pruning_diameter_factor=self.config.pruning_diameter_factor,
            )
            cliques = maximal_cliques(graph.adjacency)
            rules = self._rules_from_cliques(graph, cliques, degree)
            # A rule mixing two generalization levels of one attribute
            # (job=honda with job@1=car) is vacuous: drop it.
            rules = [
                rule
                for rule in rules
                if len(
                    {
                        base_attribute[c.partition.name]
                        for c in rule.antecedent + rule.consequent
                    }
                )
                == len(rule.antecedent) + len(rule.consequent)
            ]
            phase2.n_edges = graph.n_edges
            phase2.comparisons = graph.stats.comparisons
            phase2.comparisons_skipped = graph.stats.skipped
        if self.config.count_rule_support and rules:
            masks: Dict[int, np.ndarray] = {}
            masks.update(interval_masks)
            masks.update(nominal_masks)
            counted = []
            for rule in rules:
                joint = None
                for cluster in rule.antecedent + rule.consequent:
                    mask = masks.get(cluster.uid)
                    if mask is None:
                        joint = None
                        break
                    joint = mask if joint is None else (joint & mask)
                support = int(np.count_nonzero(joint)) if joint is not None else None
                counted.append(
                    DistanceRule(
                        antecedent=rule.antecedent,
                        consequent=rule.consequent,
                        degree=rule.degree,
                        degrees=rule.degrees,
                        support_count=support,
                    )
                )
            rules = counted
        phase2.n_cliques = len(cliques)
        phase2.n_non_trivial_cliques = len(non_trivial_cliques(cliques))
        phase2.n_rules = len(rules)
        phase2.seconds = time.perf_counter() - started

        return MixedDARResult(
            rules=rules,
            clusters=clusters,
            graph=graph,
            cliques=cliques,
            density_thresholds=density,
            degree_thresholds=degree,
            frequency_count=frequency_count,
            phase2=phase2,
        )
