"""The stable high-level entrypoint: :func:`repro.mine`.

One call runs both phases of the paper's algorithm with sensible
defaults and returns the full :class:`~repro.core.miner.DARResult`.  The
facade is intentionally tiny — everything it does is also reachable
through :class:`~repro.core.miner.DARMiner` — but its signature is the
compatibility contract: scripts, the CLI and the examples all go through
it, so the deeper modules stay free to refactor.

Quickstart::

    import repro

    relation, _ = repro.make_planted_rule_relation(seed=7)
    result = repro.mine(relation)
    for rule in result.rules_sorted()[:5]:
        print(rule)

``config`` accepts either a :class:`~repro.core.config.DARConfig` or a
plain mapping of its fields (forwarded to
:meth:`~repro.core.config.DARConfig.from_mapping`), so JSON/TOML-driven
runs need no imports beyond ``repro`` itself.

To watch a mine run, wrap the call with :mod:`repro.obs`
(``obs.enable()`` / ``obs.get_tracer().to_chrome(...)``) — every phase
of the pipeline underneath this facade is instrumented; see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, Union

from repro.core.config import DARConfig
from repro.core.miner import DARResult
from repro.data.columnar import ColumnStore
from repro.data.relation import AttributePartition, Relation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.resilience.guard import GuardPolicy

__all__ = ["mine"]


def mine(
    relation: Union[Relation, ColumnStore],
    *,
    config: Optional[Union[DARConfig, Mapping[str, Any]]] = None,
    partitions: Optional[Sequence[AttributePartition]] = None,
    targets: Optional[Sequence[str]] = None,
    policy: Optional["GuardPolicy"] = None,
    engine: str = "serial",
    workers: Optional[int] = None,
) -> DARResult:
    """Mine distance-based association rules from ``relation``.

    Equivalent to ``DARMiner(config).mine(relation, partitions, targets)``
    on a clean run, but wrapped in the graceful-degradation ladder of
    :func:`repro.resilience.guard.guarded_mine`: bad input fails fast
    with a precise :class:`~repro.resilience.errors.ValidationError`,
    memory exhaustion escalates the density thresholds and retries
    (recorded in ``result.phase2.events``), a Phase II kernel failure
    falls back to the scalar engine, and a structurally corrupt result is
    never returned.

    ``relation`` may also be a memory-mapped
    :class:`~repro.data.columnar.ColumnStore` (from
    ``load_csv(..., out_of_core=True)`` or the
    :class:`~repro.data.columnar.ColumnStore` constructors): Phase I then
    scans it chunk by chunk so datasets larger than RAM mine in bounded
    memory, and a columnar backend failure degrades to an in-memory
    retry (recorded in ``result.phase2.events``).  Out-of-core runs use
    the serial engine — pass ``engine="serial"`` (the default).

    ``config`` — a :class:`DARConfig`, a mapping of its fields, or ``None``
    for the paper's defaults.  ``partitions`` — the attribute partitioning
    (default: one partition per interval attribute).  ``targets`` — names
    of partitions rules may conclude about (the Section 5.2 N:1
    application); ``None`` mines all consequents.  ``policy`` — a
    :class:`~repro.resilience.guard.GuardPolicy` tuning the ladder.

    ``engine="parallel"`` fans Phase I partitions and Phase II row blocks
    out over ``workers`` processes via
    :class:`repro.parallel.ParallelDARMiner`; results are bit-identical
    to the serial engine, and a worker-pool failure degrades to serial
    with the event recorded in ``result.phase2.events``.  The worker
    count resolves in a fixed order (see
    :func:`repro.parallel.executor.resolve_workers`): an explicit
    positive ``workers`` wins; ``None`` or 0 means *auto* — the
    ``REPRO_WORKERS`` environment variable when set, else
    ``os.cpu_count()``, else 1.
    """
    from repro.resilience.guard import guarded_mine

    if isinstance(relation, ColumnStore) and engine != "serial":
        raise ValueError(
            "out-of-core mining (a ColumnStore input) runs on the serial "
            "engine; the parallel engine would materialize every column "
            "into shared memory — pass engine='serial', or materialize "
            "explicitly with store.to_relation()"
        )
    if config is None:
        config = DARConfig()
    elif isinstance(config, Mapping):
        config = DARConfig.from_mapping(config)
    elif not isinstance(config, DARConfig):
        raise TypeError(
            f"config must be a DARConfig or a mapping of its fields, "
            f"got {type(config).__name__}"
        )
    return guarded_mine(
        relation,
        config=config,
        partitions=partitions,
        targets=targets,
        policy=policy,
        engine=engine,
        workers=workers,
    )
