"""Parallel mining across cores.

The paper's two-phase pipeline is embarrassingly parallel: Phase I
clusters each attribute partition independently, and Phase II's blocked
pairwise kernel decomposes into independent row tiles.  This package
fans both out over a process pool while staying *decision-identical* to
the serial engine — the equivalence suite pins bit-identical rules.

Layering (what vs. where):

* :mod:`repro.parallel.tasks` — task descriptions and worker entry
  points (*what to compute*);
* :mod:`repro.parallel.executor` — the interchangeable backends
  (*where it runs*): serial in-process, or a process pool;
* :mod:`repro.parallel.shared` — shared-memory transport for the row
  matrices (no pickling of row data);
* :mod:`repro.parallel.kernel` — the tiled Phase II kernel;
* :mod:`repro.parallel.miner` — :class:`ParallelDARMiner`, the
  coordinator that merges worker results.

Entry points: ``repro.mine(relation, engine="parallel", workers=N)`` or
``repro mine data.csv --workers N`` on the command line.  Pool failures
degrade to the serial engine through the resilience ladder
(:func:`repro.resilience.guard.guarded_mine`), recorded in
``result.phase2.events``.
"""

from repro.parallel.executor import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.parallel.kernel import ParallelPhase2Kernel
from repro.parallel.miner import ParallelDARMiner
from repro.parallel.shared import SharedMatrixHandle, SharedMatrixStore, attach_matrices
from repro.parallel.tasks import (
    KILL_WORKER_ENV,
    Phase1Task,
    Phase2Tile,
    run_phase1_task,
    run_phase2_tile,
)

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ParallelPhase2Kernel",
    "ParallelDARMiner",
    "SharedMatrixHandle",
    "SharedMatrixStore",
    "attach_matrices",
    "KILL_WORKER_ENV",
    "Phase1Task",
    "Phase2Tile",
    "run_phase1_task",
    "run_phase2_tile",
]
