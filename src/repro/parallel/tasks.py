"""Task descriptions and worker entry points for parallel mining.

This module is the "what to compute" half of the parallel engine (the
"where it runs" half is :mod:`repro.parallel.executor`).  A
:class:`Phase1Task` describes one attribute partition's clustering pass —
the same unit of work the serial miner executes inline — and
:class:`Phase2Tile` one row block of the pairwise distance matrix.  The
worker entry points (:func:`run_phase1_task`, :func:`run_phase2_tile`)
are plain top-level functions so ``ProcessPoolExecutor`` can pickle
references to them under any start method.

Everything that crosses the process boundary is plain built-ins or small
numpy arrays: row data travels through shared memory
(:mod:`repro.parallel.shared`), clusters come back as ACF ``state_dict``
payloads (bit-exact float64 round-trip, the same format the checkpoint
layer relies on), scan statistics as :meth:`ScanStats.to_dict` rows, and
observability as a metrics-registry dump plus exported span rows that the
coordinator folds into its own registry/tracer.

Worker-death testing: when the ``REPRO_PARALLEL_KILL_WORKER``
environment variable names a partition, the worker assigned that
partition exits hard (``os._exit``) before touching the tree — the
reproducible stand-in for an OOM kill, which surfaces to the coordinator
as ``BrokenProcessPool``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.birch.batch import ScanStats
from repro.birch.birch import BirchClusterer, BirchOptions, Phase1Stats
from repro.birch.features import ACF
from repro.birch.outliers import ReplayReport
from repro.core.phase2_kernel import pairwise_block
from repro.data.relation import AttributePartition
from repro.parallel.shared import SharedMatrixHandle, attach_matrices
from repro.resilience import faults

__all__ = [
    "KILL_WORKER_ENV",
    "Phase1Task",
    "Phase2Tile",
    "run_phase1_task",
    "run_phase2_tile",
    "phase1_stats_to_dict",
    "phase1_stats_from_dict",
]

#: Set this env var to a partition name to make the worker holding that
#: partition die hard (``os._exit``) mid-scan — the faults suite's
#: reproducible worker-death switch.
KILL_WORKER_ENV = "REPRO_PARALLEL_KILL_WORKER"


@dataclass(frozen=True)
class Phase1Task:
    """One partition's Phase I clustering pass, as shippable data.

    Carries exactly what :meth:`repro.core.miner.DARMiner._run_phase1`
    feeds ``BirchClusterer`` for this partition — the partition, the
    cross partitions, the resolved options — plus the shared-memory
    descriptor to map the row data and the observability switches the
    worker should mirror.
    """

    partition: AttributePartition
    others: Tuple[AttributePartition, ...]
    options: BirchOptions
    descriptor: Mapping[str, SharedMatrixHandle]
    trace: bool = False
    metrics: bool = False
    log: bool = False
    context: Optional[Mapping[str, Any]] = None


@dataclass(frozen=True)
class Phase2Tile:
    """One row block of the pairwise image-distance matrix.

    The block boundaries are exactly the serial kernel's
    (``DEFAULT_BLOCK_SIZE`` rows), so a tile computed on a worker is
    bit-identical to the block the serial loop would have produced.
    """

    metric: str
    n: np.ndarray
    ls: np.ndarray
    ss: np.ndarray
    start: int
    stop: int


def phase1_stats_to_dict(stats: Phase1Stats) -> Dict[str, Any]:
    """``Phase1Stats`` as plain built-ins (crosses the process boundary)."""
    replay: Optional[Dict[str, Any]] = None
    if stats.replay is not None:
        replay = {
            "absorbed": stats.replay.absorbed,
            "confirmed_outliers": [
                acf.state_dict() for acf in stats.replay.confirmed_outliers
            ],
        }
    return {
        "points_inserted": stats.points_inserted,
        "rebuilds": stats.rebuilds,
        "threshold_history": list(stats.threshold_history),
        "pages_out": stats.pages_out,
        "paged_entries": stats.paged_entries,
        "replay": replay,
        "seconds": stats.seconds,
        "final_entry_count": stats.final_entry_count,
        "final_tree_bytes": stats.final_tree_bytes,
        "scan": stats.scan.to_dict() if stats.scan is not None else None,
    }


def phase1_stats_from_dict(state: Mapping[str, Any]) -> Phase1Stats:
    """Rebuild :meth:`phase1_stats_to_dict` output, ACFs bit-exact."""
    replay: Optional[ReplayReport] = None
    if state.get("replay") is not None:
        replay = ReplayReport(
            absorbed=int(state["replay"]["absorbed"]),
            confirmed_outliers=[
                ACF.from_state(acf)
                for acf in state["replay"]["confirmed_outliers"]
            ],
        )
    scan: Optional[ScanStats] = None
    if state.get("scan") is not None:
        scan = ScanStats.from_dict(state["scan"])
    return Phase1Stats(
        points_inserted=int(state["points_inserted"]),
        rebuilds=int(state["rebuilds"]),
        threshold_history=list(state["threshold_history"]),
        pages_out=int(state["pages_out"]),
        paged_entries=int(state["paged_entries"]),
        replay=replay,
        seconds=float(state["seconds"]),
        final_entry_count=int(state["final_entry_count"]),
        final_tree_bytes=int(state["final_tree_bytes"]),
        scan=scan,
    )


def _reset_worker_obs(trace: bool, metrics: bool, log: bool = False) -> None:
    """Give the worker a clean observability slate mirroring the parent.

    Under the ``fork`` start method the worker inherits the parent's
    tracer buffer, metrics registry and log buffer wholesale; without
    this reset the coordinator would merge the parent's own spans,
    counters and records back into itself, double-counting everything.
    Each task starts from empty and exports only what it recorded
    itself.  The flight recorder is always disabled in workers — the
    coordinator owns the postmortem window, and a worker must never
    write bundles of its own.
    """
    from repro.obs import flight as obs_flight
    from repro.obs import log as obs_log
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    obs_flight.disable_flight()
    if metrics:
        obs_metrics.enable_metrics().reset()
    else:
        obs_metrics.disable_metrics()
    if trace:
        obs_trace.enable_tracing().clear()
    else:
        obs_trace.disable_tracing()
        obs_trace.get_tracer().clear()
    if log:
        # Sink-less on purpose: records buffer in memory and ship home
        # with the result payload; only the coordinator's sink writes.
        obs_log.enable_logging(level=obs_log.DEBUG, stream=None, capacity=None)
        obs_log.get_logger().clear()
    else:
        obs_log.disable_logging()
        obs_log.get_logger().clear()


def _export_worker_obs(
    trace: bool, metrics: bool, log: bool = False
) -> Dict[str, Any]:
    """The task's recorded spans/metrics/logs, ready to ship to the parent."""
    out: Dict[str, Any] = {
        "metrics": None, "spans": None, "epoch": None, "logs": None,
    }
    if metrics:
        from repro.obs import metrics as obs_metrics

        out["metrics"] = obs_metrics.get_registry().export_state()
    if trace:
        from repro.obs import trace as obs_trace

        tracer = obs_trace.get_tracer()
        out["spans"] = [record.to_dict() for record in tracer.spans()]
        out["epoch"] = tracer.epoch
    if log:
        from repro.obs import log as obs_log

        out["logs"] = obs_log.get_logger().export_records()
    return out


def run_phase1_task(task: Phase1Task) -> Dict[str, Any]:
    """Worker entry point: cluster one partition, return shippable state.

    Runs the *exact* serial scan — same ``BirchClusterer``, same
    ``BatchInserter`` path, same data bytes (a shared-memory view of the
    coordinator's matrix) — so the returned ACF ``state_dict`` payloads
    are bit-identical to what the serial miner would have computed for
    this partition.
    """
    from contextlib import nullcontext

    from repro.obs import context as obs_context
    from repro.obs import log as obs_log

    faults.fire("parallel.worker")
    if os.environ.get(KILL_WORKER_ENV) == task.partition.name:
        # Simulated OOM-kill: die without cleanup so the coordinator sees
        # BrokenProcessPool, exactly like a real worker death.
        os._exit(1)
    _reset_worker_obs(task.trace, task.metrics, task.log)
    ambient = (
        obs_context.activate(obs_context.RequestContext.from_dict(task.context))
        if task.context is not None
        else nullcontext()
    )
    with ambient:
        with attach_matrices(task.descriptor) as matrices:
            clusterer = BirchClusterer(task.partition, task.others, task.options)
            result = clusterer.fit_arrays(
                matrices[task.partition.name],
                {p.name: matrices[p.name] for p in task.others},
            )
        obs_log.info(
            "parallel.partition_done",
            partition=task.partition.name,
            clusters=len(result.clusters),
            points=result.stats.points_inserted,
            pid=os.getpid(),
        )
    payload: Dict[str, Any] = {
        "partition": task.partition.name,
        "clusters": [acf.state_dict() for acf in result.clusters],
        "stats": phase1_stats_to_dict(result.stats),
    }
    payload.update(_export_worker_obs(task.trace, task.metrics, task.log))
    return payload


def run_phase2_tile(tile: Phase2Tile) -> np.ndarray:
    """Worker entry point: rows ``[start, stop)`` of the distance matrix."""
    faults.fire("parallel.worker")
    return pairwise_block(
        tile.metric, tile.n, tile.ls, tile.ss, tile.start, tile.stop
    )
