"""Shared-memory transport for the per-partition data matrices.

Phase I workers need read access to the relation's column matrices, but
pickling megabytes of row data into every worker would erase the point of
parallelizing the scan.  :class:`SharedMatrixStore` publishes each
partition's ``(n, dim)`` float64 matrix into one
:mod:`multiprocessing.shared_memory` segment; workers receive only the
tiny :class:`SharedMatrixHandle` descriptors (segment name + shape) and
map zero-copy numpy views with :func:`attach_matrices`.

Lifecycle: the coordinator owns the segments — it creates them, hands out
descriptors, and unlinks on context-manager exit (including on
``KeyboardInterrupt``, which is why the CLI runs the whole parallel mine
inside the store's ``with`` block).  Workers only ever ``close()`` their
attachments; they never unlink.  Worker-side attachments are
deregistered from :mod:`multiprocessing.resource_tracker` because the
tracker would otherwise unlink coordinator-owned segments when the first
worker exits (the well-known CPython issue with cross-process
``SharedMemory`` ownership, bpo-39959).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

__all__ = ["SharedMatrixHandle", "SharedMatrixStore", "attach_matrices"]


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Everything a worker needs to map one shared matrix: name + shape."""

    segment: str
    shape: Tuple[int, ...]

    @property
    def n_bytes(self) -> int:
        """Size of the float64 matrix the handle describes."""
        size = 8
        for extent in self.shape:
            size *= extent
        return size


class SharedMatrixStore:
    """Coordinator-side owner of the shared per-partition matrices.

    Use as a context manager::

        with SharedMatrixStore() as store:
            store.put("age", matrix)
            descriptor = store.descriptor()   # ship to workers
            ...                               # run the pool
        # segments closed and unlinked here, even on error/interrupt
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, SharedMatrixHandle] = {}

    def put(self, name: str, matrix: np.ndarray) -> SharedMatrixHandle:
        """Copy ``matrix`` (as C-contiguous float64) into a new segment."""
        if name in self._segments:
            raise ValueError(f"matrix {name!r} is already published")
        source = np.ascontiguousarray(matrix, dtype=np.float64)
        segment = shared_memory.SharedMemory(
            create=True, size=max(source.nbytes, 1)
        )
        view = np.ndarray(source.shape, dtype=np.float64, buffer=segment.buf)
        view[...] = source
        self._segments[name] = segment
        handle = SharedMatrixHandle(segment=segment.name, shape=source.shape)
        self._handles[name] = handle
        return handle

    def put_all(self, matrices: Mapping[str, np.ndarray]) -> None:
        """Publish every matrix of ``matrices`` (sorted-name order)."""
        for name in sorted(matrices):
            self.put(name, matrices[name])

    def descriptor(self) -> Dict[str, SharedMatrixHandle]:
        """The picklable name → handle map shipped to workers."""
        return dict(self._handles)

    @property
    def n_bytes(self) -> int:
        """Total bytes published across all segments."""
        return sum(handle.n_bytes for handle in self._handles.values())

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for segment in self._segments.values():
            try:
                segment.close()
            except OSError:
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments.clear()
        self._handles.clear()

    def __enter__(self) -> "SharedMatrixStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    The tracker treats every attachment as ownership and would unlink the
    segment when the attaching process exits (or, under ``fork``'s shared
    tracker daemon, double-unregister it noisily) — but these segments
    belong to the coordinator.  Python 3.13+ has ``track=False`` for
    exactly this; on older versions the tracker's ``register`` is
    no-opped for the duration of the attach, which is the established
    workaround for the same CPython issue (bpo-39959).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@contextmanager
def attach_matrices(
    descriptor: Mapping[str, SharedMatrixHandle],
) -> Iterator[Dict[str, np.ndarray]]:
    """Worker-side: map every handle as a zero-copy numpy view.

    Yields ``name -> (n, dim) float64 view``; the views are only valid
    inside the ``with`` block (the attachments close on exit, the
    coordinator unlinks later).
    """
    attached: List[shared_memory.SharedMemory] = []
    try:
        views: Dict[str, np.ndarray] = {}
        for name, handle in descriptor.items():
            segment = _attach_untracked(handle.segment)
            attached.append(segment)
            views[name] = np.ndarray(
                handle.shape, dtype=np.float64, buffer=segment.buf
            )
        yield views
    finally:
        for segment in attached:
            try:
                segment.close()
            except OSError:
                pass
