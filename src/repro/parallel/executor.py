"""Executor backends: *where* parallel tasks run.

The task layer (:mod:`repro.parallel.tasks`) describes *what* to compute;
this module supplies the interchangeable "where": :class:`SerialBackend`
runs tasks inline in submission order (the ``workers=1`` degenerate case
— and the proof that the task model adds nothing to the math), and
:class:`ProcessPoolBackend` fans them out over a
``concurrent.futures.ProcessPoolExecutor``.  Both present one method,
:meth:`ExecutorBackend.map_tasks`, which preserves input order in its
results — the coordinator's merge logic is therefore identical under
either backend, and a future distributed backend only has to honor the
same contract.

Failure semantics: infrastructure failures (a worker process dying →
``BrokenProcessPool``, the pool failing to start, a shared-memory attach
error) surface as :class:`~repro.resilience.errors.WorkerPoolError`, the
class the degradation ladder catches to retry serially.  Errors raised
*by the task itself* (``ValidationError`` on bad data, for instance)
propagate unchanged — they would recur on the serial engine, so masking
them as pool trouble would send the ladder down a pointless rung.

Fault points: ``parallel.pool`` fires when the process pool is created,
``parallel.worker`` fires at each worker-task entry, and ``pool.submit``
fires before each task submission (see :mod:`repro.resilience.faults`);
all convert an :class:`~repro.resilience.errors.InjectedFault` into
:class:`WorkerPoolError` so crash tests exercise the same recovery path
as real worker death.

Retry rung: before the degradation ladder's serial fallback ever runs,
:class:`ProcessPoolBackend` can retry a :class:`WorkerPoolError` on a
*fresh* pool with jittered exponential backoff (``retry=RetryPolicy``),
and can bound each task with a per-task timeout — a hung worker becomes
a ``WorkerPoolError`` instead of a hung mine.  Both knobs surface on
:class:`~repro.resilience.guard.GuardPolicy`.
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.resilience.errors import InjectedFault, ReproError, WorkerPoolError
from repro.resilience.runtime import Clock, RetryPolicy, SystemClock

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_workers",
]

#: Environment override for the automatic worker count (a positive int).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker-count request to a concrete positive integer.

    Resolution order (first match wins):

    1. an explicit positive ``workers`` argument is used as-is;
    2. ``workers=None`` or ``workers=0`` means *auto*: the
       ``REPRO_WORKERS`` environment variable, when set, must be a
       positive integer and wins;
    3. otherwise ``os.cpu_count()`` (falling back to 1 where the
       interpreter cannot tell).

    Negative requests and malformed ``REPRO_WORKERS`` values raise
    ``ValueError`` — silently mining serially when the caller asked for
    parallelism would hide a configuration bug.
    """
    if workers is not None:
        workers = int(workers)
        if workers < 0:
            raise ValueError(
                f"workers must be non-negative (0 = auto), got {workers}"
            )
        if workers > 0:
            return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {env!r}"
            )
        if value < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {env!r}"
            )
        return value
    return os.cpu_count() or 1


class ExecutorBackend:
    """The contract both backends implement (context manager + map)."""

    #: Number of workers the backend fans out to (1 for serial).
    n_workers: int = 1

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> List[Any]:
        """Run ``fn`` over every task; results in task order."""
        raise NotImplementedError

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class SerialBackend(ExecutorBackend):
    """Run every task inline, in order — the ``workers=1`` backend."""

    n_workers = 1

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to each task in submission order."""
        return [fn(task) for task in tasks]


class ProcessPoolBackend(ExecutorBackend):
    """Fan tasks out over a ``ProcessPoolExecutor``.

    The executor is created lazily on ``__enter__`` and shut down with
    ``cancel_futures=True`` on ``__exit__``, so an interrupt (or any
    exception unwinding through the ``with`` block) cannot leave orphan
    worker processes or queued tasks behind.

    ``retry`` (a :class:`~repro.resilience.runtime.RetryPolicy`) makes
    :meth:`map_tasks` rebuild the pool and resubmit the whole batch
    after a :class:`WorkerPoolError`, backing off through ``clock``
    between attempts; ``task_timeout`` bounds each task's wall time so
    a wedged worker surfaces as a pool failure rather than a hang.
    """

    def __init__(
        self,
        workers: int,
        *,
        retry: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        clock: Optional[Clock] = None,
    ):
        if workers < 2:
            raise ValueError(
                "ProcessPoolBackend needs at least 2 workers; use "
                "SerialBackend for single-worker runs"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        self.n_workers = workers
        self.retry = retry
        self.task_timeout = task_timeout
        self.clock = clock or SystemClock()
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def __enter__(self) -> "ProcessPoolBackend":
        try:
            faults.fire("parallel.pool")
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers
            )
        except InjectedFault as error:
            raise WorkerPoolError(f"worker pool failed to start: {error}") from error
        except OSError as error:
            raise WorkerPoolError(
                f"could not start {self.n_workers} worker processes: {error}"
            ) from error
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the pool, cancelling anything still queued (idempotent)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> List[Any]:
        """Submit every task; gather results in submission order.

        A dead worker (``BrokenProcessPool``), an injected ``parallel.*``
        or ``pool.submit`` fault, or a task outliving ``task_timeout``
        raises :class:`WorkerPoolError` — after exhausting the ``retry``
        policy's fresh-pool attempts, when one is configured.  Other
        :class:`~repro.resilience.errors.ReproError` subclasses (data
        errors raised inside the task) propagate as themselves and are
        never retried — they would recur.
        """
        if self._executor is None:
            raise WorkerPoolError(
                "worker pool is not running (use the backend as a context "
                "manager)"
            )
        retries = self.retry.retries if self.retry is not None else 0
        for attempt in range(retries + 1):
            try:
                return self._map_once(fn, tasks)
            except WorkerPoolError:
                if attempt >= retries:
                    raise
                if obs_metrics.metrics_enabled():
                    obs_metrics.inc(
                        "repro_resilience_pool_retries_total",
                        help="Worker-pool batch retries on a fresh pool",
                    )
                self.clock.sleep(self.retry.delay(attempt))
                self._rebuild()
        raise AssertionError("unreachable")  # pragma: no cover

    def _rebuild(self) -> None:
        """Replace a (possibly broken) executor with a fresh pool.

        A ``BrokenProcessPool`` poisons the executor permanently, so a
        retry without a rebuild would fail instantly; startup failures
        surface through the same ``parallel.pool`` conversion as
        ``__enter__``.
        """
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        try:
            faults.fire("parallel.pool")
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers
            )
        except InjectedFault as error:
            raise WorkerPoolError(f"worker pool failed to restart: {error}") from error
        except OSError as error:
            raise WorkerPoolError(
                f"could not restart {self.n_workers} worker processes: {error}"
            ) from error

    def _map_once(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> List[Any]:
        """One submit-and-gather attempt over the current pool."""
        futures = []
        results: List[Any] = []
        try:
            for task in tasks:
                faults.fire("pool.submit")
                futures.append(self._executor.submit(fn, task))
            for future in futures:
                results.append(future.result(timeout=self.task_timeout))
        except InjectedFault as error:
            raise WorkerPoolError(f"worker task failed: {error}") from error
        except ReproError:
            raise
        except concurrent.futures.TimeoutError as error:
            # The wedged worker is still holding the pool: abandon the
            # executor without waiting (shutdown(wait=True) would hang on
            # the very task that just timed out).
            executor = self._executor
            self._executor = None
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            raise WorkerPoolError(
                f"a worker task exceeded its {self.task_timeout:g}s timeout"
            ) from error
        except BrokenProcessPool as error:
            raise WorkerPoolError(
                f"a worker process died mid-task: {error}"
            ) from error
        except OSError as error:
            raise WorkerPoolError(f"worker pool I/O failure: {error}") from error
        finally:
            for future in futures:
                future.cancel()
        return results
