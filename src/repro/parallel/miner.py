"""The parallel two-phase miner: same decisions, more cores.

:class:`ParallelDARMiner` subclasses :class:`~repro.core.miner.DARMiner`
and overrides exactly the two hooks the serial miner exposes for this
purpose:

* :meth:`~repro.core.miner.DARMiner._run_phase1` — builds one
  :class:`~repro.parallel.tasks.Phase1Task` per attribute partition,
  publishes the data matrices into shared memory, and fans the tasks out
  over the executor backend.  Workers run the unchanged
  ``BirchClusterer``/``BatchInserter`` scan and return ACF ``state_dict``
  payloads; the coordinator rebuilds the clusters (bit-exact, by the same
  float64 JSON round-trip the checkpoint layer relies on) and assigns
  uids from a fresh counter in partition-list order — exactly the serial
  uid assignment, so everything downstream is decision-identical.
* :meth:`~repro.core.miner.DARMiner._make_kernel` — returns a
  :class:`~repro.parallel.kernel.ParallelPhase2Kernel` that tiles the
  blocked pairwise computation over the same pool.

Correctness rests on two facts.  First, each Phase I task is a *whole*
partition: the scan inside a worker is byte-for-byte the serial scan, so
no floating-point re-association can creep in (the ACF Additivity
Theorem would make row-sharded scans merge exactly in ``N``/``LS``/``SS``,
but the BIRCH tree's *decisions* depend on insertion order, so the
partition is the natural parallel unit — and per-worker ``ScanStats``
reconcile through the same :meth:`~repro.birch.batch.ScanStats.merge`
the serial result uses).  Second, Phase II tiles reuse the serial block
boundaries and the shared :func:`~repro.core.phase2_kernel.pairwise_block`
function, so assembled distance matrices are bit-identical.

``workers=1`` (or a single partition) uses the
:class:`~repro.parallel.executor.SerialBackend` — the serial path *is*
the one-worker backend of the same task model.  Pool failures surface as
:class:`~repro.resilience.errors.WorkerPoolError` for the degradation
ladder to catch.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.birch.birch import Phase1Stats
from repro.birch.features import ACF
from repro.core.cluster import Cluster
from repro.core.config import DARConfig
from repro.core.miner import DARMiner, DARResult
from repro.core.phase2_kernel import Phase2Kernel
from repro.data.relation import AttributePartition, Relation
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.parallel.executor import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_workers,
)
from repro.parallel.kernel import ParallelPhase2Kernel
from repro.parallel.shared import SharedMatrixStore
from repro.parallel.tasks import Phase1Task, run_phase1_task

__all__ = ["ParallelDARMiner"]


class ParallelDARMiner(DARMiner):
    """Mines with Phase I/II fanned out over a process pool.

    ``workers=None`` (or 0) resolves automatically — ``REPRO_WORKERS``
    when set, else ``os.cpu_count()`` (see
    :func:`~repro.parallel.executor.resolve_workers`).  ``pool_retry``
    and ``task_timeout`` flow to the
    :class:`~repro.parallel.executor.ProcessPoolBackend`: a pool failure
    is retried on a fresh pool with backoff before the guard ladder's
    serial rung ever engages, and a hung worker becomes a
    ``WorkerPoolError`` after ``task_timeout`` seconds.

    >>> from repro.data.synthetic import make_planted_rule_relation
    >>> relation, _ = make_planted_rule_relation(seed=7)
    >>> result = ParallelDARMiner(workers=2).mine(relation)
    >>> len(result.rules) > 0
    True
    """

    def __init__(
        self,
        config: DARConfig = DARConfig(),
        workers: Optional[int] = None,
        *,
        pool_retry=None,
        task_timeout: Optional[float] = None,
    ):
        super().__init__(config)
        self.workers = resolve_workers(workers)
        self.pool_retry = pool_retry
        self.task_timeout = task_timeout
        self._backend: Optional[ExecutorBackend] = None

    # ------------------------------------------------------------------

    def mine(
        self,
        relation: Relation,
        partitions: Optional[Sequence[AttributePartition]] = None,
        targets: Optional[Sequence[str]] = None,
    ) -> DARResult:
        """Run both phases with the worker pool held for the whole run.

        The backend is opened before Phase I and closed (with queued
        tasks cancelled) when the run ends — normally, on error, or on
        interrupt — so no worker processes outlive the call.
        """
        backend: ExecutorBackend
        if self.workers <= 1:
            backend = SerialBackend()
        else:
            backend = ProcessPoolBackend(
                self.workers,
                retry=self.pool_retry,
                task_timeout=self.task_timeout,
            )
        with backend:
            self._backend = backend
            try:
                result = super().mine(relation, partitions=partitions, targets=targets)
            except Exception as error:
                obs_flight.dump_on_error("parallel-mine", error)
                raise
            finally:
                self._backend = None
        if obs_metrics.metrics_enabled():
            obs_metrics.set_gauge(
                "repro_parallel_workers",
                backend.n_workers,
                help="Worker count of the latest parallel mine",
            )
        return result

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------

    def _run_phase1(
        self,
        partition_list: Sequence[AttributePartition],
        matrices: Mapping[str, np.ndarray],
        density: Mapping[str, float],
        frequency_count: int,
    ) -> Tuple[
        Dict[str, Phase1Stats],
        Dict[str, List[Cluster]],
        Dict[str, List[Cluster]],
    ]:
        """Fan one clustering task per partition out over the backend."""
        assert self._backend is not None, "mine() owns the backend lifecycle"
        backend = self._backend
        trace_on = obs_trace.tracing_enabled()
        metrics_on = obs_metrics.metrics_enabled()
        log_on = obs_log.logging_enabled()
        ambient = obs_context.current()
        context_state = ambient.to_dict() if ambient is not None else None
        with SharedMatrixStore() as store:
            store.put_all(matrices)
            descriptor = store.descriptor()
            tasks = []
            for partition in partition_list:
                others = tuple(
                    p for p in partition_list if p.name != partition.name
                )
                options = replace(
                    self.config.birch,
                    initial_threshold=density[partition.name],
                    frequency_fraction=self.config.frequency_fraction,
                )
                tasks.append(
                    Phase1Task(
                        partition=partition,
                        others=others,
                        options=options,
                        descriptor=descriptor,
                        trace=trace_on and backend.n_workers > 1,
                        metrics=metrics_on and backend.n_workers > 1,
                        log=log_on and backend.n_workers > 1,
                        context=context_state,
                    )
                )
            with span(
                "phase1.scatter",
                tasks=len(tasks),
                workers=backend.n_workers,
                shared_bytes=store.n_bytes,
            ) as scatter_span:
                dispatch_base = time.perf_counter()
                payloads = backend.map_tasks(run_phase1_task, tasks)
                self._merge_worker_obs(payloads, scatter_span, dispatch_base)

        phase1_stats: Dict[str, Phase1Stats] = {}
        all_clusters: Dict[str, List[Cluster]] = {}
        frequent_clusters: Dict[str, List[Cluster]] = {}
        by_name = {payload["partition"]: payload for payload in payloads}
        uid = itertools.count()
        for partition in partition_list:
            payload = by_name[partition.name]
            phase1_stats[partition.name] = _stats_from_payload(payload)
            clusters = [
                Cluster(
                    uid=next(uid), partition=partition, acf=ACF.from_state(state)
                )
                for state in payload["clusters"]
            ]
            all_clusters[partition.name] = clusters
            frequent = [c for c in clusters if c.n >= frequency_count]
            # "If for some X_i there are no frequent clusters, we omit X_i
            # from consideration in Phase II."
            if frequent:
                frequent_clusters[partition.name] = frequent
        return phase1_stats, all_clusters, frequent_clusters

    def _make_kernel(self, flat_frequent: Sequence[Cluster]) -> Phase2Kernel:
        """A Phase II kernel whose blocks tile across the pool."""
        return ParallelPhase2Kernel(
            flat_frequent, metric=self.config.metric, backend=self._backend
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _merge_worker_obs(payloads, scatter_span, dispatch_base: float) -> None:
        """Fold per-worker span/metric exports into the parent recorders.

        Worker metrics merge additively into the process registry
        (counters/histograms add, labeled gauges land on their own
        series); worker spans are re-parented under the scatter span and
        rebased from the worker's epoch to the dispatch time, so the
        parent trace shows worker scans as children of the fan-out.
        """
        parent_id = getattr(scatter_span, "span_id", 0)
        for payload in payloads:
            state = payload.get("metrics")
            if state is not None:
                obs_metrics.get_registry().merge(state)
            spans = payload.get("spans")
            if spans:
                obs_trace.get_tracer().ingest(
                    spans,
                    parent_id=parent_id,
                    epoch=payload.get("epoch"),
                    base=dispatch_base,
                )
            records = payload.get("logs")
            if records:
                obs_log.get_logger().ingest(records)


def _stats_from_payload(payload) -> Phase1Stats:
    """Decode the worker's serialized Phase I stats."""
    from repro.parallel.tasks import phase1_stats_from_dict

    return phase1_stats_from_dict(payload["stats"])
