"""Phase II kernel that tiles the blocked pairwise computation.

:class:`ParallelPhase2Kernel` is a :class:`~repro.core.phase2_kernel.Phase2Kernel`
whose ``_pairwise_blocked`` seam ships one :class:`~repro.parallel.tasks.Phase2Tile`
per row block to the executor backend and reassembles the returned tiles
into the full matrix.  The tiles use exactly the serial kernel's block
boundaries and evaluate the same :func:`~repro.core.phase2_kernel.pairwise_block`
function, so the assembled matrix — and therefore the viability mask, the
edge set, and every rule degree derived from it — is bit-identical to the
serial result.

Small populations (one block or fewer) and serial backends short-circuit
to the inherited in-process loop: shipping a single tile would pay the
pickling cost for nothing.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.cluster import Cluster
from repro.core.phase2_kernel import (
    DEFAULT_BLOCK_SIZE,
    ImageMoments,
    Phase2Kernel,
)
from repro.obs.trace import span
from repro.parallel.executor import ExecutorBackend
from repro.parallel.tasks import Phase2Tile, run_phase2_tile

__all__ = ["ParallelPhase2Kernel"]


class ParallelPhase2Kernel(Phase2Kernel):
    """A Phase II kernel whose row blocks compute on a worker pool."""

    def __init__(
        self,
        clusters: Sequence[Cluster],
        metric: str = "d2",
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: Optional[ExecutorBackend] = None,
    ):
        super().__init__(clusters, metric=metric, block_size=block_size)
        self._backend = backend

    def _pairwise_blocked(self, moments: ImageMoments) -> np.ndarray:
        """Distribute the serial block loop over the executor backend."""
        backend = self._backend
        k = moments.k
        if backend is None or backend.n_workers <= 1 or k <= self.block_size:
            return super()._pairwise_blocked(moments)
        tiles = [
            Phase2Tile(
                metric=self.metric,
                n=moments.n,
                ls=moments.ls,
                ss=moments.ss,
                start=start,
                stop=min(start + self.block_size, k),
            )
            for start in range(0, k, self.block_size)
        ]
        with span(
            "phase2.kernel.scatter", tiles=len(tiles), workers=backend.n_workers
        ):
            blocks = backend.map_tasks(run_phase2_tile, tiles)
        out = np.zeros((k, k), dtype=np.float64)
        for tile, block in zip(tiles, blocks):
            out[tile.start : tile.stop] = block
        return out
