"""Declarative SLO rules evaluated over the metrics catalog.

An :class:`SLORule` names a metric, an optional label ``selector``, a
statistic (raw value, histogram quantile, or a ratio against a second
metric), a comparison against a ``threshold``, and a ``severity``.  A
*rule pack* is just a list of rules — loadable from JSON or TOML files,
with :data:`DEFAULT_PACK` shipping sensible defaults for the serving
stack (query p99, shed rate, refresh-circuit state, quarantine rate,
checkpoint age).

Rules evaluate against any :class:`MetricsView`: a live
:class:`~repro.obs.metrics.MetricsRegistry` (wrap with
:func:`registry_view`) or a saved/scraped Prometheus text exposition
(parse with :func:`parse_prometheus`), so the same pack gates a running
server's ``/healthz``, the dashboard's SLO panel, and a CI job reading a
``metrics.prom`` artifact via ``repro slo check``.

A missing metric is not automatically a violation: each rule's
``absent`` policy says whether absence means ``skip`` (default — the
subsystem never ran), ``ok``, or ``violate``.

Example pack entry (JSON)::

    {"name": "serve_shed_rate", "metric": "repro_resilience_shed_total",
     "stat": "ratio", "denominator": "repro_serve_http_requests_total",
     "op": "<=", "threshold": 0.05, "severity": "crit"}
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.health import HealthCheck, HealthReport
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "SLORule",
    "SLOResult",
    "SLOReport",
    "MetricsView",
    "registry_view",
    "parse_prometheus",
    "evaluate_pack",
    "load_pack",
    "default_pack",
    "DEFAULT_PACK",
]

_STATS = ("value", "sum", "max", "min", "count", "mean", "p50", "p90", "p99", "ratio")
_OPS = ("<", "<=", ">", ">=", "==", "!=")
_SEVERITIES = ("warn", "crit")
_ABSENT = ("skip", "ok", "violate")

_STATUS_ORDER = {"ok": 0, "skip": 0, "warn": 1, "crit": 2}


@dataclass(frozen=True)
class SLORule:
    """One service-level objective: ``stat(metric{selector}) op threshold``.

    ``stat`` picks how the matching series collapse to one number:
    ``value``/``sum`` add counter/gauge series, ``max``/``min`` take the
    extreme (right for state gauges like circuit breakers), ``count``/
    ``mean``/``p50``/``p90``/``p99`` read histograms, and ``ratio``
    divides the metric's sum by ``denominator``'s sum.  The rule *holds*
    when the comparison is true; ``severity`` is the health level a
    violation maps to.  ``window_seconds`` is advisory metadata (the
    registry keeps lifetime aggregates); it documents the intended
    evaluation cadence for scrape-based deployments.
    """

    name: str
    metric: str
    threshold: float
    stat: str = "value"
    selector: Mapping[str, str] = field(default_factory=dict)
    op: str = "<="
    severity: str = "crit"
    denominator: Optional[str] = None
    window_seconds: Optional[float] = None
    description: str = ""
    absent: str = "skip"

    def __post_init__(self) -> None:
        if self.stat not in _STATS:
            raise ValueError(f"rule {self.name!r}: unknown stat {self.stat!r}")
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: severity must be one of {_SEVERITIES}"
            )
        if self.absent not in _ABSENT:
            raise ValueError(
                f"rule {self.name!r}: absent must be one of {_ABSENT}"
            )
        if self.stat == "ratio" and not self.denominator:
            raise ValueError(f"rule {self.name!r}: stat 'ratio' needs a denominator")

    def to_dict(self) -> Dict[str, Any]:
        """The rule as plain built-ins (the pack-file row)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "severity": self.severity,
            "absent": self.absent,
        }
        if self.selector:
            out["selector"] = dict(self.selector)
        if self.denominator:
            out["denominator"] = self.denominator
        if self.window_seconds is not None:
            out["window_seconds"] = self.window_seconds
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "SLORule":
        """Build a rule from a pack-file row (unknown keys rejected)."""
        known = {
            "name", "metric", "stat", "selector", "op", "threshold",
            "severity", "denominator", "window_seconds", "description",
            "absent",
        }
        extra = set(row) - known
        if extra:
            raise ValueError(
                f"SLO rule {row.get('name', '?')!r}: unknown keys {sorted(extra)}"
            )
        if "name" not in row or "metric" not in row or "threshold" not in row:
            raise ValueError(
                f"SLO rule {row.get('name', '?')!r}: 'name', 'metric' and "
                f"'threshold' are required"
            )
        return cls(
            name=str(row["name"]),
            metric=str(row["metric"]),
            threshold=float(row["threshold"]),
            stat=str(row.get("stat", "value")),
            selector=dict(row.get("selector", {})),
            op=str(row.get("op", "<=")),
            severity=str(row.get("severity", "crit")),
            denominator=row.get("denominator"),
            window_seconds=(
                None if row.get("window_seconds") is None
                else float(row["window_seconds"])
            ),
            description=str(row.get("description", "")),
            absent=str(row.get("absent", "skip")),
        )


@dataclass(frozen=True)
class SLOResult:
    """One rule's verdict: the measured value and the resulting status."""

    rule: SLORule
    value: Optional[float]
    status: str  # ok | warn | crit | skip
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when the rule held (or was skipped for an absent metric)."""
        return self.status in ("ok", "skip")

    def to_dict(self) -> Dict[str, Any]:
        """The result as plain built-ins (for /healthz and reports)."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "stat": self.rule.stat,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "value": self.value,
            "status": self.status,
            "detail": self.detail,
        }

    def describe(self) -> str:
        """One human-readable verdict line."""
        shown = "absent" if self.value is None else f"{self.value:.6g}"
        return (
            f"[{self.status:>4}] {self.rule.name}: "
            f"{self.rule.stat}({self.rule.metric}) = {shown} "
            f"(want {self.rule.op} {self.rule.threshold:g})"
        )


class SLOReport:
    """The verdicts of one pack evaluation, with health/exit adapters."""

    def __init__(self, results: Sequence[SLOResult]):
        self.results = list(results)

    @property
    def status(self) -> str:
        """Worst status across all rules: ok < warn < crit."""
        worst = "ok"
        for result in self.results:
            if _STATUS_ORDER.get(result.status, 0) > _STATUS_ORDER[worst]:
                worst = result.status
        return worst

    def violations(self) -> List[SLOResult]:
        """Results whose rule did not hold (warn or crit)."""
        return [r for r in self.results if r.status in ("warn", "crit")]

    def to_dict(self) -> Dict[str, Any]:
        """The report as plain built-ins (the /healthz ``slo`` payload)."""
        return {
            "status": self.status,
            "results": [result.to_dict() for result in self.results],
        }

    def to_health_checks(self) -> List[HealthCheck]:
        """The verdicts as health rows (``slo:<rule>``), for /healthz."""
        checks = []
        for result in self.results:
            status = "ok" if result.status in ("ok", "skip") else result.status
            checks.append(
                HealthCheck(
                    name=f"slo:{result.rule.name}",
                    status=status,
                    value=float("nan") if result.value is None else result.value,
                    detail=result.detail or result.describe(),
                )
            )
        return checks

    def to_health_report(self) -> HealthReport:
        """The verdicts wrapped as a standalone :class:`HealthReport`."""
        return HealthReport(checks=self.to_health_checks())

    def describe(self) -> str:
        """One verdict line per rule plus a worst-status footer."""
        lines = [result.describe() for result in self.results]
        lines.append(f"slo status: {self.status}")
        return "\n".join(lines)

    def exit_code(self, fail_on: str = "crit") -> int:
        """0 when healthy, 1 when status reaches ``fail_on`` (warn|crit)."""
        if fail_on not in ("warn", "crit"):
            raise ValueError("fail_on must be 'warn' or 'crit'")
        return 1 if _STATUS_ORDER[self.status] >= _STATUS_ORDER[fail_on] else 0


# ----------------------------------------------------------------------
# Metric views: one read API over a live registry or scraped text
# ----------------------------------------------------------------------


class MetricsView:
    """Read-only view the rule engine evaluates against.

    ``series(metric, selector)`` returns the matching scalar series
    values (empty list when the metric is absent) and
    ``histogram(metric, selector)`` the merged cumulative buckets of
    the matching histogram series, or ``None``.
    """

    def series(self, metric: str, selector: Mapping[str, str]) -> List[float]:
        """Scalar (counter/gauge) values of every series matching the selector."""
        raise NotImplementedError

    def histogram(
        self, metric: str, selector: Mapping[str, str]
    ) -> Optional[Tuple[List[Tuple[float, float]], float, float]]:
        """``(cumulative_buckets, count, sum)`` merged over matching series."""
        raise NotImplementedError


def _matches(labels: Mapping[str, str], selector: Mapping[str, str]) -> bool:
    return all(labels.get(key) == value for key, value in selector.items())


class _RegistryView(MetricsView):
    """A view over a live in-process :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry

    def series(self, metric: str, selector: Mapping[str, str]) -> List[float]:
        """Matching counter/gauge values straight from the registry."""
        values: List[float] = []
        for item in self._registry.metrics():
            if item.name != metric or isinstance(item, Histogram):
                continue
            if _matches(dict(item.labels), selector):
                values.append(float(item.value))
        return values

    def histogram(
        self, metric: str, selector: Mapping[str, str]
    ) -> Optional[Tuple[List[Tuple[float, float]], float, float]]:
        """Matching histogram series merged into one bucket set."""
        merged: Dict[float, float] = {}
        count = 0.0
        total = 0.0
        found = False
        for item in self._registry.metrics():
            if item.name != metric or not isinstance(item, Histogram):
                continue
            if not _matches(dict(item.labels), selector):
                continue
            found = True
            for bound, cumulative in item.cumulative_buckets():
                merged[bound] = merged.get(bound, 0.0) + cumulative
            count += item.count
            total += item.sum
        if not found:
            return None
        buckets = sorted(merged.items())
        return buckets, count, total


def registry_view(registry: Optional[MetricsRegistry] = None) -> MetricsView:
    """A :class:`MetricsView` over ``registry`` (default: the process one)."""
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    return _RegistryView(registry)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="([^"]*)"')


class _PromView(MetricsView):
    """A view over parsed Prometheus text exposition samples."""

    def __init__(self, samples: Dict[str, List[Tuple[Dict[str, str], float]]]):
        self._samples = samples

    def series(self, metric: str, selector: Mapping[str, str]) -> List[float]:
        """Matching scalar sample values from the parsed exposition."""
        return [
            value
            for labels, value in self._samples.get(metric, [])
            if _matches(labels, selector)
        ]

    def histogram(
        self, metric: str, selector: Mapping[str, str]
    ) -> Optional[Tuple[List[Tuple[float, float]], float, float]]:
        """Histogram rebuilt from ``_bucket``/``_sum``/``_count`` samples."""
        bucket_rows = self._samples.get(metric + "_bucket", [])
        merged: Dict[float, float] = {}
        found = False
        for labels, value in bucket_rows:
            le = labels.get("le")
            if le is None:
                continue
            rest = {k: v for k, v in labels.items() if k != "le"}
            if not _matches(rest, selector):
                continue
            found = True
            bound = float("inf") if le in ("+Inf", "inf") else float(le)
            merged[bound] = merged.get(bound, 0.0) + value
        if not found:
            return None
        count = sum(self.series(metric + "_count", selector))
        total = sum(self.series(metric + "_sum", selector))
        return sorted(merged.items()), count, total


def parse_prometheus(text: str) -> MetricsView:
    """Parse a Prometheus text exposition into a :class:`MetricsView`.

    Understands the subset :meth:`MetricsRegistry.to_prometheus` emits
    (and what real scrapes of this server produce): ``# HELP``/``# TYPE``
    comments, plain samples, and histogram ``_bucket``/``_sum``/``_count``
    rows.  Unparseable lines are skipped.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        samples.setdefault(match.group("name"), []).append((labels, value))
    return _PromView(samples)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


def _quantile(buckets: List[Tuple[float, float]], q: float) -> Optional[float]:
    """Upper-bound quantile estimate from cumulative histogram buckets."""
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    for bound, cumulative in buckets:
        if cumulative >= rank:
            return bound
    return buckets[-1][0]


def _compare(value: float, op: str, threshold: float) -> bool:
    if op == "<":
        return value < threshold
    if op == "<=":
        return value <= threshold
    if op == ">":
        return value > threshold
    if op == ">=":
        return value >= threshold
    if op == "==":
        return value == threshold
    return value != threshold


def _measure(rule: SLORule, view: MetricsView) -> Tuple[Optional[float], str]:
    """The rule's measured value, or ``(None, why)`` when absent."""
    if rule.stat in ("value", "sum", "max", "min"):
        values = view.series(rule.metric, rule.selector)
        if not values:
            return None, f"metric {rule.metric} absent"
        if rule.stat == "max":
            return max(values), ""
        if rule.stat == "min":
            return min(values), ""
        return float(sum(values)), ""
    if rule.stat == "ratio":
        assert rule.denominator is not None
        numerator = view.series(rule.metric, rule.selector)
        denominator = view.series(rule.denominator, {})
        if not numerator and not denominator:
            return None, f"metrics {rule.metric} and {rule.denominator} absent"
        num = float(sum(numerator))
        den = float(sum(denominator))
        if den == 0:
            return (0.0, "") if num == 0 else (math.inf, "zero denominator")
        return num / den, ""
    histogram = view.histogram(rule.metric, rule.selector)
    if histogram is None:
        return None, f"histogram {rule.metric} absent"
    buckets, count, total = histogram
    if rule.stat == "count":
        return float(count), ""
    if count <= 0:
        return None, f"histogram {rule.metric} has no samples"
    if rule.stat == "mean":
        return total / count, ""
    quantile = _quantile(buckets, {"p50": 0.50, "p90": 0.90, "p99": 0.99}[rule.stat])
    if quantile is None:
        return None, f"histogram {rule.metric} has no samples"
    return quantile, ""


def _evaluate_rule(rule: SLORule, view: MetricsView) -> SLOResult:
    value, why = _measure(rule, view)
    if value is None:
        if rule.absent == "skip":
            return SLOResult(rule, None, "skip", why)
        if rule.absent == "ok":
            return SLOResult(rule, None, "ok", why)
        return SLOResult(rule, None, rule.severity, why)
    if _compare(value, rule.op, rule.threshold):
        return SLOResult(rule, value, "ok")
    detail = (
        f"{rule.stat}({rule.metric}) = {value:.6g}, "
        f"violates {rule.op} {rule.threshold:g}"
    )
    return SLOResult(rule, value, rule.severity, detail)


def evaluate_pack(
    rules: Sequence[SLORule],
    view: Union[MetricsView, MetricsRegistry, None] = None,
) -> SLOReport:
    """Evaluate every rule against ``view`` and return the report.

    ``view`` may be a :class:`MetricsView`, a raw
    :class:`MetricsRegistry`, or ``None`` for the process registry.
    """
    if view is None or isinstance(view, MetricsRegistry):
        view = registry_view(view)
    return SLOReport([_evaluate_rule(rule, view) for rule in rules])


# ----------------------------------------------------------------------
# Packs: defaults plus JSON/TOML loading
# ----------------------------------------------------------------------

#: The shipped defaults: one rule per serving-stack failure mode the
#: metric catalog can already see.  All use ``absent="skip"`` so the
#: pack passes cleanly for deployments that never exercised a subsystem.
DEFAULT_PACK: Tuple[SLORule, ...] = (
    SLORule(
        name="serve_query_p99_seconds",
        metric="repro_serve_query_seconds",
        stat="p99",
        op="<=",
        threshold=0.5,
        severity="crit",
        window_seconds=300.0,
        description="99th-percentile uncached query latency stays under 500ms",
    ),
    SLORule(
        name="serve_shed_rate",
        metric="repro_resilience_shed_total",
        stat="ratio",
        denominator="repro_serve_http_requests_total",
        op="<=",
        threshold=0.05,
        severity="crit",
        window_seconds=300.0,
        description="At most 5% of HTTP requests are shed by admission control",
    ),
    SLORule(
        name="refresh_circuit_closed",
        metric="repro_resilience_circuit_state",
        selector={"circuit": "publisher.refresh"},
        stat="max",
        op="<=",
        threshold=0.0,
        severity="warn",
        window_seconds=300.0,
        description="The snapshot-refresh circuit breaker is closed (state 0)",
    ),
    SLORule(
        name="quarantine_rate",
        metric="repro_quarantined_rows_total",
        stat="ratio",
        denominator="repro_rows_ok_total",
        op="<=",
        threshold=0.05,
        severity="warn",
        window_seconds=3600.0,
        description="Quarantined rows stay under 5% of accepted rows",
    ),
    SLORule(
        name="checkpoint_age_ok",
        metric="repro_health_level",
        selector={"check": "checkpoint_age"},
        stat="max",
        op="<=",
        threshold=1.0,
        severity="warn",
        window_seconds=3600.0,
        description="Checkpoint age has not reached CRIT in the health report",
    ),
)


def default_pack() -> List[SLORule]:
    """A fresh mutable copy of :data:`DEFAULT_PACK`."""
    return list(DEFAULT_PACK)


def _rules_from_document(document: Any, source: str) -> List[SLORule]:
    if isinstance(document, Mapping):
        rows = document.get("rules", document.get("rule"))
        if rows is None:
            raise ValueError(f"{source}: pack has no 'rules' list")
    else:
        rows = document
    if not isinstance(rows, (list, tuple)):
        raise ValueError(f"{source}: 'rules' must be a list of rule tables")
    return [SLORule.from_dict(row) for row in rows]


def load_pack(path: Union[str, Path]) -> List[SLORule]:
    """Load a rule pack from a ``.json`` or ``.toml`` file.

    JSON packs are either a bare list of rule objects or
    ``{"rules": [...]}``.  TOML packs use ``[[rules]]`` tables and need
    Python 3.11+ (stdlib ``tomllib``); on older interpreters the error
    says to use the JSON form instead.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:
            raise ValueError(
                f"{path}: TOML rule packs need Python 3.11+ (tomllib); "
                f"convert the pack to JSON for older interpreters"
            ) from None
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ValueError(f"{path}: invalid TOML: {error}") from error
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: invalid JSON: {error}") from error
    return _rules_from_document(document, str(path))
