"""Structured JSONL logging — the third pillar of ``repro.obs``.

Every record is one JSON object on one line: timestamp, level, event
name, the ambient ``trace_id``/``span_id`` (stamped automatically from
:mod:`repro.obs.context` and the open span stack), and whatever
key/value fields the call site attached::

    from repro.obs import log

    log.info("serve.access", route="/query", status=200, seconds=0.004)

Design rules, shared with trace/metrics:

* **No-op when disabled.**  The module-level emitters (:func:`event`,
  :func:`debug`, :func:`info`, :func:`warn`, :func:`error`) cost one
  boolean check until :func:`enable_logging` is called — the hot-path
  benchmark gates this below 2% alongside spans and counters.
* **Bounded, never blocking.**  Records land in a ring buffer of
  ``capacity`` records; overflow evicts the oldest and counts it in
  :attr:`StructuredLogger.n_dropped` rather than growing without bound
  or stalling the caller.  A failing sink (full disk, closed pipe)
  likewise counts :attr:`StructuredLogger.n_sink_errors` and keeps
  going — logging must never take the pipeline down.
* **Torn-line free.**  Each record is serialized once and written to the
  sink as a single ``write`` under one lock, so concurrent threads can
  hammer the same file and every line stays valid JSON (asserted by
  ``tests/obs/test_log.py``).
* **Worker shipping.**  ``ProcessPoolBackend`` workers buffer records
  sink-less and export them with :meth:`StructuredLogger.export_records`;
  the coordinator folds them home with :meth:`StructuredLogger.ingest`,
  exactly like span/metric snapshots.

Sinks: ``None`` (buffer only), a stream (``sys.stderr``), or a file
path opened in append mode.  Lines are written eagerly and flushed per
record, so ``tail -f`` and post-crash inspection both work.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, TextIO, Union

from repro.obs import context as _context
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "DEBUG",
    "INFO",
    "WARN",
    "ERROR",
    "StructuredLogger",
    "parse_level",
    "level_name",
    "get_logger",
    "enable_logging",
    "disable_logging",
    "logging_enabled",
    "event",
    "debug",
    "info",
    "warn",
    "error",
]

DEBUG = 10
INFO = 20
WARN = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARN: "warn", ERROR: "error"}
_NAME_LEVELS = {name: value for value, name in _LEVEL_NAMES.items()}
_NAME_LEVELS["warning"] = WARN

#: Default ring-buffer capacity (records kept in memory for export and
#: for the flight recorder's postmortem window).
DEFAULT_CAPACITY = 4096

#: Set by :mod:`repro.obs.flight` when the flight recorder is enabled;
#: called with each emitted record dict.
_flight_hook = None


def parse_level(value: Union[int, str]) -> int:
    """Normalize a level given as an int or a name ("info", "WARN", ...)."""
    if isinstance(value, int):
        return value
    level = _NAME_LEVELS.get(value.strip().lower())
    if level is None:
        raise ValueError(
            f"unknown log level {value!r} (expected one of "
            f"{', '.join(sorted(_NAME_LEVELS))})"
        )
    return level


def level_name(level: int) -> str:
    """The canonical name of a numeric level (falls back to the number)."""
    return _LEVEL_NAMES.get(level, str(level))


class StructuredLogger:
    """Leveled JSONL logger with a bounded buffer and an optional sink.

    Thread-safe: one lock guards the buffer, the counters and the sink
    write, so a record is serialized and written atomically — concurrent
    emitters can never interleave partial lines.
    """

    def __init__(
        self,
        level: Union[int, str] = INFO,
        capacity: int = DEFAULT_CAPACITY,
        stream: Optional[TextIO] = None,
        path: Optional[Union[str, Path]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if stream is not None and path is not None:
            raise ValueError("give a stream or a path, not both")
        self.level = parse_level(level)
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._stream: Optional[TextIO] = stream
        self._owns_stream = False
        if self.path is not None:
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        # Notified on every append so tests can wait for records written
        # by other threads (e.g. an HTTP handler's access record, emitted
        # after the response bytes go out) without polling.
        self._changed = threading.Condition(self._lock)
        self.n_emitted = 0
        self.n_dropped = 0
        self.n_sink_errors = 0

    # -- emission -------------------------------------------------------

    def event(self, name: str, level: int = INFO, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit one record (or return ``None`` when below the level).

        The record carries ``ts`` (epoch seconds), ``level``, ``event``,
        the ambient ``trace_id``/``span_id`` when present, and
        ``fields``.  Returns the record dict (handy in tests).
        """
        if level < self.level:
            return None
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level_name(level),
            "event": name,
        }
        trace_id = _trace.current_trace_id()
        if trace_id:
            record["trace_id"] = trace_id
        span_id = _trace.current_span_id()
        if span_id:
            record["span_id"] = span_id
        ambient = _context.current()
        if ambient is not None and ambient.request_id is not None:
            record["request_id"] = ambient.request_id
        for key, value in fields.items():
            record[key] = value
        line = json.dumps(record, default=str, separators=(",", ":")) + "\n"
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.n_dropped += 1
            self._buffer.append(record)
            self.n_emitted += 1
            if self._stream is not None:
                try:
                    self._stream.write(line)
                    self._stream.flush()
                except (OSError, ValueError):
                    self.n_sink_errors += 1
            self._changed.notify_all()
        if _metrics.metrics_enabled():
            # Registry access bypasses the module helper on purpose: the
            # flight recorder already sees the log record itself, so the
            # bookkeeping counter must not echo back as a metric delta.
            _metrics.get_registry().counter(
                "repro_log_records_total",
                "Structured log records emitted",
                level=level_name(level),
            ).inc()
        hook = _flight_hook
        if hook is not None:
            hook(record)
        return record

    def debug(self, name: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit at DEBUG."""
        return self.event(name, DEBUG, **fields)

    def info(self, name: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit at INFO."""
        return self.event(name, INFO, **fields)

    def warn(self, name: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit at WARN."""
        return self.event(name, WARN, **fields)

    def error(self, name: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit at ERROR."""
        return self.event(name, ERROR, **fields)

    # -- inspection / shipping ------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Buffered records, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._buffer)

    def export_records(self) -> List[Dict[str, Any]]:
        """Picklable dump of the buffer — the worker-to-coordinator wire."""
        return self.records()

    def ingest(self, records: List[Mapping[str, Any]]) -> int:
        """Fold foreign (worker-exported) records into buffer and sink.

        Records keep their original timestamps and ids; they are
        re-serialized and written to this logger's sink so a file sink
        sees worker lines too.  Returns the number ingested.
        """
        count = 0
        for row in records:
            record = dict(row)
            line = json.dumps(record, default=str, separators=(",", ":")) + "\n"
            with self._lock:
                if len(self._buffer) == self.capacity:
                    self.n_dropped += 1
                self._buffer.append(record)
                self.n_emitted += 1
                if self._stream is not None:
                    try:
                        self._stream.write(line)
                        self._stream.flush()
                    except (OSError, ValueError):
                        self.n_sink_errors += 1
                self._changed.notify_all()
            hook = _flight_hook
            if hook is not None:
                hook(record)
            count += 1
        return count

    def wait_for(self, predicate, timeout: float = 5.0) -> bool:
        """Block until ``predicate(records)`` is true; ``False`` on timeout.

        Event-based (condition variable, no polling): re-evaluated on
        every emitted or ingested record.  Lets a test synchronize with a
        record another thread writes *after* its observable side effect —
        e.g. the HTTP access record, emitted once the response has been
        sent.
        """
        with self._changed:
            return self._changed.wait_for(
                lambda: predicate(list(self._buffer)), timeout=timeout
            )

    def clear(self) -> None:
        """Drop buffered records and reset every counter."""
        with self._lock:
            self._buffer.clear()
            self.n_emitted = 0
            self.n_dropped = 0
            self.n_sink_errors = 0

    def close(self) -> None:
        """Close a file sink this logger opened (streams are left alone)."""
        with self._lock:
            if self._owns_stream and self._stream is not None:
                try:
                    self._stream.close()
                except OSError:
                    pass
            if self._owns_stream:
                self._stream = None

    def to_jsonl(self) -> str:
        """The buffered records as JSONL text (one object per line)."""
        out = io.StringIO()
        for record in self.records():
            out.write(json.dumps(record, default=str, separators=(",", ":")))
            out.write("\n")
        return out.getvalue()


_enabled = False
_logger = StructuredLogger()


def logging_enabled() -> bool:
    """Whether the module-level emitters currently record anything."""
    return _enabled


def enable_logging(
    level: Union[int, str, None] = None,
    path: Optional[Union[str, Path]] = None,
    stream: Optional[TextIO] = None,
    capacity: Optional[int] = None,
) -> StructuredLogger:
    """Turn structured logging on; returns the active logger.

    With any argument given the process logger is replaced by a fresh
    one (closing a previous file sink); with none, the existing logger
    is kept and simply switched on.  ``path="stderr"`` or ``path="-"``
    are accepted as aliases for the stderr stream, mirroring the CLI's
    ``--log`` flag.
    """
    global _enabled, _logger
    if level is not None or path is not None or stream is not None or capacity is not None:
        if isinstance(path, str) and path in ("stderr", "-"):
            path, stream = None, sys.stderr
        _logger.close()
        _logger = StructuredLogger(
            level=INFO if level is None else level,
            capacity=DEFAULT_CAPACITY if capacity is None else capacity,
            stream=stream,
            path=path,
        )
    _enabled = True
    return _logger


def disable_logging() -> None:
    """Turn structured logging off (buffered records are kept)."""
    global _enabled
    _enabled = False


def get_logger() -> StructuredLogger:
    """The process-wide logger (valid whether or not logging is enabled)."""
    return _logger


def event(name: str, level: int = INFO, **fields: Any) -> None:
    """Emit one structured record — no-op while logging is disabled."""
    if not _enabled:
        return
    _logger.event(name, level, **fields)


def debug(name: str, **fields: Any) -> None:
    """Emit at DEBUG — no-op while logging is disabled."""
    if not _enabled:
        return
    _logger.event(name, DEBUG, **fields)


def info(name: str, **fields: Any) -> None:
    """Emit at INFO — no-op while logging is disabled."""
    if not _enabled:
        return
    _logger.event(name, INFO, **fields)


def warn(name: str, **fields: Any) -> None:
    """Emit at WARN — no-op while logging is disabled."""
    if not _enabled:
        return
    _logger.event(name, WARN, **fields)


def error(name: str, **fields: Any) -> None:
    """Emit at ERROR — no-op while logging is disabled."""
    if not _enabled:
        return
    _logger.event(name, ERROR, **fields)
