"""Flight recorder: a crash-proof window of recent activity + postmortems.

A :class:`FlightRecorder` keeps a lock-cheap ring buffer of the last N
observability events — structured log records, span closes and metric
deltas — regardless of whether any sink or exporter is configured.  When
something dies (unhandled exception, fault-injection trip, SIGTERM, or
an explicit call) :meth:`FlightRecorder.dump` freezes that window into a
single *postmortem bundle*: a ``.tar.gz`` containing

==================  ====================================================
``events.jsonl``    the ring buffer, oldest first, one JSON event/line
``metrics.prom``    the full Prometheus exposition at dump time
``health.json``     the health report rows, when the caller has one
``config.json``     run configuration (CLI args, server policy, ...)
``meta.json``       reason, timestamps, platform/python/numpy versions,
                    git SHA, pid, drop counters
==================  ====================================================

Enabling the recorder (:func:`enable_flight`) installs cheap hooks into
the tracer, the metrics emission helpers and the structured logger, so
instrumented code needs no changes; disabling uninstalls them.  Each
hook is one global read when the recorder is off and one deque append
under a lock when it is on.

Dump sites are wired into ``guarded_mine``, ``ParallelDARMiner``,
``RuleServer.shutdown``, fault-injection trips and the CLI's top-level
error handler; :func:`dump_on_error` tags the exception object so a
failure that bubbles through several of those layers produces exactly
one bundle.
"""

from __future__ import annotations

import io
import json
import os
import platform
import subprocess
import tarfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs import log as _log
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "flight_enabled",
    "get_flight",
    "record",
    "dump",
    "dump_on_error",
    "build_metadata",
]

#: Default ring capacity: the postmortem window, in events.
DEFAULT_CAPACITY = 4096

#: Attribute set on exception objects once a bundle has been written for
#: them, so nested dump hooks do not produce duplicate bundles.
_DUMPED_FLAG = "_repro_flight_dumped"


def _git_sha() -> str:
    """The repository HEAD SHA, or "unknown" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def build_metadata() -> Dict[str, str]:
    """Build-identity labels: version, git SHA, python, numpy.

    Shared by the ``repro_build_info`` gauge and every bundle's
    ``meta.json``, so a scrape and a postmortem identify the same build.
    """
    import numpy

    import repro

    return {
        "version": repro.__version__,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


class FlightRecorder:
    """Bounded ring of recent obs events plus the postmortem writer."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[Union[str, Path]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else Path(".")
        self.config: Dict[str, Any] = {}
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dump_lock = threading.Lock()
        self.n_recorded = 0
        self.n_dropped = 0
        self.n_dumps = 0

    # -- recording ------------------------------------------------------

    def record(self, kind: str, data: Mapping[str, Any]) -> None:
        """Append one event to the ring (evicting the oldest when full)."""
        entry = {"ts": time.time(), "kind": kind, "data": dict(data)}
        with self._lock:
            if len(self._events) == self.capacity:
                self.n_dropped += 1
            self._events.append(entry)
            self.n_recorded += 1

    def events(self) -> List[Dict[str, Any]]:
        """Ring contents, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Empty the ring and reset the counters."""
        with self._lock:
            self._events.clear()
            self.n_recorded = 0
            self.n_dropped = 0

    # -- hooks installed into the other obs layers ----------------------

    def _on_log(self, record_dict: Mapping[str, Any]) -> None:
        self.record("log", record_dict)

    def _on_span(self, span) -> None:
        self.record(
            "span",
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "seconds": span.seconds,
                "attributes": dict(span.attributes),
            },
        )

    def _on_metric(self, kind: str, name: str, value, labels: Mapping[str, str]) -> None:
        self.record(
            "metric",
            {"metric": name, "op": kind, "value": value, "labels": dict(labels)},
        )

    # -- postmortem bundles ---------------------------------------------

    def dump(
        self,
        reason: str,
        *,
        directory: Optional[Union[str, Path]] = None,
        health: Optional[Mapping[str, Any]] = None,
        config: Optional[Mapping[str, Any]] = None,
        error: Optional[BaseException] = None,
    ) -> Path:
        """Write one postmortem bundle; returns the ``.tar.gz`` path.

        ``reason`` is slugged into the file name.  ``health`` and
        ``config`` override/extend what the recorder already knows; the
        events, metrics and metadata members are always present.  The
        bundle is written to a temp file and atomically renamed, so a
        crash mid-dump never leaves a half-written archive behind.
        """
        with self._dump_lock:
            out_dir = Path(directory) if directory is not None else self.directory
            out_dir.mkdir(parents=True, exist_ok=True)
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
            ).strip("-") or "dump"
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
            base = f"postmortem-{stamp}-{slug}-{os.getpid()}"
            path = out_dir / f"{base}.tar.gz"
            serial = 0
            while path.exists():
                serial += 1
                path = out_dir / f"{base}.{serial}.tar.gz"

            events_text = "".join(
                json.dumps(entry, default=str, separators=(",", ":")) + "\n"
                for entry in self.events()
            )
            metrics_text = _metrics.get_registry().to_prometheus()
            meta: Dict[str, Any] = {
                "reason": reason,
                "created_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
                "pid": os.getpid(),
                "platform": platform.platform(),
                "n_events": self.n_recorded,
                "n_ring_dropped": self.n_dropped,
                "log_dropped": _log.get_logger().n_dropped,
                "span_dropped": _trace.get_tracer().n_dropped,
            }
            meta.update(build_metadata())
            if error is not None:
                meta["error"] = f"{type(error).__name__}: {error}"
            merged_config = dict(self.config)
            if config:
                merged_config.update(config)

            members = [
                ("events.jsonl", events_text),
                ("metrics.prom", metrics_text),
                ("health.json", json.dumps(dict(health or {}), indent=2, default=str)),
                ("config.json", json.dumps(merged_config, indent=2, default=str)),
                ("meta.json", json.dumps(meta, indent=2, default=str)),
            ]
            tmp = path.with_suffix(".tmp")
            with tarfile.open(tmp, "w:gz") as archive:
                for name, text in members:
                    payload = text.encode("utf-8")
                    info = tarfile.TarInfo(name=name)
                    info.size = len(payload)
                    info.mtime = int(time.time())
                    archive.addfile(info, io.BytesIO(payload))
            os.replace(tmp, path)
            self.n_dumps += 1
        _metrics.inc(
            "repro_postmortem_dumps_total",
            help="Postmortem bundles written by the flight recorder",
            reason=slug,
        )
        return path


_enabled = False
_recorder = FlightRecorder()


def flight_enabled() -> bool:
    """Whether the flight recorder is currently capturing events."""
    return _enabled


def enable_flight(
    directory: Optional[Union[str, Path]] = None,
    capacity: Optional[int] = None,
    config: Optional[Mapping[str, Any]] = None,
) -> FlightRecorder:
    """Turn the flight recorder on; returns the active recorder.

    ``capacity`` (when given) replaces the recorder with a fresh ring of
    that size; ``directory`` sets where bundles land; ``config`` is
    stored and included in every bundle's ``config.json``.  Enabling
    installs the capture hooks into the tracer, the metric emission
    helpers and the structured logger.
    """
    global _enabled, _recorder
    if capacity is not None:
        _recorder = FlightRecorder(capacity=capacity)
    if directory is not None:
        _recorder.directory = Path(directory)
    if config is not None:
        _recorder.config = dict(config)
    _trace._flight_hook = _recorder._on_span
    _metrics._flight_hook = _recorder._on_metric
    _log._flight_hook = _recorder._on_log
    _enabled = True
    return _recorder


def disable_flight() -> None:
    """Turn the flight recorder off and uninstall its capture hooks."""
    global _enabled
    _trace._flight_hook = None
    _metrics._flight_hook = None
    _log._flight_hook = None
    _enabled = False


def get_flight() -> FlightRecorder:
    """The process-wide recorder (valid whether or not it is enabled)."""
    return _recorder


def record(kind: str, **data: Any) -> None:
    """Append one ad-hoc event to the ring — no-op while disabled."""
    if not _enabled:
        return
    _recorder.record(kind, data)


def dump(reason: str, **kwargs: Any) -> Optional[Path]:
    """Write a bundle now; returns its path, or ``None`` while disabled."""
    if not _enabled:
        return None
    return _recorder.dump(reason, **kwargs)


def dump_on_error(reason: str, error: BaseException, **kwargs: Any) -> Optional[Path]:
    """Write a bundle for ``error`` exactly once across nested handlers.

    The first handler to see the exception writes the bundle and tags
    the object; later handlers up the stack (the guard ladder, then the
    CLI) see the tag and skip.  Returns the bundle path, or ``None``
    when disabled, already dumped, or the dump itself failed (a broken
    postmortem path must never mask the original error).
    """
    if not _enabled:
        return None
    if getattr(error, _DUMPED_FLAG, False):
        return None
    try:
        setattr(error, _DUMPED_FLAG, True)
    except AttributeError:
        pass
    try:
        return _recorder.dump(reason, error=error, **kwargs)
    except OSError:
        return None
