"""repro.obs — zero-dependency observability: tracing, metrics, profiling.

Three independent, individually-switchable layers, all off by default and
all designed so the *disabled* cost at an instrumentation site is a
single boolean check (gated below 2% of the hot-path benchmarks by
``benchmarks/test_perf_obs_overhead.py``):

* :mod:`repro.obs.trace` — hierarchical spans over the pipeline stages
  (``phase1.insert_batch``, ``phase2.graph``, ``checkpoint.save``, ...)
  recorded to a ring buffer, exportable as JSONL or Chrome
  ``chrome://tracing`` trace-event JSON.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (rows ingested, splits, rebuilds, quarantined rows,
  clique counts, checkpoint bytes/seconds, ...), renderable as a
  Prometheus text exposition or a human table.
* :mod:`repro.obs.profile` — opt-in allocation and call-count sampling
  of the numpy kernels (batch insert, Phase II distances).

Quickstart::

    from repro import obs

    obs.enable()                       # tracing + metrics
    result = repro.mine(relation)
    print(obs.get_registry().to_table())
    obs.get_tracer().to_chrome("trace.json")   # open in chrome://tracing
    obs.disable()

The CLI exposes the same switches: ``repro mine data.csv --trace
trace.json --metrics --profile``.  See ``docs/OBSERVABILITY.md`` for the
span taxonomy and the full metric catalog.
"""

from __future__ import annotations

from repro.obs.context import (
    RequestContext,
    activate,
    bind,
    current,
    new_trace_id,
)
from repro.obs.flight import (
    FlightRecorder,
    build_metadata,
    disable_flight,
    dump,
    dump_on_error,
    enable_flight,
    flight_enabled,
    get_flight,
)
from repro.obs.log import (
    StructuredLogger,
    debug,
    disable_logging,
    enable_logging,
    error,
    event,
    get_logger,
    info,
    logging_enabled,
    warn,
)
from repro.obs.slo import (
    DEFAULT_PACK,
    SLOReport,
    SLOResult,
    SLORule,
    default_pack,
    evaluate_pack,
    load_pack,
    parse_prometheus,
    registry_view,
)
from repro.obs.bench import (
    BenchRecord,
    BenchRun,
    append_record,
    load_trajectory,
    run_scenario,
)
from repro.obs.health import (
    HealthCheck,
    HealthMonitor,
    HealthReport,
    HealthThresholds,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
)
from repro.obs.profile import (
    StageProfile,
    disable_profiling,
    enable_profiling,
    profile_report,
    profiled,
    profiles,
    profiling_enabled,
    reset_profiles,
)
from repro.obs.regress import (
    Comparison,
    RegressionPolicy,
    compare_all,
    compare_scenario,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_span_id,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "publish_build_info",
    # benchmark telemetry
    "BenchRecord",
    "BenchRun",
    "append_record",
    "load_trajectory",
    "run_scenario",
    # regression gates
    "Comparison",
    "RegressionPolicy",
    "compare_all",
    "compare_scenario",
    # health
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    # trace
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
    # profiling
    "StageProfile",
    "profiled",
    "profiles",
    "profile_report",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profiles",
    # context / correlation
    "RequestContext",
    "new_trace_id",
    "current",
    "activate",
    "bind",
    "current_span_id",
    "current_trace_id",
    # structured logging
    "StructuredLogger",
    "get_logger",
    "enable_logging",
    "disable_logging",
    "logging_enabled",
    "event",
    "debug",
    "info",
    "warn",
    "error",
    # flight recorder / postmortems
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "flight_enabled",
    "get_flight",
    "dump",
    "dump_on_error",
    "build_metadata",
    # SLO rules
    "SLORule",
    "SLOResult",
    "SLOReport",
    "DEFAULT_PACK",
    "default_pack",
    "evaluate_pack",
    "load_pack",
    "parse_prometheus",
    "registry_view",
]


def publish_build_info() -> None:
    """Register the ``repro_build_info`` gauge (value 1, identity labels).

    Labels carry the package version, git SHA, python and numpy
    versions, so every ``/metrics`` scrape and postmortem bundle says
    exactly which build produced it.  No-op while metrics are disabled.
    """
    if not metrics_enabled():
        return
    get_registry().gauge(
        "repro_build_info",
        "Build identity (constant 1; the labels are the payload)",
        **build_metadata(),
    ).set(1)


def enable(
    *,
    trace: bool = True,
    metrics: bool = True,
    profile: bool = False,
    log: bool = False,
) -> None:
    """Switch observability layers on (tracing and metrics by default).

    Profiling is a separate opt-in because its samplers (tracemalloc,
    ``sys.setprofile``) carry real overhead; tracing and metrics are
    cheap enough to leave on for whole production mines.  ``log=True``
    turns on the structured logger with its current sink configuration
    (use :func:`enable_logging` directly to pick a level or sink).
    Enabling metrics also registers the ``repro_build_info`` gauge.
    """
    if trace:
        enable_tracing()
    if metrics:
        enable_metrics()
        publish_build_info()
    if profile:
        enable_profiling()
    if log:
        enable_logging()


def disable() -> None:
    """Switch every observability layer off (recorded data is kept)."""
    disable_tracing()
    disable_metrics()
    disable_profiling()
    disable_logging()


def enabled() -> bool:
    """Whether any observability layer is currently recording."""
    return (
        tracing_enabled()
        or metrics_enabled()
        or profiling_enabled()
        or logging_enabled()
    )
