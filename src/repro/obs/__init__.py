"""repro.obs — zero-dependency observability: tracing, metrics, profiling.

Three independent, individually-switchable layers, all off by default and
all designed so the *disabled* cost at an instrumentation site is a
single boolean check (gated below 2% of the hot-path benchmarks by
``benchmarks/test_perf_obs_overhead.py``):

* :mod:`repro.obs.trace` — hierarchical spans over the pipeline stages
  (``phase1.insert_batch``, ``phase2.graph``, ``checkpoint.save``, ...)
  recorded to a ring buffer, exportable as JSONL or Chrome
  ``chrome://tracing`` trace-event JSON.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (rows ingested, splits, rebuilds, quarantined rows,
  clique counts, checkpoint bytes/seconds, ...), renderable as a
  Prometheus text exposition or a human table.
* :mod:`repro.obs.profile` — opt-in allocation and call-count sampling
  of the numpy kernels (batch insert, Phase II distances).

Quickstart::

    from repro import obs

    obs.enable()                       # tracing + metrics
    result = repro.mine(relation)
    print(obs.get_registry().to_table())
    obs.get_tracer().to_chrome("trace.json")   # open in chrome://tracing
    obs.disable()

The CLI exposes the same switches: ``repro mine data.csv --trace
trace.json --metrics --profile``.  See ``docs/OBSERVABILITY.md`` for the
span taxonomy and the full metric catalog.
"""

from __future__ import annotations

from repro.obs.bench import (
    BenchRecord,
    BenchRun,
    append_record,
    load_trajectory,
    run_scenario,
)
from repro.obs.health import (
    HealthCheck,
    HealthMonitor,
    HealthReport,
    HealthThresholds,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
)
from repro.obs.profile import (
    StageProfile,
    disable_profiling,
    enable_profiling,
    profile_report,
    profiled,
    profiles,
    profiling_enabled,
    reset_profiles,
)
from repro.obs.regress import (
    Comparison,
    RegressionPolicy,
    compare_all,
    compare_scenario,
)
from repro.obs.trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    # benchmark telemetry
    "BenchRecord",
    "BenchRun",
    "append_record",
    "load_trajectory",
    "run_scenario",
    # regression gates
    "Comparison",
    "RegressionPolicy",
    "compare_all",
    "compare_scenario",
    # health
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    # trace
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
    # profiling
    "StageProfile",
    "profiled",
    "profiles",
    "profile_report",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profiles",
]


def enable(*, trace: bool = True, metrics: bool = True, profile: bool = False) -> None:
    """Switch observability layers on (tracing and metrics by default).

    Profiling is a separate opt-in because its samplers (tracemalloc,
    ``sys.setprofile``) carry real overhead; tracing and metrics are
    cheap enough to leave on for whole production mines.
    """
    if trace:
        enable_tracing()
    if metrics:
        enable_metrics()
    if profile:
        enable_profiling()


def disable() -> None:
    """Switch every observability layer off (recorded data is kept)."""
    disable_tracing()
    disable_metrics()
    disable_profiling()


def enabled() -> bool:
    """Whether any observability layer is currently recording."""
    return tracing_enabled() or metrics_enabled() or profiling_enabled()
