"""Streaming tree-health monitoring with thresholded WARN/CRIT status.

A long-running :class:`~repro.core.streaming.StreamingDARMiner` can decay
in ways no single exception reports: summaries ballooning past the point
where Phase II stays cheap, repeated memory-pressure rebuilds coarsening
the density threshold until clusters smear together, a quarantine rate
creeping toward the error budget, or a checkpoint that has silently not
been written for an hour.  This module turns those slow failures into a
green/amber/red answer.

:class:`HealthMonitor` evaluates raw readings against
:class:`HealthThresholds` and produces a :class:`HealthReport` — a list
of named :class:`HealthCheck` rows, each ``ok`` / ``warn`` / ``crit``,
plus the worst overall status.  ``StreamingDARMiner.health()`` feeds it
the live tree state; the CLI surfaces the report under ``--stats`` and
the HTML dashboard (:mod:`repro.report.dashboard`) renders it as the
status banner.  When metrics are enabled the report also publishes
``repro_health_level{check=...}`` gauges (0=ok, 1=warn, 2=crit) so a
scraper can alert on the same signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs import metrics as obs_metrics

__all__ = [
    "OK",
    "WARN",
    "CRIT",
    "HealthThresholds",
    "HealthCheck",
    "HealthReport",
    "HealthMonitor",
]

#: Status labels, ordered by severity (their index is the gauge level).
OK = "ok"
WARN = "warn"
CRIT = "crit"

_LEVELS = {OK: 0, WARN: 1, CRIT: 2}


@dataclass(frozen=True)
class HealthThresholds:
    """WARN/CRIT trip points for every monitored signal.

    Defaults suit the library's own workloads: trees under memory budgets
    hold hundreds-to-thousands of leaf entries, the quarantine bands
    match the CLI's default 5% error budget, and the checkpoint-age bands
    assume a checkpoint cadence of minutes, not hours.
    """

    leaf_entries_warn: int = 10_000
    leaf_entries_crit: int = 50_000
    threshold_inflation_warn: float = 4.0
    threshold_inflation_crit: float = 32.0
    rebuilds_warn: int = 5
    rebuilds_crit: int = 25
    quarantine_rate_warn: float = 0.01
    quarantine_rate_crit: float = 0.05
    checkpoint_age_warn_seconds: float = 300.0
    checkpoint_age_crit_seconds: float = 1800.0


@dataclass(frozen=True)
class HealthCheck:
    """One named signal's reading and classification."""

    name: str
    status: str
    value: float
    detail: str = ""

    @property
    def level(self) -> int:
        """Numeric severity: 0=ok, 1=warn, 2=crit (the exported gauge)."""
        return _LEVELS[self.status]

    def describe(self) -> str:
        """One report line, e.g. ``quarantine_rate: WARN (0.02) ...``."""
        text = f"{self.name}: {self.status.upper()} ({self.value:.6g})"
        return f"{text} — {self.detail}" if self.detail else text


@dataclass
class HealthReport:
    """All checks from one evaluation, plus the worst overall status."""

    checks: List[HealthCheck] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Worst status across checks (``ok`` for an empty report)."""
        worst = OK
        for check in self.checks:
            if check.level > _LEVELS[worst]:
                worst = check.status
        return worst

    @property
    def problems(self) -> List[HealthCheck]:
        """The non-``ok`` checks, worst first."""
        flagged = [c for c in self.checks if c.status != OK]
        return sorted(flagged, key=lambda c: -c.level)

    def describe(self) -> str:
        """Multi-line report: overall status, then one line per check."""
        lines = [f"health: {self.status.upper()}"]
        lines.extend(f"  {check.describe()}" for check in self.checks)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Plain built-ins for JSON export and the dashboard."""
        return {
            "status": self.status,
            "checks": [
                {
                    "name": c.name,
                    "status": c.status,
                    "level": c.level,
                    "value": c.value,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }

    def publish(self) -> None:
        """Export every check as a ``repro_health_level{check=}`` gauge.

        No-op while metrics are disabled, like every emission helper.
        """
        for check in self.checks:
            obs_metrics.set_gauge(
                "repro_health_level",
                check.level,
                help="Health check severity (0=ok, 1=warn, 2=crit)",
                check=check.name,
            )
        worst = self.status
        obs_metrics.set_gauge(
            "repro_health_worst_level",
            _LEVELS[worst],
            help="Worst health check severity (0=ok, 1=warn, 2=crit)",
        )


class HealthMonitor:
    """Classifies raw streaming readings against :class:`HealthThresholds`.

    Stateless apart from its thresholds — callers gather the readings
    (see :meth:`repro.core.streaming.StreamingDARMiner.health`) and this
    object only decides what they mean, so it is trivially testable and
    reusable for non-streaming drivers.
    """

    def __init__(self, thresholds: Optional[HealthThresholds] = None):
        self.thresholds = thresholds or HealthThresholds()

    @staticmethod
    def _grade(value: float, warn: float, crit: float) -> str:
        if value >= crit:
            return CRIT
        if value >= warn:
            return WARN
        return OK

    def evaluate(
        self,
        *,
        leaf_entries: Mapping[str, int],
        threshold_inflation: Optional[Mapping[str, float]] = None,
        rebuilds: Optional[Mapping[str, int]] = None,
        rows_seen: int = 0,
        rows_quarantined: int = 0,
        checkpoint_age_seconds: Optional[float] = None,
        checkpointing: bool = False,
    ) -> HealthReport:
        """Build a :class:`HealthReport` from raw per-partition readings.

        ``threshold_inflation`` is each tree's current density threshold
        divided by its initial one (1.0 = never escalated);
        ``checkpoint_age_seconds`` is seconds since the last successful
        checkpoint, meaningful only when ``checkpointing`` is on — a run
        that never checkpoints skips that check instead of paging anyone.
        """
        t = self.thresholds
        report = HealthReport()

        total_entries = sum(leaf_entries.values())
        busiest = max(leaf_entries, key=leaf_entries.get) if leaf_entries else ""
        report.checks.append(
            HealthCheck(
                "leaf_entries",
                self._grade(total_entries, t.leaf_entries_warn, t.leaf_entries_crit),
                float(total_entries),
                f"largest partition: {busiest} "
                f"({leaf_entries.get(busiest, 0)} entries)" if busiest else "",
            )
        )

        inflation = dict(threshold_inflation or {})
        worst_inflation = max(inflation.values(), default=1.0)
        report.checks.append(
            HealthCheck(
                "threshold_escalation",
                self._grade(
                    worst_inflation,
                    t.threshold_inflation_warn,
                    t.threshold_inflation_crit,
                ),
                float(worst_inflation),
                "density threshold inflation vs the first batch "
                "(memory-pressure rebuilds coarsen summaries)",
            )
        )

        n_rebuilds = sum((rebuilds or {}).values())
        report.checks.append(
            HealthCheck(
                "rebuilds",
                self._grade(n_rebuilds, t.rebuilds_warn, t.rebuilds_crit),
                float(n_rebuilds),
                "tree rebuilds across partitions",
            )
        )

        rate = rows_quarantined / rows_seen if rows_seen else 0.0
        report.checks.append(
            HealthCheck(
                "quarantine_rate",
                self._grade(rate, t.quarantine_rate_warn, t.quarantine_rate_crit),
                rate,
                f"{rows_quarantined} of {rows_seen} rows quarantined",
            )
        )

        if checkpointing:
            age = checkpoint_age_seconds if checkpoint_age_seconds is not None else 0.0
            report.checks.append(
                HealthCheck(
                    "checkpoint_age",
                    self._grade(
                        age,
                        t.checkpoint_age_warn_seconds,
                        t.checkpoint_age_crit_seconds,
                    ),
                    age,
                    "seconds since the last successful checkpoint",
                )
            )
        return report
