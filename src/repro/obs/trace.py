"""Hierarchical span tracing with zero-cost disabled mode.

A *span* is one timed region of the pipeline — ``phase1.insert_batch``,
``phase2.graph``, ``checkpoint.save`` — with a wall-clock interval, a
parent (the span that was open on the same thread when it started), and a
free-form attribute dict for counters the region wants to attach.  Spans
record into an in-memory ring buffer owned by a :class:`Tracer`; nothing
is ever written to disk unless an exporter is called.

Usage at an instrumentation site::

    from repro.obs.trace import span

    with span("phase1.insert_batch", size=batch.size) as sp:
        ...                     # the timed work
        sp.set("absorbed", n)   # attach counters discovered along the way

When tracing is disabled (the default) ``span()`` returns a shared no-op
context manager: no object allocation beyond the argument dict, no
timestamps, no locking.  The hot paths are instrumented at batch/stage
granularity precisely so this check is the *only* disabled-mode cost —
``benchmarks/test_perf_obs_overhead.py`` gates it below 2% of the
workloads it rides on.

Exporters: :meth:`Tracer.to_jsonl` (one JSON object per finished span)
and :meth:`Tracer.to_chrome` (the Chrome ``chrome://tracing`` /
Perfetto trace-event format, complete ``"X"`` events).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import context as _context

__all__ = [
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span_id",
    "current_trace_id",
]

#: Set by :mod:`repro.obs.flight` when the flight recorder is enabled;
#: called with each finished :class:`Span`.  ``None`` costs one global
#: read per span close.
_flight_hook = None

#: Default ring-buffer capacity: old spans are dropped once this many
#: finished spans are held.  Generous for whole mines (a streaming run
#: emits a handful of spans per batch), tiny in memory (~1KB/span).
DEFAULT_CAPACITY = 65_536


class Span:
    """One finished (or in-flight) traced region.

    ``start``/``end`` are :func:`time.perf_counter` values; ``end`` is 0.0
    while the span is still open.  ``parent_id`` is 0 for root spans.
    ``trace_id`` is the ambient request/trace id captured at start time
    ("" when no context was active) — stable across export and
    :meth:`Tracer.ingest`, unlike span ids which are per-tracer.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "thread_id", "start", "end",
        "attributes", "trace_id",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int,
        thread_id: int,
        start: float,
        attributes: Dict[str, Any],
        trace_id: str = "",
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start = start
        self.end = 0.0
        self.attributes = attributes
        self.trace_id = trace_id

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return self.end - self.start if self.end else 0.0

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    def add(self, key: str, amount: Union[int, float] = 1) -> "Span":
        """Add ``amount`` to a numeric attribute, creating it at 0."""
        self.attributes[key] = self.attributes.get(key, 0) + amount
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The span as plain built-ins (the JSONL export row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, attrs={self.attributes})"


class _NullSpan:
    """The span handed out when tracing is disabled: every method no-ops."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add(self, key: str, amount: Union[int, float] = 1) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Shared, stateless, reentrant context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a real span on ``__enter__``."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.set("error", f"{exc_type.__name__}: {exc}")
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Collects finished spans into a bounded ring buffer.

    Thread-safe: each thread keeps its own open-span stack (so parentage
    is per-thread, as in every tracing system), and the finished-span
    buffer is guarded by a lock.  The perf-counter value at construction
    is the trace *epoch*; exported timestamps are offsets from it.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.epoch = time.perf_counter()
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._dropped = 0

    # -- recording ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start_span(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span as a child of the thread's innermost open span.

        The new span is stamped with the ambient trace id: the active
        :class:`~repro.obs.context.RequestContext` wins, else the parent
        span's trace id is inherited, else "" (an uncorrelated span).
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else 0
        ambient = _context.current()
        if ambient is not None:
            trace_id = ambient.trace_id
        elif stack:
            trace_id = stack[-1].trace_id
        else:
            trace_id = ""
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread_id=threading.get_ident(),
            start=time.perf_counter(),
            attributes=attributes if attributes is not None else {},
            trace_id=trace_id,
        )
        stack.append(record)
        return record

    def end_span(self, record: Span) -> None:
        """Close ``record`` and move it to the finished-span buffer.

        Closing out of order (an outer span before its children) also
        closes every span above ``record`` on the stack, so a forgotten
        inner span cannot corrupt parentage for the rest of the run.
        """
        record.end = time.perf_counter()
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is record:
                break
            if not top.end:
                top.end = record.end
            self._append(top)
        self._append(record)

    def _append(self, record: Span) -> None:
        with self._lock:
            if len(self._buffer) == self.capacity:
                self._dropped += 1
            self._buffer.append(record)
        hook = _flight_hook
        if hook is not None:
            hook(record)

    def ingest(
        self,
        records: List[Dict[str, Any]],
        parent_id: int = 0,
        epoch: Optional[float] = None,
        base: Optional[float] = None,
    ) -> int:
        """Merge foreign (worker-exported) span rows into this tracer.

        ``records`` are :meth:`Span.to_dict` rows exported by another
        process's tracer.  Span ids are only unique per tracer, so each
        row gets a fresh id here; parent links *within* the batch are
        remapped to the new ids, and roots are re-parented under
        ``parent_id`` (typically the coordinator span that dispatched the
        worker).  Timestamps are rebased when ``epoch`` — the foreign
        tracer's epoch — is given: a foreign perf-counter value ``t``
        becomes ``base + (t - epoch)``, where ``base`` defaults to this
        tracer's epoch and is normally the local perf-counter reading
        taken when the worker was dispatched.  Returns the number of
        spans ingested.
        """
        if base is None:
            base = self.epoch
        rows = [dict(row) for row in records]
        id_map = {
            int(row["span_id"]): next(self._ids)
            for row in rows
            if "span_id" in row
        }
        for row in rows:
            start = float(row.get("start", 0.0))
            end = float(row.get("end", 0.0))
            if epoch is not None:
                start = base + (start - epoch)
                if end:
                    end = base + (end - epoch)
            record = Span(
                name=str(row.get("name", "?")),
                span_id=id_map.get(int(row.get("span_id", 0)), next(self._ids)),
                parent_id=id_map.get(int(row.get("parent_id", 0)), parent_id),
                thread_id=int(row.get("thread_id", 0)),
                start=start,
                attributes=dict(row.get("attributes", {})),
                trace_id=str(row.get("trace_id", "")),
            )
            record.end = end
            self._append(record)
        return len(rows)

    # -- inspection -----------------------------------------------------

    @property
    def n_dropped(self) -> int:
        """Finished spans evicted by the ring buffer since the last clear."""
        return self._dropped

    def spans(self) -> List[Span]:
        """Finished spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        """Drop all finished spans and reset the epoch and drop counter."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0
            self.epoch = time.perf_counter()

    # -- export ---------------------------------------------------------

    def to_jsonl(self, path: Optional[Union[str, Path]] = None) -> str:
        """Finished spans as JSONL (one object per line); optionally written."""
        lines = "\n".join(json.dumps(s.to_dict(), default=str) for s in self.spans())
        if lines:
            lines += "\n"
        if path is not None:
            Path(path).write_text(lines)
        return lines

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event document for the finished spans.

        Complete (``"ph": "X"``) events with microsecond timestamps
        relative to the tracer epoch; thread ids map to Chrome ``tid``
        rows so concurrent scans render as parallel tracks.
        """
        events = []
        for record in self.spans():
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": (record.start - self.epoch) * 1e6,
                    "dur": record.seconds * 1e6,
                    "pid": 1,
                    "tid": record.thread_id % 2**31,
                    "cat": record.name.split(".", 1)[0],
                    "args": {
                        key: value if isinstance(value, (int, float, str, bool)) else str(value)
                        for key, value in record.attributes.items()
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome(self, path: Union[str, Path]) -> int:
        """Write :meth:`chrome_trace` as JSON; returns the event count."""
        document = self.chrome_trace()
        Path(path).write_text(json.dumps(document))
        return len(document["traceEvents"])


_enabled = False
_tracer = Tracer()


def tracing_enabled() -> bool:
    """Whether :func:`span` currently records anything."""
    return _enabled


def enable_tracing(capacity: Optional[int] = None) -> Tracer:
    """Turn span recording on; returns the active tracer.

    ``capacity`` (when given) replaces the process tracer with a fresh
    one of that ring-buffer size, discarding previously recorded spans.
    """
    global _enabled, _tracer
    if capacity is not None:
        _tracer = Tracer(capacity)
    _enabled = True
    return _tracer


def disable_tracing() -> None:
    """Turn span recording off (already-recorded spans are kept)."""
    global _enabled
    _enabled = False


def get_tracer() -> Tracer:
    """The process-wide tracer (valid whether or not tracing is enabled)."""
    return _tracer


def current_span_id() -> int:
    """The id of this thread's innermost open span (0 when none / disabled)."""
    if not _enabled:
        return 0
    stack = getattr(_tracer._local, "stack", None)
    return stack[-1].span_id if stack else 0


def current_trace_id() -> str:
    """The ambient trace id: active context first, else the open span's.

    Returns "" when neither a :class:`~repro.obs.context.RequestContext`
    is active nor a traced span is open on this thread.
    """
    ambient = _context.current()
    if ambient is not None:
        return ambient.trace_id
    if _enabled:
        stack = getattr(_tracer._local, "stack", None)
        if stack:
            return stack[-1].trace_id
    return ""


def span(name: str, **attributes: Any):
    """Open a traced region named ``name`` (context manager).

    The yielded object supports ``.set(key, value)`` and
    ``.add(key, amount)`` for attaching counters.  With tracing disabled
    this returns a shared no-op context manager and records nothing.
    """
    if not _enabled:
        return _NULL_CONTEXT
    return _SpanContext(_tracer, name, attributes)
