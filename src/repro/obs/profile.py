"""Opt-in stage profiling: allocation and call-count sampling.

Tracing (:mod:`repro.obs.trace`) answers *where the time went*; this
module answers the follow-up — *what a stage did to get there* — for the
two numpy-heavy kernels: batch insertion (``phase1.insert_batch``) and
the Phase II distance kernel.  For each profiled stage it samples:

* **allocation** via :mod:`tracemalloc` — net allocated bytes over the
  stage and the peak traced size reached inside it;
* **call counts** via a :func:`sys.setprofile` hook — Python calls,
  C calls, and the subset of C calls landing in numpy (ufuncs and
  ``numpy.*`` builtins, identified by their ``__module__``).

Both samplers carry real overhead (tracemalloc typically 2-4x on
allocation-heavy code), which is exactly why profiling is a separate
opt-in from tracing/metrics: :func:`profiled` is a no-op until
:func:`enable_profiling` is called, and nothing here runs in production
mines.  Stages aggregate by name across calls; :func:`profile_report`
renders the accumulated table (CLI: ``mine --profile``).

Limitations, by design: the ``sys.setprofile`` hook observes only the
calling thread, and nested :func:`profiled` stages suspend the outer
stage's call counting while the inner one runs (allocation deltas still
nest correctly).
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "StageProfile",
    "profiled",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profiles",
    "profiles",
    "profile_report",
]


@dataclass
class StageProfile:
    """Accumulated samples of one named stage across all its runs."""

    name: str
    calls: int = 0
    """Times the stage ran."""
    py_calls: int = 0
    """Python-level function calls observed inside the stage."""
    c_calls: int = 0
    """C-level (builtin/extension) calls observed inside the stage."""
    numpy_calls: int = 0
    """C calls whose callee lives in a ``numpy`` module (ufuncs etc.)."""
    alloc_bytes: int = 0
    """Net traced allocation delta summed over runs (can be negative)."""
    peak_bytes: int = 0
    """Largest traced-memory peak reached inside any single run."""
    seconds: float = 0.0
    """Wall time spent inside the stage (includes sampler overhead)."""

    def merge_run(
        self,
        py_calls: int,
        c_calls: int,
        numpy_calls: int,
        alloc_bytes: int,
        peak_bytes: int,
        seconds: float,
    ) -> None:
        """Fold one run's samples into the aggregate."""
        self.calls += 1
        self.py_calls += py_calls
        self.c_calls += c_calls
        self.numpy_calls += numpy_calls
        self.alloc_bytes += alloc_bytes
        self.peak_bytes = max(self.peak_bytes, peak_bytes)
        self.seconds += seconds


_enabled = False
_started_tracemalloc = False
_lock = threading.Lock()
_profiles: Dict[str, StageProfile] = {}


def profiling_enabled() -> bool:
    """Whether :func:`profiled` currently samples anything."""
    return _enabled


def enable_profiling() -> None:
    """Turn stage profiling on (starts :mod:`tracemalloc` if needed)."""
    global _enabled, _started_tracemalloc
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracemalloc = True
    _enabled = True


def disable_profiling() -> None:
    """Turn profiling off; stops tracemalloc if this module started it."""
    global _enabled, _started_tracemalloc
    _enabled = False
    if _started_tracemalloc and tracemalloc.is_tracing():
        tracemalloc.stop()
        _started_tracemalloc = False


def reset_profiles() -> None:
    """Forget every accumulated stage profile."""
    with _lock:
        _profiles.clear()


def profiles() -> Dict[str, StageProfile]:
    """A snapshot copy of the accumulated per-stage profiles."""
    with _lock:
        return dict(_profiles)


class _CallCounter:
    """``sys.setprofile`` hook counting Python/C/numpy calls."""

    __slots__ = ("py_calls", "c_calls", "numpy_calls")

    def __init__(self) -> None:
        self.py_calls = 0
        self.c_calls = 0
        self.numpy_calls = 0

    def __call__(self, frame, event: str, arg) -> None:
        if event == "c_call":
            self.c_calls += 1
            module = getattr(arg, "__module__", None)
            if module and "numpy" in module:
                self.numpy_calls += 1
        elif event == "call":
            self.py_calls += 1


@contextmanager
def profiled(name: str) -> Iterator[Optional[StageProfile]]:
    """Sample the enclosed block as one run of stage ``name``.

    Yields the (shared, accumulated) :class:`StageProfile` for the stage,
    or ``None`` when profiling is disabled — callers never need to check
    the flag themselves.
    """
    if not _enabled:
        yield None
        return
    with _lock:
        stage = _profiles.get(name)
        if stage is None:
            stage = StageProfile(name)
            _profiles[name] = stage
    if hasattr(tracemalloc, "reset_peak"):
        tracemalloc.reset_peak()
    alloc_before, _ = tracemalloc.get_traced_memory()
    counter = _CallCounter()
    previous_hook = sys.getprofile()
    started = time.perf_counter()
    sys.setprofile(counter)
    try:
        yield stage
    finally:
        sys.setprofile(previous_hook)
        seconds = time.perf_counter() - started
        alloc_after, peak = tracemalloc.get_traced_memory()
        with _lock:
            stage.merge_run(
                py_calls=counter.py_calls,
                c_calls=counter.c_calls,
                numpy_calls=counter.numpy_calls,
                alloc_bytes=alloc_after - alloc_before,
                peak_bytes=peak,
                seconds=seconds,
            )


def profile_report() -> str:
    """The accumulated stage profiles as an aligned table."""
    snapshot = sorted(profiles().values(), key=lambda stage: -stage.seconds)
    if not snapshot:
        return "(no stages profiled)"
    header = (
        "stage", "runs", "seconds", "py calls", "c calls", "numpy calls",
        "alloc", "peak",
    )
    rows: List[tuple] = [header]
    for stage in snapshot:
        rows.append(
            (
                stage.name,
                str(stage.calls),
                f"{stage.seconds:.3f}",
                str(stage.py_calls),
                str(stage.c_calls),
                str(stage.numpy_calls),
                _human_bytes(stage.alloc_bytes),
                _human_bytes(stage.peak_bytes),
            )
        )
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                f"{cell:<{widths[i]}}" if i == 0 else f"{cell:>{widths[i]}}"
                for i, cell in enumerate(row)
            )
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _human_bytes(n: int) -> str:
    """``1536`` → ``1.5KB`` (sign-preserving)."""
    sign = "-" if n < 0 else ""
    size = float(abs(n))
    for suffix in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or suffix == "GB":
            if suffix == "B":
                return f"{sign}{int(size)}B"
            return f"{sign}{size:.1f}{suffix}"
        size /= 1024.0
    return f"{sign}{size:.1f}GB"  # pragma: no cover - unreachable
