"""Benchmark telemetry: recorded runs and ``BENCH_<scenario>.json`` trajectories.

PR 4 gave the miner spans, metrics and profiles; this module is the first
*consumer* — it turns one benchmark execution into a structured,
versioned :class:`BenchRecord` (wall time, peak RSS, optional tracemalloc
peak, a snapshot of the metrics registry, git SHA and environment
metadata) and appends it to a per-scenario trajectory file at the repo
root, so performance becomes a recorded series instead of a one-off
claim.  :mod:`repro.obs.regress` reads those trajectories back and
classifies the newest run against the baseline.

Two producers write records:

* ``benchmarks/conftest.py`` wraps every pytest benchmark in a
  :class:`BenchRun`, so the 23 figure/ablation/perf benchmarks each keep
  a ``BENCH_<name>.json`` trajectory alongside their human ``.txt``
  tables; and
* ``python -m repro bench run --scenario NAME`` executes one of the
  small self-contained :data:`SCENARIOS` below (seconds-scale versions
  of the paper's workloads) — the CI-friendly path that needs no pytest.

Trajectory file layout (see ``docs/OBSERVABILITY.md`` for the full
field-by-field schema)::

    {
      "schema_version": 1,
      "scenario": "phase1_scaling",
      "records": [ {BenchRecord.to_dict()}, ... ]   # append-only, oldest first
    }

Everything here is stdlib + numpy only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "BenchRun",
    "find_repo_root",
    "trajectory_path",
    "append_record",
    "load_trajectory",
    "list_scenarios",
    "Scenario",
    "SCENARIOS",
    "run_scenario",
]

#: Version stamped into every record and trajectory document; bump when a
#: field changes meaning so readers can adapt.
SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _git(args: List[str], cwd: Optional[Path]) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def describe_environment() -> Dict[str, str]:
    """Interpreter/library/platform identity stored with every record."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def describe_git(root: Optional[PathLike] = None) -> Dict[str, Any]:
    """``{"sha": ..., "dirty": ...}`` for the repo at ``root`` (or cwd).

    Outside a git checkout (an installed wheel, a tarball) the SHA is
    ``"unknown"`` and ``dirty`` is ``False`` — records stay writable.
    """
    cwd = Path(root) if root is not None else None
    sha = _git(["rev-parse", "HEAD"], cwd)
    if sha is None:
        return {"sha": "unknown", "dirty": False}
    status = _git(["status", "--porcelain"], cwd)
    return {"sha": sha, "dirty": bool(status)}


def _peak_rss_bytes() -> Optional[int]:
    """The process high-water RSS in bytes, or ``None`` where unreadable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def _json_safe(value: Any) -> Any:
    """Coerce a metric/attribute value into JSON-serializable built-ins."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass
class BenchRecord:
    """One benchmark execution, as it lands in a trajectory file.

    ``peak_rss_bytes`` is the *process* high-water mark at the end of the
    run (``ru_maxrss`` never decreases), so it upper-bounds the run's own
    peak; ``tracemalloc_peak_bytes`` — when sampling was on — is the
    run-scoped python-allocation peak.  ``metrics`` is the
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken when the
    run stopped, and ``tables`` carries any
    :class:`~repro.report.tables.Table` the benchmark emitted, as
    ``{"title", "headers", "rows"}`` dicts.
    """

    scenario: str
    started_at: str = field(default_factory=_utc_now)
    wall_seconds: float = 0.0
    peak_rss_bytes: Optional[int] = None
    tracemalloc_peak_bytes: Optional[int] = None
    git_sha: str = "unknown"
    git_dirty: bool = False
    params: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, str] = field(default_factory=describe_environment)
    metrics: Dict[str, Any] = field(default_factory=dict)
    tables: List[Dict[str, Any]] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """The record as plain built-ins (the trajectory-file row)."""
        return {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
            "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
            "git_sha": self.git_sha,
            "git_dirty": self.git_dirty,
            "params": _json_safe(self.params),
            "environment": dict(self.environment),
            "metrics": _json_safe(self.metrics),
            "tables": _json_safe(self.tables),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "BenchRecord":
        """Rebuild a record from :meth:`to_dict` output (tolerant of extras)."""
        return cls(
            scenario=str(state.get("scenario", "unknown")),
            started_at=str(state.get("started_at", "")),
            wall_seconds=float(state.get("wall_seconds", 0.0)),
            peak_rss_bytes=state.get("peak_rss_bytes"),
            tracemalloc_peak_bytes=state.get("tracemalloc_peak_bytes"),
            git_sha=str(state.get("git_sha", "unknown")),
            git_dirty=bool(state.get("git_dirty", False)),
            params=dict(state.get("params", {})),
            environment=dict(state.get("environment", {})),
            metrics=dict(state.get("metrics", {})),
            tables=list(state.get("tables", [])),
            schema_version=int(state.get("schema_version", SCHEMA_VERSION)),
        )


class BenchRun:
    """Context-manager recorder producing one :class:`BenchRecord`.

    Usage::

        run = BenchRun("phase1_scaling", params={"sizes": sizes})
        with run:
            workload()
        append_record(run.record)

    Captures on exit: wall-clock seconds, the process peak RSS, the
    tracemalloc run peak (only when ``trace_malloc=True`` — the sampler
    slows allocation-heavy code, so timing-gated benchmarks leave it
    off), and a snapshot of whatever the metrics registry holds.  The
    recorder never enables or disables observability itself; drivers
    that want a per-run metrics snapshot reset/enable the registry
    around the ``with`` block (as :func:`run_scenario` does).
    """

    def __init__(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        trace_malloc: bool = False,
        root: Optional[PathLike] = None,
    ):
        if not scenario:
            raise ValueError("a benchmark run needs a scenario name")
        self.scenario = scenario
        self.params: Dict[str, Any] = dict(params or {})
        self.trace_malloc = trace_malloc
        self.root = Path(root) if root is not None else None
        self.tables: List[Dict[str, Any]] = []
        self._started: Optional[float] = None
        self._own_tracemalloc = False
        self._record: Optional[BenchRecord] = None

    @property
    def record(self) -> BenchRecord:
        """The finished record; raises until the ``with`` block exits."""
        if self._record is None:
            raise RuntimeError("benchmark run has not finished yet")
        return self._record

    def set_param(self, key: str, value: Any) -> "BenchRun":
        """Attach (or overwrite) one scenario parameter; chainable."""
        self.params[key] = value
        return self

    def add_table(self, table: Any) -> "BenchRun":
        """Attach a :class:`~repro.report.tables.Table` as structured rows."""
        self.tables.append(
            {
                "title": table.title,
                "headers": list(table.headers),
                "rows": [list(row) for row in table.rows],
            }
        )
        return self

    def __enter__(self) -> "BenchRun":
        if self.trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._own_tracemalloc = True
        elif self.trace_malloc:
            tracemalloc.reset_peak()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._started is not None
        wall = time.perf_counter() - self._started
        peak_traced: Optional[int] = None
        if self.trace_malloc and tracemalloc.is_tracing():
            peak_traced = tracemalloc.get_traced_memory()[1]
            if self._own_tracemalloc:
                tracemalloc.stop()
        git = describe_git(self.root)
        if git["sha"] == "unknown":
            # The trajectory root may be a scratch directory; the record
            # should still identify the code that ran, so fall back to
            # the checkout this module was imported from.
            git = describe_git(Path(__file__).resolve().parent)
        self._record = BenchRecord(
            scenario=self.scenario,
            wall_seconds=wall,
            peak_rss_bytes=_peak_rss_bytes(),
            tracemalloc_peak_bytes=peak_traced,
            git_sha=git["sha"],
            git_dirty=git["dirty"],
            params=dict(self.params),
            metrics=obs_metrics.get_registry().snapshot(),
            tables=list(self.tables),
        )
        return False


# ----------------------------------------------------------------------
# Trajectory files
# ----------------------------------------------------------------------


def find_repo_root(start: Optional[PathLike] = None) -> Path:
    """The nearest ancestor of ``start`` (default: cwd) that looks like a
    repo root (holds ``.git`` or ``pyproject.toml``); falls back to
    ``start`` itself so trajectory writes never fail on layout."""
    origin = Path(start) if start is not None else Path.cwd()
    origin = origin.resolve()
    for candidate in (origin, *origin.parents):
        if (candidate / ".git").exists() or (candidate / "pyproject.toml").exists():
            return candidate
    return origin


def trajectory_path(scenario: str, root: Optional[PathLike] = None) -> Path:
    """``<root>/BENCH_<scenario>.json`` (root defaults to the repo root)."""
    base = Path(root) if root is not None else find_repo_root()
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in scenario)
    return base / f"BENCH_{safe}.json"


def append_record(record: BenchRecord, root: Optional[PathLike] = None) -> Path:
    """Append ``record`` to its scenario's trajectory file, atomically.

    Creates the file with the versioned document wrapper on first use;
    an unreadable/corrupt existing file is replaced rather than crashing
    the benchmark that produced the record (the old content is saved to
    ``<path>.corrupt`` for inspection).  Returns the trajectory path.
    """
    path = trajectory_path(record.scenario, root)
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "scenario": record.scenario,
        "records": [],
    }
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded.get("records"), list):
                document = loaded
        except (ValueError, OSError):
            try:
                path.replace(path.with_suffix(".json.corrupt"))
            except OSError:
                pass
    document["records"].append(record.to_dict())
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_trajectory(
    scenario: str, root: Optional[PathLike] = None
) -> List[BenchRecord]:
    """All recorded runs of ``scenario``, oldest first ([] when absent)."""
    path = trajectory_path(scenario, root)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text())
    except ValueError as error:
        raise ValueError(f"{path}: trajectory file is not valid JSON: {error}")
    records = document.get("records")
    if not isinstance(records, list):
        raise ValueError(f"{path}: trajectory file lacks a 'records' list")
    return [BenchRecord.from_dict(entry) for entry in records]


def list_scenarios(root: Optional[PathLike] = None) -> List[str]:
    """Scenario names with a ``BENCH_*.json`` trajectory under ``root``."""
    base = Path(root) if root is not None else find_repo_root()
    names = []
    for path in sorted(base.glob("BENCH_*.json")):
        names.append(path.name[len("BENCH_"):-len(".json")])
    return names


# ----------------------------------------------------------------------
# Self-contained CLI scenarios
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One named ``repro bench run`` workload.

    ``build(scale)`` does all data preparation and returns
    ``(params, workload)``; only ``workload()`` is timed, so trajectory
    numbers measure the miner, not the synthetic-data generator.
    """

    name: str
    description: str
    build: Callable[[float], Tuple[Dict[str, Any], Callable[[], Any]]]


def _build_phase1_scaling(scale: float):
    from repro.data.wbcd import make_scaled_wbcd, make_wbcd_like
    from repro.evaluation import measure_phase1

    sizes = [max(int(round(n * scale)), 500) for n in (5_000, 10_000, 20_000)]
    base = make_wbcd_like(seed=42)
    names = list(base.schema.names[:4])
    relations = [
        make_scaled_wbcd(size, outlier_fraction=0.05, seed=42, base=base)
        for size in sizes
    ]

    def workload():
        for relation in relations:
            measure_phase1(relation, names, frequency_fraction=0.03)

    return {"sizes": sizes, "attributes": len(names)}, workload


def _build_phase2_graph(scale: float):
    from repro.core.config import DARConfig
    from repro.core.miner import DARMiner
    from repro.data.synthetic import make_planted_rule_relation

    per_mode = max(int(round(1_000 * scale)), 100)
    relation, _ = make_planted_rule_relation(seed=11, points_per_mode=per_mode)
    config = DARConfig(phase2_engine="auto")

    def workload():
        return DARMiner(config).mine(relation)

    return {"rows": len(relation), "engine": "auto"}, workload


def _build_streaming_update(scale: float):
    from repro.core.config import DARConfig
    from repro.core.streaming import StreamingDARMiner
    from repro.data.relation import default_partitions
    from repro.data.synthetic import make_clustered_relation

    per_mode = max(int(round(600 * scale)), 60)
    relation, _ = make_clustered_relation(
        n_modes=4, points_per_mode=per_mode, n_attributes=3, seed=5
    )
    partitions = default_partitions(relation.schema)
    matrices = {p.name: relation.matrix(p.attributes) for p in partitions}
    n = len(relation)
    batch = max(n // 8, 1)

    def workload():
        miner = StreamingDARMiner(partitions, DARConfig())
        position = 0
        while position < n:
            end = min(position + batch, n)
            miner.update_arrays(
                {name: matrix[position:end] for name, matrix in matrices.items()}
            )
            position = end
        return miner.rules()

    return {"rows": n, "batches": -(-n // batch)}, workload


def _build_parallel_scaling(scale: float):
    from repro.core.config import DARConfig
    from repro.parallel.miner import ParallelDARMiner
    from repro.data.synthetic import make_clustered_relation

    per_mode = max(int(round(400 * scale)), 50)
    relation, _ = make_clustered_relation(
        n_modes=4, points_per_mode=per_mode, n_attributes=6, seed=29
    )
    config = DARConfig()
    worker_counts = (1, 2, 4)

    def workload():
        results = []
        for workers in worker_counts:
            results.append(
                ParallelDARMiner(config, workers=workers).mine(relation)
            )
        return results

    return {
        "rows": len(relation),
        "partitions": relation.arity,
        "workers": list(worker_counts),
    }, workload


def _build_serve_qps(scale: float):
    import math

    from repro.api import mine
    from repro.data.synthetic import make_planted_rule_relation
    from repro.serve import RuleQuery, SnapshotPublisher

    per_mode = max(int(round(300 * scale)), 50)
    relation, _ = make_planted_rule_relation(seed=13, points_per_mode=per_mode)
    publisher = SnapshotPublisher(mine(relation))
    # A representative query mix: broad scans, tight top-k cuts, pruning,
    # and one per-partition target filter.  Cycling the same variants
    # exercises both the cold (miss) and warm (LRU hit) answer paths.
    variants = [
        RuleQuery(),
        RuleQuery(top_k=5),
        RuleQuery(min_degree=0.0),
        RuleQuery(prune_redundant=True),
    ]
    variants.extend(
        RuleQuery(targets=(name,)) for name in publisher.snapshot.partitions
    )
    n_queries = max(int(round(2_000 * scale)), 200)

    def workload():
        latencies = []
        for index in range(n_queries):
            begin = time.perf_counter()
            publisher.query(variants[index % len(variants)])
            latencies.append(time.perf_counter() - begin)
        latencies.sort()

        def nearest_rank(quantile: float) -> float:
            position = math.ceil(quantile * len(latencies)) - 1
            return latencies[min(len(latencies) - 1, max(0, position))]

        busy = sum(latencies)
        obs_metrics.set_gauge(
            "repro_serve_query_p50_seconds",
            nearest_rank(0.50),
            help="Median query latency of the last serve_qps bench run",
        )
        obs_metrics.set_gauge(
            "repro_serve_query_p99_seconds",
            nearest_rank(0.99),
            help="p99 query latency of the last serve_qps bench run",
        )
        obs_metrics.set_gauge(
            "repro_serve_qps",
            n_queries / busy if busy > 0 else 0.0,
            help="Queries per second of the last serve_qps bench run",
        )

    return {
        "rows": len(relation),
        "rules": publisher.snapshot.n_rules,
        "queries": n_queries,
        "variants": len(variants),
    }, workload


def _build_serve_overload(scale: float):
    import math
    import threading
    import urllib.error
    import urllib.request

    from repro.api import mine
    from repro.data.synthetic import make_planted_rule_relation
    from repro.resilience import faults
    from repro.serve import RuleServer, ServePolicy, SnapshotPublisher

    per_mode = max(int(round(200 * scale)), 40)
    relation, _ = make_planted_rule_relation(seed=17, points_per_mode=per_mode)
    publisher = SnapshotPublisher(mine(relation))
    capacity = 4
    clients = max(int(round(16 * scale)), 8)
    requests_per_client = 8
    # Every request pays a small injected delay at serve.request while it
    # holds its admission slot, so with clients >> capacity the in-flight
    # gauge saturates and the shed path actually runs.
    delay_seconds = 0.01

    def workload():
        policy = ServePolicy(
            max_inflight=capacity,
            deadline_seconds=5.0,
            drain_seconds=5.0,
        )
        injector = faults.FaultInjector().slow_at(
            "serve.request", delay_seconds
        )
        statuses = []
        latencies = []
        lock = threading.Lock()

        def client():
            for _ in range(requests_per_client):
                begin = time.perf_counter()
                try:
                    with urllib.request.urlopen(
                        server.url + "/rules?top_k=3", timeout=30
                    ) as response:
                        status = response.status
                        response.read()
                except urllib.error.HTTPError as error:
                    status = error.code
                    error.read()
                elapsed = time.perf_counter() - begin
                with lock:
                    statuses.append(status)
                    if status == 200:
                        latencies.append(elapsed)

        with faults.injected(injector):
            with RuleServer(publisher, port=0, policy=policy) as server:
                server.start()
                threads = [
                    threading.Thread(target=client) for _ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

        total = len(statuses)
        shed = sum(1 for status in statuses if status in (429, 503))
        accepted = sum(1 for status in statuses if status == 200)
        latencies.sort()
        p99 = 0.0
        if latencies:
            position = math.ceil(0.99 * len(latencies)) - 1
            p99 = latencies[min(len(latencies) - 1, max(0, position))]
        obs_metrics.set_gauge(
            "repro_serve_overload_shed_rate",
            shed / total if total else 0.0,
            help="Fraction of requests shed in the last serve_overload run",
        )
        obs_metrics.set_gauge(
            "repro_serve_overload_accepted_p99_seconds",
            p99,
            help="p99 latency of accepted requests in the last "
            "serve_overload run",
        )
        obs_metrics.set_gauge(
            "repro_serve_overload_accepted_total",
            accepted,
            help="Accepted (200) requests in the last serve_overload run",
        )
        return {"total": total, "shed": shed, "accepted": accepted}

    return {
        "rows": len(relation),
        "capacity": capacity,
        "clients": clients,
        "requests_per_client": requests_per_client,
    }, workload


def _build_outofcore_scan(scale: float):
    from repro.api import mine
    from repro.birch.birch import BirchOptions
    from repro.core.config import DARConfig
    from repro.data.columnar import ColumnStore
    from repro.data.synthetic import make_clustered_relation

    per_mode = max(int(round(2_000 * scale)), 200)
    relation, _ = make_clustered_relation(
        n_modes=4, points_per_mode=per_mode, n_attributes=3, seed=23
    )
    chunk_sizes = (512, 2048, 8192)
    budget_bytes = 64 * 1024
    # The Phase I byte budget keeps the scan cadence fixed at the
    # memory-check interval, so every chunk size produces bit-identical
    # rules and the trajectory measures pure I/O/chunking overhead.
    config = DARConfig(birch=BirchOptions(memory_limit_bytes=budget_bytes))

    def workload():
        for chunk_rows in chunk_sizes:
            begin = time.perf_counter()
            with ColumnStore.from_relation(
                relation, chunk_rows=chunk_rows
            ) as store:
                mine(store, config=config)
            elapsed = time.perf_counter() - begin
            obs_metrics.set_gauge(
                "repro_outofcore_rows_per_second",
                len(relation) / elapsed if elapsed > 0 else 0.0,
                help="Spill + out-of-core mine throughput by chunk size",
                chunk_rows=str(chunk_rows),
            )
            rss = _peak_rss_bytes()
            if rss is not None:
                obs_metrics.set_gauge(
                    "repro_outofcore_peak_rss_bytes",
                    rss,
                    help="Process high-water RSS after the out-of-core "
                    "mine at each chunk size (ru_maxrss never decreases, "
                    "so within one run the series is monotone)",
                    chunk_rows=str(chunk_rows),
                )

    return {
        "rows": len(relation),
        "chunk_sizes": list(chunk_sizes),
        "memory_budget_bytes": budget_bytes,
    }, workload


def _build_mine_smoke(scale: float):
    from repro.api import mine
    from repro.data.synthetic import make_planted_rule_relation

    per_mode = max(int(round(200 * scale)), 40)
    relation, _ = make_planted_rule_relation(seed=3, points_per_mode=per_mode)

    def workload():
        return mine(relation)

    return {"rows": len(relation)}, workload


#: The built-in ``repro bench run`` scenarios: small, deterministic,
#: seconds-scale versions of the paper's workloads.  ``--scale`` stretches
#: or shrinks data sizes, exactly like ``REPRO_BENCH_SCALE`` does for the
#: pytest benchmarks.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "phase1_scaling",
            "Phase I (BIRCH) ingestion over 5K-20K scaled-WBCD tuples",
            _build_phase1_scaling,
        ),
        Scenario(
            "phase2_graph",
            "full mine of the planted-rule workload (vector Phase II)",
            _build_phase2_graph,
        ),
        Scenario(
            "streaming_update",
            "StreamingDARMiner batch absorption plus an anytime rules() snapshot",
            _build_streaming_update,
        ),
        Scenario(
            "parallel_scaling",
            "full mine at 1/2/4 workers over a 6-partition clustered relation",
            _build_parallel_scaling,
        ),
        Scenario(
            "serve_qps",
            "query-engine throughput over a published rule snapshot "
            "(records p50/p99 latency and QPS gauges)",
            _build_serve_qps,
        ),
        Scenario(
            "serve_overload",
            "HTTP serving under injected overload: N clients vs "
            "max-inflight K (records shed-rate and accepted-p99 gauges)",
            _build_serve_overload,
        ),
        Scenario(
            "outofcore_scan",
            "spill to a columnar store and mine out of core under a "
            "Phase I byte budget at 3 chunk sizes (records rows/s and "
            "peak-RSS gauges per chunk size)",
            _build_outofcore_scan,
        ),
        Scenario(
            "mine_smoke",
            "tiny end-to-end mine (CI smoke scenario)",
            _build_mine_smoke,
        ),
    )
}


def run_scenario(
    name: str,
    *,
    scale: float = 1.0,
    root: Optional[PathLike] = None,
    trace_malloc: bool = False,
    append: bool = True,
) -> Tuple[BenchRecord, Optional[Path]]:
    """Execute one built-in scenario and (by default) append its record.

    The metrics registry is reset and enabled for the duration of the
    workload so the record's ``metrics`` snapshot describes exactly this
    run; the caller's previous enable/disable state is restored after.
    Returns ``(record, trajectory_path_or_None)``.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})")
    if scale <= 0:
        raise ValueError("--scale must be positive")
    params, workload = scenario.build(scale)
    params = {"scale": scale, **params}

    was_enabled = obs_metrics.metrics_enabled()
    registry = obs_metrics.get_registry()
    registry.reset()
    obs_metrics.enable_metrics()
    run = BenchRun(name, params, trace_malloc=trace_malloc, root=root)
    try:
        with run:
            workload()
    finally:
        if not was_enabled:
            obs_metrics.disable_metrics()
    path = append_record(run.record, root) if append else None
    return run.record, path
