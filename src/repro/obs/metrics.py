"""Process-wide counters, gauges and histograms with Prometheus export.

A :class:`MetricsRegistry` holds named metrics, optionally labeled
(``repro_phase1_points_total{partition="age"}``), and renders them two
ways: :meth:`MetricsRegistry.to_prometheus` emits the Prometheus text
exposition format a scraper would ingest, and
:meth:`MetricsRegistry.to_table` a human-readable table (what the CLI
``--metrics`` flag prints).

Instrumentation sites go through the module-level helpers —
:func:`inc`, :func:`set_gauge`, :func:`observe` — which are no-ops until
:func:`enable_metrics` is called, so the disabled-mode cost is one
boolean check per call site (gated, together with tracing, by
``benchmarks/test_perf_obs_overhead.py``).  Code that *reads* metrics
(tests, the CLI table) talks to :func:`get_registry` directly.

Naming follows Prometheus conventions: ``repro_`` prefix, ``_total``
suffix on counters, base units (seconds, bytes) in the name.  The full
catalog of metrics the library emits is documented in
``docs/OBSERVABILITY.md``.

All mutation is thread-safe: the registry guards get-or-create with one
lock and every metric guards its own state, so concurrent scans can
share counters without losing increments.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
]

Number = Union[int, float]

#: Set by :mod:`repro.obs.flight` when the flight recorder is enabled;
#: called as ``hook(kind, name, value, labels)`` for each update made
#: through the module-level emission helpers.  ``None`` costs one global
#: read per enabled-mode update (nothing at all while disabled).
_flight_hook = None

#: Default histogram bucket upper bounds: half-decade steps covering
#: microseconds-to-minutes timings and bytes-to-gigabytes sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4,
    1e5, 1e6, 1e7, 1e8, 1e9,
)


def _format_value(value: Number) -> str:
    """A number in Prometheus text form (integers without a trailing .0)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """Common identity (name, labels, help, unit) of one registered metric."""

    kind = "untyped"

    def __init__(self, name: str, labels: Mapping[str, str], help: str, unit: str):
        self.name = name
        self.labels: Tuple[Tuple[str, str], ...] = tuple(sorted(labels.items()))
        self.help = help
        self.unit = unit
        self._lock = threading.Lock()

    @property
    def label_suffix(self) -> str:
        """``{k="v",...}`` or the empty string for unlabeled metrics."""
        if not self.labels:
            return ""
        inner = ",".join(f'{key}="{value}"' for key, value in self.labels)
        return "{" + inner + "}"

    @property
    def full_name(self) -> str:
        """Name plus label suffix — the table/snapshot row key."""
        return self.name + self.label_suffix


class Counter(_Metric):
    """A monotonically increasing count (rows ingested, splits, bytes)."""

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str], help: str, unit: str):
        super().__init__(name, labels, help, unit)
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        """Current monotone total (read under the metric's lock)."""
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A point-in-time value that can move both ways (threshold, tree size)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str], help: str, unit: str):
        super().__init__(name, labels, help, unit)
        self._value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the value."""
        with self._lock:
            self._value = value

    def add(self, amount: Number) -> None:
        """Shift the value by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        """Current value (read under the metric's lock)."""
        with self._lock:
            return self._value


class Histogram(_Metric):
    """A distribution summarized by cumulative buckets, count and sum."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        help: str,
        unit: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels, help, unit)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +inf bucket last
        self._count = 0
        self._sum = 0.0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        with self._lock:
            self._count += 1
            self._sum += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break
            else:
                self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of samples observed (read under the metric's lock)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples (read under the metric's lock)."""
        with self._lock:
            return self._sum

    @property
    def value(self) -> Dict[str, float]:
        """Snapshot summary used by tables: count, sum, mean.

        Count and sum are read under one lock acquisition so the mean is
        always computed from a consistent pair, even while other threads
        are observing samples.
        """
        with self._lock:
            count = self._count
            total = self._sum
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending at ``+inf``."""
        with self._lock:
            counts = list(self._bucket_counts)
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append((float("inf"), running + counts[-1]))
        return rows

    def merge_state(self, bucket_counts: Sequence[int], count: int, total: float) -> None:
        """Fold another histogram's raw state into this one.

        The incoming state must come from a histogram with the same
        bucket bounds (``len(bucket_counts) == len(bounds) + 1``); this is
        how per-worker distributions are combined after a parallel run.
        """
        if len(bucket_counts) != len(self._bucket_counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(bucket_counts)} bucket "
                f"counts into {len(self._bucket_counts)} buckets (bounds differ)"
            )
        with self._lock:
            for index, bucket_count in enumerate(bucket_counts):
                self._bucket_counts[index] += bucket_count
            self._count += count
            self._sum += total


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by name plus label set.

    Re-requesting a metric with the same name and labels returns the same
    object; requesting an existing name as a different metric kind raises
    ``ValueError`` (one name, one type — the Prometheus data model).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(self, cls, name: str, help: str, unit: str, labels, **extra):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} is already registered as a {kind}, "
                        f"cannot re-register as a {cls.kind}"
                    )
                metric = cls(name, labels, help, unit, **extra)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r}{dict(labels)!r} is a {metric.kind}, "
                    f"not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", unit: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, help, unit, labels)

    def gauge(self, name: str, help: str = "", unit: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, help, unit, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get_or_create(Histogram, name, help, unit, labels, buckets=buckets)

    # -- inspection -----------------------------------------------------

    def metrics(self) -> List[_Metric]:
        """All registered metrics, sorted by full name (a snapshot copy)."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.full_name)

    def get(self, name: str, **labels: str) -> Optional[_Metric]:
        """The metric registered under ``name`` + ``labels``, or ``None``."""
        with self._lock:
            return self._metrics.get((name, tuple(sorted(labels.items()))))

    def value(self, name: str, default: Number = 0, **labels: str) -> Any:
        """Shortcut: the metric's value, or ``default`` if unregistered."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else default

    def snapshot(self) -> Dict[str, Any]:
        """``full_name -> value`` for every registered metric."""
        return {metric.full_name: metric.value for metric in self.metrics()}

    def export_state(self) -> Dict[str, Any]:
        """A picklable/JSON-safe dump of every metric's raw state.

        This is the wire format a parallel worker ships back to the
        coordinator: enough to re-register each metric (name, labels,
        help, unit, kind) plus the raw values :meth:`merge` folds in.
        """
        entries: List[Dict[str, Any]] = []
        for metric in self.metrics():
            entry: Dict[str, Any] = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": dict(metric.labels),
                "help": metric.help,
                "unit": metric.unit,
            }
            if isinstance(metric, Histogram):
                with metric._lock:
                    entry["bounds"] = list(metric.bounds)
                    entry["bucket_counts"] = list(metric._bucket_counts)
                    entry["count"] = metric._count
                    entry["sum"] = metric._sum
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return {"metrics": entries}

    def merge(self, state: Mapping[str, Any]) -> None:
        """Fold an :meth:`export_state` dump into this registry.

        Counters and histograms are additive (per the same reasoning as
        the ACF Additivity Theorem: each worker observed a disjoint slice
        of the work), so their values/bucket counts add.  Gauges are
        point-in-time readings, so the incoming value wins — callers that
        need per-worker gauges should label them (e.g. ``worker="3"``).
        """
        for entry in state.get("metrics", []):
            kind = entry["kind"]
            name = entry["name"]
            labels = dict(entry.get("labels", {}))
            help = entry.get("help", "")
            unit = entry.get("unit", "")
            if kind == "counter":
                self.counter(name, help, unit, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, help, unit, **labels).set(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(
                    name, help, unit, buckets=entry["bounds"], **labels
                )
                if list(histogram.bounds) != [float(b) for b in entry["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r}: incoming bucket bounds differ from "
                        f"the registered ones"
                    )
                histogram.merge_state(
                    entry["bucket_counts"], entry["count"], entry["sum"]
                )
            else:
                raise ValueError(f"cannot merge unknown metric kind {kind!r}")

    def reset(self) -> None:
        """Forget every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- rendering ------------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        by_name: Dict[str, List[_Metric]] = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            head = group[0]
            if head.help:
                lines.append(f"# HELP {name} {head.help}")
            lines.append(f"# TYPE {name} {head.kind}")
            for metric in group:
                if isinstance(metric, Histogram):
                    for bound, cumulative in metric.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        labels = dict(metric.labels)
                        labels["le"] = le
                        inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
                        lines.append(f"{name}_bucket{{{inner}}} {cumulative}")
                    lines.append(f"{name}_sum{metric.label_suffix} {_format_value(metric.sum)}")
                    lines.append(f"{name}_count{metric.label_suffix} {metric.count}")
                else:
                    lines.append(
                        f"{metric.full_name} {_format_value(metric.value)}"  # type: ignore[arg-type]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_table(self) -> str:
        """A human-readable, aligned ``metric / type / value`` table."""
        rows: List[Tuple[str, str, str]] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                value = (
                    f"count={metric.count} sum={_format_value(round(metric.sum, 6))} "
                    f"mean={metric.value['mean']:.6g}"
                )
            else:
                raw = metric.value
                value = _format_value(round(raw, 6) if isinstance(raw, float) else raw)
            rows.append((metric.full_name, metric.kind, value))
        if not rows:
            return "(no metrics recorded)"
        name_width = max(len(row[0]) for row in rows)
        kind_width = max(len(row[1]) for row in rows)
        return "\n".join(
            f"{name:<{name_width}}  {kind:<{kind_width}}  {value}"
            for name, kind, value in rows
        )


_enabled = False
_registry = MetricsRegistry()


def metrics_enabled() -> bool:
    """Whether the emission helpers currently record anything."""
    return _enabled


def enable_metrics() -> MetricsRegistry:
    """Turn metric emission on; returns the process registry."""
    global _enabled
    _enabled = True
    return _registry


def disable_metrics() -> None:
    """Turn metric emission off (already-recorded metrics are kept)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide registry (readable whether or not emission is on)."""
    return _registry


def inc(name: str, amount: Number = 1, help: str = "", unit: str = "", **labels: str) -> None:
    """Increment counter ``name`` by ``amount`` — no-op while disabled."""
    if not _enabled:
        return
    _registry.counter(name, help, unit, **labels).inc(amount)
    hook = _flight_hook
    if hook is not None:
        hook("counter", name, amount, labels)


def set_gauge(name: str, value: Number, help: str = "", unit: str = "", **labels: str) -> None:
    """Set gauge ``name`` to ``value`` — no-op while disabled."""
    if not _enabled:
        return
    _registry.gauge(name, help, unit, **labels).set(value)
    hook = _flight_hook
    if hook is not None:
        hook("gauge", name, value, labels)


def observe(name: str, value: Number, help: str = "", unit: str = "", **labels: str) -> None:
    """Record one histogram sample — no-op while disabled."""
    if not _enabled:
        return
    _registry.histogram(name, help, unit, **labels).observe(value)
    hook = _flight_hook
    if hook is not None:
        hook("histogram", name, value, labels)
