"""Regression gates over ``BENCH_*.json`` trajectories.

:mod:`repro.obs.bench` records every benchmark run; this module reads a
scenario's trajectory back and answers the CI question: *did the newest
run get slower (or hungrier) than it used to be?*

The baseline is the **median of the last ``window`` records before the
current one** — medians shrug off a single noisy run, and a sliding
window tracks genuine trend shifts instead of punishing a repo forever
for one fast week.  Each monitored quantity (wall seconds, peak RSS) is
classified independently:

* ``regression``  — current > baseline × (1 + tolerance)
* ``improvement`` — current < baseline × (1 − tolerance)
* ``noise``       — inside the tolerance band
* ``no-baseline`` — fewer than ``min_records`` prior records (or the
  quantity was never measured), so nothing can be said yet

CLI: ``python -m repro bench compare`` renders these verdicts as a
table; ``--strict`` turns any ``regression`` into exit code 1 (the
blocking-gate mode CI uses for the obs-overhead scenario, while the
hardware-sensitive perf scenarios stay advisory).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.bench import BenchRecord, list_scenarios, load_trajectory

__all__ = [
    "IMPROVEMENT",
    "NOISE",
    "REGRESSION",
    "NO_BASELINE",
    "RegressionPolicy",
    "QuantityVerdict",
    "Comparison",
    "classify",
    "compare_records",
    "compare_scenario",
    "compare_all",
]

#: Classification labels, exported so callers never string-match typos.
IMPROVEMENT = "improvement"
NOISE = "noise"
REGRESSION = "regression"
NO_BASELINE = "no-baseline"


@dataclass(frozen=True)
class RegressionPolicy:
    """Knobs of the gate.

    ``tolerance`` is the fractional wall-time band treated as noise
    (0.10 → a 10% slowdown is still noise); ``rss_tolerance`` is the
    wider band for peak RSS, which jitters with allocator behaviour;
    ``window`` is how many prior records feed the median baseline;
    ``min_records`` is the fewest prior records worth comparing against
    (1 by default, so the second run of a scenario is already gated).
    """

    tolerance: float = 0.10
    rss_tolerance: float = 0.25
    window: int = 5
    min_records: int = 1

    def __post_init__(self) -> None:
        if self.tolerance < 0 or self.rss_tolerance < 0:
            raise ValueError("tolerances must be non-negative")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.min_records < 1:
            raise ValueError("min_records must be at least 1")


@dataclass(frozen=True)
class QuantityVerdict:
    """One monitored quantity's classification for one scenario."""

    quantity: str
    classification: str
    current: Optional[float] = None
    baseline: Optional[float] = None
    tolerance: float = 0.0

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline, or ``None`` without a usable baseline."""
        if self.baseline is None or self.current is None or self.baseline <= 0:
            return None
        return self.current / self.baseline

    def describe(self) -> str:
        """One aligned report line (``bench compare`` output row)."""
        if self.classification == NO_BASELINE:
            return f"{self.quantity}: no baseline yet"
        ratio = self.ratio
        assert self.current is not None and self.baseline is not None
        return (
            f"{self.quantity}: {self.classification} "
            f"(current {self.current:.6g}, baseline {self.baseline:.6g}, "
            f"{(ratio - 1) * 100:+.1f}% vs ±{self.tolerance * 100:.0f}% band)"
        )


@dataclass
class Comparison:
    """The newest record of one scenario judged against its baseline."""

    scenario: str
    n_records: int
    verdicts: List[QuantityVerdict] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Worst classification across quantities (regression dominates)."""
        order = (REGRESSION, IMPROVEMENT, NOISE, NO_BASELINE)
        present = {v.classification for v in self.verdicts}
        for label in order:
            if label in present:
                return label
        return NO_BASELINE

    @property
    def has_regression(self) -> bool:
        """Whether any monitored quantity regressed."""
        return any(v.classification == REGRESSION for v in self.verdicts)

    def describe(self) -> str:
        """Multi-line human report for this scenario."""
        lines = [f"{self.scenario} ({self.n_records} recorded runs): {self.status}"]
        lines.extend(f"  {verdict.describe()}" for verdict in self.verdicts)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Plain built-ins (dashboard + JSON output)."""
        return {
            "scenario": self.scenario,
            "n_records": self.n_records,
            "status": self.status,
            "verdicts": [
                {
                    "quantity": v.quantity,
                    "classification": v.classification,
                    "current": v.current,
                    "baseline": v.baseline,
                    "ratio": v.ratio,
                    "tolerance": v.tolerance,
                }
                for v in self.verdicts
            ],
        }


def classify(current: float, baseline: float, tolerance: float) -> str:
    """Label ``current`` against ``baseline`` with a symmetric band."""
    if baseline <= 0:
        return NO_BASELINE
    ratio = current / baseline
    if ratio > 1.0 + tolerance:
        return REGRESSION
    if ratio < 1.0 - tolerance:
        return IMPROVEMENT
    return NOISE


def _values(records: Sequence[BenchRecord], quantity: str) -> List[float]:
    out = []
    for record in records:
        value = getattr(record, quantity, None)
        if value is not None and value > 0:
            out.append(float(value))
    return out


def _judge(
    history: Sequence[BenchRecord],
    current: BenchRecord,
    quantity: str,
    tolerance: float,
    policy: RegressionPolicy,
) -> QuantityVerdict:
    current_value = getattr(current, quantity, None)
    baseline_values = _values(history, quantity)[-policy.window:]
    if current_value is None or current_value <= 0 or (
        len(baseline_values) < policy.min_records
    ):
        return QuantityVerdict(quantity, NO_BASELINE, tolerance=tolerance)
    baseline = statistics.median(baseline_values)
    return QuantityVerdict(
        quantity,
        classify(float(current_value), baseline, tolerance),
        current=float(current_value),
        baseline=baseline,
        tolerance=tolerance,
    )


def compare_records(
    scenario: str,
    records: Sequence[BenchRecord],
    policy: RegressionPolicy = RegressionPolicy(),
) -> Comparison:
    """Judge the last of ``records`` against the median of those before it."""
    comparison = Comparison(scenario=scenario, n_records=len(records))
    if not records:
        return comparison
    current, history = records[-1], records[:-1]
    comparison.verdicts.append(
        _judge(history, current, "wall_seconds", policy.tolerance, policy)
    )
    comparison.verdicts.append(
        _judge(history, current, "peak_rss_bytes", policy.rss_tolerance, policy)
    )
    return comparison


def compare_scenario(
    scenario: str,
    root=None,
    policy: RegressionPolicy = RegressionPolicy(),
) -> Comparison:
    """Load ``BENCH_<scenario>.json`` under ``root`` and judge its tail."""
    return compare_records(scenario, load_trajectory(scenario, root), policy)


def compare_all(
    root=None, policy: RegressionPolicy = RegressionPolicy()
) -> List[Comparison]:
    """One :class:`Comparison` per trajectory file found under ``root``."""
    return [
        compare_scenario(name, root, policy) for name in list_scenarios(root)
    ]
