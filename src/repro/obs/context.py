"""Ambient request context: the id that links logs, spans and bundles.

A :class:`RequestContext` carries a ``trace_id`` (and, for HTTP traffic,
the ``request_id`` echoed back in the ``X-Request-Id`` header) through
everything one logical request touches.  It is *ambient*: code activates
a context for the duration of a ``with`` block and every log record and
span opened underneath — on the same thread — is stamped with its ids
automatically, with no explicit plumbing through call signatures.

Propagation is explicit only at thread/process boundaries:
:meth:`RequestContext.to_dict` / :meth:`RequestContext.from_dict` make
the context a picklable payload, which is how the parallel coordinator
ships it to ``ProcessPoolBackend`` workers alongside the trace/metrics
flags (see :mod:`repro.parallel.tasks`).

Cost model matches the rest of ``repro.obs``: :func:`current` is one
thread-local attribute read, and nothing here allocates unless a
context is actually activated.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = [
    "RequestContext",
    "new_trace_id",
    "current",
    "activate",
    "bind",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, unique per call)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class RequestContext:
    """Immutable correlation ids for one logical unit of work.

    ``trace_id`` groups everything a request (or a mine, or a refresh
    cycle) caused; ``request_id`` is the externally visible id — for
    HTTP traffic the value of the ``X-Request-Id`` header, which the
    server uses verbatim as the trace id so one ``grep`` finds both.
    """

    trace_id: str
    request_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The context as a plain, picklable dict (for worker payloads)."""
        out: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, state: Mapping[str, Any]) -> "RequestContext":
        """Rebuild a context from :meth:`to_dict` output."""
        request_id = state.get("request_id")
        return cls(
            trace_id=str(state.get("trace_id", "")),
            request_id=None if request_id is None else str(request_id),
        )


_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current() -> Optional[RequestContext]:
    """The innermost active context on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(context: RequestContext) -> Iterator[RequestContext]:
    """Make ``context`` the thread's ambient context for the block."""
    stack = _stack()
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()


@contextmanager
def bind(
    trace_id: Optional[str] = None, request_id: Optional[str] = None
) -> Iterator[RequestContext]:
    """Activate a context, minting a fresh trace id when none is given.

    Convenience wrapper over :func:`activate` for entry points: the HTTP
    handler calls ``bind(trace_id=header, request_id=header)`` and the
    CLI calls plain ``bind()`` to give a whole mine one trace id.
    """
    context = RequestContext(
        trace_id=trace_id if trace_id else new_trace_id(),
        request_id=request_id,
    )
    with activate(context):
        yield context
