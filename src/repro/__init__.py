"""repro — Distance-based association rules over interval data.

A full reproduction of R. J. Miller and Y. Yang, "Association Rules over
Interval Data", SIGMOD 1997: the adaptive BIRCH/ACF clustering substrate,
the two-phase distance-based association rule (DAR) miner, the classical
Apriori and Srikant–Agrawal quantitative-rule baselines, and the workload
generators behind the paper's evaluation.

Quickstart::

    import repro

    relation, _ = repro.make_planted_rule_relation(seed=7)
    result = repro.mine(relation)
    for rule in result.rules_sorted()[:5]:
        print(rule)

:func:`repro.mine` is the stable facade; :class:`repro.DARMiner` is the
underlying two-phase engine when you need to hold on to configuration or
intermediate state.  See README.md for the architecture overview and
EXPERIMENTS.md for the paper-versus-measured record of every reproduced
table and figure.
"""

from repro.api import mine
from repro.core import (
    DARConfig,
    DARMiner,
    DARResult,
    DistanceRule,
    GQARConfig,
    GQARMiner,
    GQARResult,
    GQARRule,
    StreamingDARMiner,
)
from repro.mixed import MixedDARConfig, MixedDARMiner
from repro.birch import BirchClusterer, BirchOptions, BirchResult
from repro.classic import TransactionSet, mine_classical_rules, relation_to_transactions
from repro.data import (
    AttributeKind,
    AttributePartition,
    Relation,
    Schema,
    default_partitions,
    make_clustered_relation,
    make_planted_rule_relation,
    make_wbcd_like,
)
from repro.quantitative import QARConfig, QARMiner
from repro.report import describe_result, describe_rule
from repro.resilience import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    CorruptResultError,
    DataError,
    ErrorBudgetExceeded,
    IngestError,
    ReproError,
    ResourceExhaustedError,
    ValidationError,
)
from repro import serve
from repro.serve import RuleQuery, RuleSnapshot

__version__ = "1.0.0"

__all__ = [
    "mine",
    "DARConfig",
    "DARMiner",
    "DARResult",
    "DistanceRule",
    "GQARConfig",
    "GQARMiner",
    "GQARResult",
    "GQARRule",
    "StreamingDARMiner",
    "MixedDARConfig",
    "MixedDARMiner",
    "BirchClusterer",
    "BirchOptions",
    "BirchResult",
    "TransactionSet",
    "mine_classical_rules",
    "relation_to_transactions",
    "AttributeKind",
    "AttributePartition",
    "Relation",
    "Schema",
    "default_partitions",
    "make_clustered_relation",
    "make_planted_rule_relation",
    "make_wbcd_like",
    "QARConfig",
    "QARMiner",
    "describe_result",
    "describe_rule",
    "ReproError",
    "DataError",
    "ValidationError",
    "IngestError",
    "ErrorBudgetExceeded",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "ResourceExhaustedError",
    "CorruptResultError",
    "serve",
    "RuleQuery",
    "RuleSnapshot",
    "__version__",
]
