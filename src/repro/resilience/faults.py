"""Deterministic fault injection for crash-safety tests.

The production code is instrumented with named *fault points* — cheap
:func:`fire` calls at the places where a real deployment dies: between
per-partition tree updates mid-batch, inside the Phase II vector kernel,
and between a checkpoint's temp-file write and its atomic rename.  With no
injector installed a fault point is one dict lookup; tests install a
:class:`FaultInjector` to make a chosen point raise
:class:`~repro.resilience.errors.InjectedFault` after a chosen number of
hits, which is how the suite kills scans mid-stream at exact, reproducible
positions.

Instrumented points:

==========================  ====================================================
``streaming.update``        start of ``StreamingDARMiner.update_arrays``
``streaming.partition``     before each per-partition tree insert (mid-batch)
``phase2.kernel``           start of the Phase II vector-kernel path
``checkpoint.replace``      after the temp checkpoint is written, before rename
``parallel.pool``           worker-pool creation in the parallel coordinator
``parallel.worker``         entry of each parallel worker task (inherited
                            across ``fork``, so the fault fires inside the
                            worker process)
``pool.submit``             before each task submission to the process pool
                            (exercises the pool retry-with-backoff rung)
``serve.request``           inside the HTTP handler, after admission control
                            grants the request (latency/failure injection
                            while the in-flight slot is held; never fires
                            for the exempt ``/healthz``/``/metrics`` routes)
``publisher.refresh``       start of ``SnapshotPublisher.refresh`` (compile
                            failure injection for the supervised loop)
``columnar.matrix``         entry of ``ColumnStore.matrix`` (out-of-core
                            backend failure; exercises the guard ladder's
                            materialize-and-retry rung)
==========================  ====================================================

Beyond crashing, a plan can model *latency* two ways: ``slow_at`` sleeps
per hit (through an injectable clock, so a :class:`FakeClock` makes the
delay free), and ``block_at`` parks every hit on a :class:`Gate` until
the test releases it — the deterministic way to hold N requests in
flight concurrently without a single real sleep.

The module also carries the file- and row-corruption helpers the
checkpoint and quarantine tests use: :func:`truncate_file`,
:func:`flip_byte` and :func:`poison_csv`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Sequence, Union

from repro.resilience.errors import InjectedFault

__all__ = [
    "FAIL_AT_ENV",
    "FaultPlan",
    "FaultInjector",
    "Gate",
    "fire",
    "install",
    "install_from_env",
    "uninstall",
    "injected",
    "truncate_file",
    "flip_byte",
    "poison_csv",
]

PathLike = Union[str, Path]

#: Environment switch for arming fault points from outside the process:
#: ``REPRO_FAIL_AT=point[:after][,point2[:after2]...]`` (see
#: :func:`install_from_env`).  The CI postmortem smoke test uses this to
#: crash a real CLI run at an exact position without touching test code.
FAIL_AT_ENV = "REPRO_FAIL_AT"


class Gate:
    """A release-controlled barrier fault plans can park threads on.

    Each waiter blocks on an internal event until :meth:`release`; the
    test side synchronizes with :meth:`wait_for_waiters` (condition
    variable, no polling), so a concurrency drill can assert "exactly K
    requests are now held in flight" before acting.  ``max_wait``
    bounds each parked thread so a buggy test cannot deadlock the
    suite.
    """

    def __init__(self, max_wait: float = 30.0):
        self.max_wait = max_wait
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._waiters = 0
        self._total = 0

    @property
    def waiters(self) -> int:
        """Threads currently parked on the gate."""
        with self._lock:
            return self._waiters

    @property
    def total_arrivals(self) -> int:
        """Threads that have ever reached the gate (parked or passed)."""
        with self._lock:
            return self._total

    def wait_for_waiters(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` threads are parked; ``False`` on timeout."""
        with self._changed:
            return self._changed.wait_for(
                lambda: self._waiters >= count, timeout=timeout
            )

    def release(self) -> None:
        """Let every current and future arrival through."""
        self._event.set()
        with self._changed:
            self._changed.notify_all()

    def arrive(self) -> None:
        """Park the calling thread until release (the plan-side hook)."""
        with self._changed:
            self._total += 1
            self._waiters += 1
            self._changed.notify_all()
        try:
            self._event.wait(timeout=self.max_wait)
        finally:
            with self._changed:
                self._waiters -= 1
                self._changed.notify_all()


class FaultPlan:
    """One scheduled failure: trip after ``after`` hits, ``times`` times.

    ``after=0`` trips on the very first hit; ``times=None`` keeps tripping
    on every hit once armed (a hard outage rather than a transient one).
    A plan with ``delay_seconds > 0`` models a *slowdown* instead of a
    crash: each trip sleeps rather than raising — the tool the regression
    tests use to make a scenario measurably slower on demand.  The sleep
    goes through ``clock`` when one is supplied (a
    :class:`~repro.resilience.runtime.FakeClock` makes the delay free and
    observable); a plan with a :class:`Gate` parks the thread instead.
    """

    def __init__(self, after: int = 0, times: Optional[int] = 1,
                 message: str = "injected fault",
                 delay_seconds: float = 0.0,
                 clock=None,
                 gate: Optional[Gate] = None):
        if after < 0:
            raise ValueError("after must be non-negative")
        if times is not None and times < 1:
            raise ValueError("times must be positive (or None for 'always')")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        self.after = after
        self.times = times
        self.message = message
        self.delay_seconds = delay_seconds
        self.clock = clock
        self.gate = gate
        self.hits = 0
        self.trips = 0

    def hit(self, point: str) -> None:
        """Register a hit at ``point``; raise, sleep or park when armed."""
        self.hits += 1
        if self.hits <= self.after:
            return
        if self.times is not None and self.trips >= self.times:
            return
        self.trips += 1
        if self.gate is not None:
            self.gate.arrive()
            return
        if self.delay_seconds > 0:
            if self.clock is not None:
                self.clock.sleep(self.delay_seconds)
            else:
                time.sleep(self.delay_seconds)
            return
        error = InjectedFault(f"{point}: {self.message} (hit {self.hits})")
        # Let the flight recorder see the trip (and cut a postmortem
        # bundle) while the pre-crash ring is still intact.  Imported
        # lazily: faults must stay importable with zero repro.obs cost.
        from repro.obs import flight as obs_flight

        obs_flight.record(
            "fault", point=point, hits=self.hits, trips=self.trips
        )
        obs_flight.dump_on_error(f"fault-{point}", error)
        raise error


class FaultInjector:
    """A set of named fault plans, installed process-wide for a test."""

    def __init__(self) -> None:
        self._plans: Dict[str, FaultPlan] = {}

    def fail_at(self, point: str, *, after: int = 0, times: Optional[int] = 1,
                message: str = "injected fault") -> "FaultInjector":
        """Arm ``point`` to raise after ``after`` prior hits (chainable)."""
        self._plans[point] = FaultPlan(after=after, times=times, message=message)
        return self

    def slow_at(self, point: str, seconds: float, *, after: int = 0,
                times: Optional[int] = None, clock=None) -> "FaultInjector":
        """Arm ``point`` to sleep ``seconds`` per hit instead of raising.

        ``times=None`` (the default) slows *every* hit once armed — the
        shape of a genuine performance regression, which is what the
        ``repro bench compare`` tests inject to prove the gate trips.
        With a ``clock`` the sleep goes through it, so a
        :class:`~repro.resilience.runtime.FakeClock` turns the delay
        into an instant, observable time jump (the chaos suite's
        no-real-sleeps latency injection).
        """
        self._plans[point] = FaultPlan(
            after=after, times=times, delay_seconds=seconds, clock=clock,
            message=f"injected delay of {seconds}s",
        )
        return self

    def block_at(self, point: str, *, after: int = 0,
                 times: Optional[int] = None,
                 max_wait: float = 30.0) -> Gate:
        """Arm ``point`` to park each hit on a :class:`Gate`; returns it.

        The returned gate is the test's handle: ``wait_for_waiters(K)``
        to synchronize with K threads held at the point, ``release()``
        to let them (and all later arrivals) through.  This is how the
        overload drill holds exactly K requests in flight while the
        excess is shed — deterministically, with no sleeps.
        """
        gate = Gate(max_wait=max_wait)
        self._plans[point] = FaultPlan(
            after=after, times=times, gate=gate,
            message="gated (blocked until release)",
        )
        return gate

    def hits(self, point: str) -> int:
        """Hits recorded at ``point`` (0 if unarmed)."""
        plan = self._plans.get(point)
        return plan.hits if plan is not None else 0

    def fire(self, point: str) -> None:
        """Trigger the plan armed at ``point``, if any."""
        plan = self._plans.get(point)
        if plan is not None:
            plan.hit(point)


_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Clear the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = None


def fire(point: str) -> None:
    """Production-side hook: a no-op unless a test installed an injector."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point)


def install_from_env(env: Optional[Mapping[str, str]] = None) -> Optional[FaultInjector]:
    """Arm fault points named by ``REPRO_FAIL_AT`` and install the injector.

    The variable holds comma-separated ``point[:after]`` entries —
    ``REPRO_FAIL_AT=streaming.partition:3`` trips
    ``streaming.partition`` after 3 clean hits, exactly like
    ``FaultInjector().fail_at("streaming.partition", after=3)``.  Returns
    the installed injector, or ``None`` when the variable is unset or
    empty (nothing is installed).  A malformed entry raises
    ``ValueError`` rather than silently running fault-free: an armed CI
    crash drill must never pass because of a typo.
    """
    raw = (env if env is not None else os.environ).get(FAIL_AT_ENV, "").strip()
    if not raw:
        return None
    injector = FaultInjector()
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, _, after_text = entry.partition(":")
        point = point.strip()
        if not point:
            raise ValueError(f"{FAIL_AT_ENV}: empty fault point in {raw!r}")
        after = 0
        if after_text:
            try:
                after = int(after_text)
            except ValueError:
                raise ValueError(
                    f"{FAIL_AT_ENV}: bad hit count {after_text!r} in {entry!r}"
                ) from None
        injector.fail_at(
            point, after=after, message=f"armed via {FAIL_AT_ENV}"
        )
    install(injector)
    return injector


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of a ``with`` block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


# ----------------------------------------------------------------------
# File and row corruption helpers
# ----------------------------------------------------------------------


def truncate_file(path: PathLike, keep_bytes: int) -> None:
    """Chop ``path`` down to its first ``keep_bytes`` bytes in place."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(keep_bytes, 0)])


def flip_byte(path: PathLike, offset: int) -> None:
    """XOR one byte of ``path`` (negative offsets count from the end)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path}: cannot flip a byte of an empty file")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def poison_csv(
    path: PathLike,
    out_path: PathLike,
    rows: Sequence[int],
    mode: str = "text",
) -> None:
    """Copy a CSV, corrupting the given 0-based *data* rows.

    Data rows are counted after the header lines (the ``#`` schema line,
    if present, and the column-name row).  Modes: ``"text"`` replaces the
    first cell with unparseable text, ``"nan"`` with a NaN literal,
    ``"short"`` drops the row's last cell.
    """
    if mode not in ("text", "nan", "short"):
        raise ValueError(f"unknown poison mode {mode!r}")
    wanted = set(rows)
    lines = Path(path).read_text().splitlines(keepends=True)
    out = []
    data_index = 0
    for i, line in enumerate(lines):
        is_header = line.startswith("#") or (i == 0) or (
            i == 1 and lines[0].startswith("#")
        )
        if is_header or not line.strip():
            out.append(line)
            continue
        if data_index in wanted:
            ending = "\n" if line.endswith("\n") else ""
            cells = line.rstrip("\n").split(",")
            if mode == "text":
                cells[0] = "<<poisoned>>"
            elif mode == "nan":
                cells[0] = "nan"
            else:  # short
                cells = cells[:-1]
            out.append(",".join(cells) + ending)
        else:
            out.append(line)
        data_index += 1
    Path(out_path).write_text("".join(out))
