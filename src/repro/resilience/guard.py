"""The graceful-degradation ladder around the batch miner.

:func:`guarded_mine` wraps :meth:`~repro.core.miner.DARMiner.mine` so a
mining run degrades in controlled, *recorded* steps instead of dying:

1. **Validation first.**  Empty relations and non-finite columns raise a
   precise :class:`~repro.resilience.errors.ValidationError` before any
   clustering starts (this lives in the miner itself; the guard just lets
   it through untouched).
2. **Worker-pool failure → serial engine.**  With ``engine="parallel"``
   a dead worker process, a pool that cannot start, or a shared-memory
   failure raises
   :class:`~repro.resilience.errors.WorkerPoolError`; the guard retries
   the same attempt on the serial :class:`~repro.core.miner.DARMiner`
   (which is decision-identical, just slower) and records the rung.
   Data errors raised *inside* a worker propagate unchanged — they would
   recur serially.
3. **Columnar backend failure → in-memory retry.**  When mining a
   memory-mapped :class:`~repro.data.columnar.ColumnStore`, a backend
   failure (unreadable part file, corrupt manifest, injected fault)
   raises :class:`~repro.resilience.errors.ColumnStoreError`; the guard
   materializes the store with ``to_relation()`` and retries the same
   attempt on the in-memory serial engine — decision-identical, just no
   longer out-of-core — and records the rung.  If materialization
   itself fails, the error propagates: the backing files are gone.
4. **Memory exhaustion → coarser clustering.**  A ``MemoryError`` during
   a run escalates every density threshold by ``escalation_factor`` —
   coarser clusters mean fewer leaf entries and smaller trees — waits
   ``backoff_seconds``, and retries, up to ``max_retries`` times.  The
   hard cap turns persistent exhaustion into
   :class:`~repro.resilience.errors.ResourceExhaustedError` rather than
   an infinite ladder.  Every rung is recorded in
   ``result.phase2.events``.
5. **Kernel failure → scalar engine.**  Handled inside the miner (the
   vector Phase II kernel falls back to the scalar distance engine and
   records the event); the guard surfaces those events unchanged.
6. **No partially-corrupt results.**  :func:`validate_result` checks the
   structural invariants of the :class:`~repro.core.miner.DARResult`
   before it is returned; a violation raises
   :class:`~repro.resilience.errors.CorruptResultError` instead of
   handing broken data downstream.

On a clean first attempt the guard is a transparent pass-through: the
result is exactly what ``DARMiner(config).mine(...)`` returns.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.config import DARConfig
from repro.core.miner import DARMiner, DARResult
from repro.data.relation import AttributePartition, Relation
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs.trace import span
from repro.resilience.errors import (
    ColumnStoreError,
    CorruptResultError,
    ResourceExhaustedError,
    WorkerPoolError,
)
from repro.resilience.events import GuardEvent, record_guard_event

__all__ = ["GuardPolicy", "GuardEvent", "guarded_mine", "validate_result"]


@dataclass(frozen=True)
class GuardPolicy:
    """How far the degradation ladder may climb."""

    max_retries: int = 3
    """Retries after the first attempt before giving up."""
    escalation_factor: float = 4.0
    """Density-threshold multiplier applied per memory-exhaustion retry."""
    backoff_seconds: float = 0.0
    """Pause before each retry (lets an external memory spike pass)."""
    pool_retries: int = 0
    """Fresh-pool retries of a ``WorkerPoolError`` (with jittered
    exponential backoff) *before* the serial-fallback rung engages."""
    pool_backoff_seconds: float = 0.05
    """Base pause of the pool retry backoff (doubles per attempt)."""
    task_timeout_seconds: Optional[float] = None
    """Per-task wall-time bound inside the worker pool (``None`` = no
    bound); a task outliving it surfaces as a ``WorkerPoolError``."""

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.escalation_factor <= 1.0:
            raise ValueError("escalation_factor must exceed 1 for progress")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.pool_retries < 0:
            raise ValueError("pool_retries must be non-negative")
        if self.pool_backoff_seconds < 0:
            raise ValueError("pool_backoff_seconds must be non-negative")
        if self.task_timeout_seconds is not None and self.task_timeout_seconds <= 0:
            raise ValueError("task_timeout_seconds must be positive (or None)")

    def pool_retry_policy(self):
        """The backend-facing :class:`~repro.resilience.runtime.RetryPolicy`
        (``None`` when pool retries are disabled)."""
        if self.pool_retries == 0:
            return None
        from repro.resilience.runtime import RetryPolicy

        return RetryPolicy(
            retries=self.pool_retries,
            base_delay=self.pool_backoff_seconds,
            max_delay=max(self.pool_backoff_seconds * 8, 1e-9),
        )


def _escalated(config: DARConfig, factor: float) -> DARConfig:
    """``config`` with every density threshold coarsened by ``factor``.

    Both the data-derived path (``density_fraction``) and any explicit
    per-partition overrides scale, so the escalation bites regardless of
    how thresholds were specified.
    """
    return replace(
        config,
        density_fraction=config.density_fraction * factor,
        density_thresholds={
            name: value * factor
            for name, value in config.density_thresholds.items()
        },
    )


def validate_result(result: DARResult) -> None:
    """Check a result's structural invariants; raise ``CorruptResultError``.

    A result that fails here must never reach callers: every rule's
    clusters must exist in the result's cluster sets, every degree must be
    finite and non-negative, and per-consequent degrees must be consistent
    with the rule's overall degree.
    """
    known_uids = {
        cluster.uid
        for clusters in result.all_clusters.values()
        for cluster in clusters
    }
    if result.frequency_count < 1:
        raise CorruptResultError(
            f"frequency_count is {result.frequency_count}, must be >= 1"
        )
    for name, value in result.density_thresholds.items():
        if not math.isfinite(value) or value <= 0:
            raise CorruptResultError(
                f"density threshold for {name!r} is {value!r}, not a "
                f"positive finite number"
            )
    for rule in result.rules:
        members = tuple(rule.antecedent) + tuple(rule.consequent)
        for cluster in members:
            if cluster.uid not in known_uids:
                raise CorruptResultError(
                    f"rule {rule} references cluster uid {cluster.uid} "
                    f"absent from the result's cluster sets"
                )
        if not math.isfinite(rule.degree) or rule.degree < 0:
            raise CorruptResultError(
                f"rule {rule} has non-finite or negative degree {rule.degree!r}"
            )
        consequent_uids = {cluster.uid for cluster in rule.consequent}
        if set(rule.degrees) != consequent_uids:
            raise CorruptResultError(
                f"rule {rule} has per-consequent degrees for uids "
                f"{sorted(rule.degrees)} but consequents {sorted(consequent_uids)}"
            )
        for uid, degree in rule.degrees.items():
            if not math.isfinite(degree) or degree < 0:
                raise CorruptResultError(
                    f"rule {rule} has non-finite degree {degree!r} for "
                    f"consequent uid {uid}"
                )
            if degree > rule.degree:
                raise CorruptResultError(
                    f"rule {rule} has per-consequent degree {degree} above "
                    f"its overall degree {rule.degree}"
                )


def _make_miner(
    config: DARConfig,
    engine: str,
    workers: Optional[int],
    policy: GuardPolicy,
) -> DARMiner:
    """The miner for one attempt: serial, or the parallel coordinator."""
    if engine == "serial":
        return DARMiner(config)
    if engine == "parallel":
        from repro.parallel.executor import resolve_workers
        from repro.parallel.miner import ParallelDARMiner

        # workers=None/0 → REPRO_WORKERS, else os.cpu_count() (see
        # resolve_workers for the full resolution order).
        return ParallelDARMiner(
            config,
            workers=resolve_workers(workers),
            pool_retry=policy.pool_retry_policy(),
            task_timeout=policy.task_timeout_seconds,
        )
    raise ValueError(
        f"unknown mining engine {engine!r}; expected 'serial' or 'parallel'"
    )


def guarded_mine(
    relation: Relation,
    *,
    config: Optional[DARConfig] = None,
    partitions: Optional[Sequence[AttributePartition]] = None,
    targets: Optional[Sequence[str]] = None,
    policy: Optional[GuardPolicy] = None,
    engine: str = "serial",
    workers: Optional[int] = None,
) -> DARResult:
    """Mine with the degradation ladder; see the module docstring.

    ``engine="parallel"`` runs :class:`repro.parallel.ParallelDARMiner`
    with ``workers`` processes (default: the machine's core count); a
    :class:`~repro.resilience.errors.WorkerPoolError` drops the run to
    the serial engine and records the event.
    """
    if config is None:
        config = DARConfig()
    if policy is None:
        policy = GuardPolicy()
    if engine not in ("serial", "parallel"):
        raise ValueError(
            f"unknown mining engine {engine!r}; expected 'serial' or 'parallel'"
        )

    events: List[GuardEvent] = []
    attempt_config = config
    attempt_engine = engine
    obs_log.info("mine.start", rows=len(relation), engine=engine)
    with span("mine", rows=len(relation), engine=engine) as mine_span:
        for attempt in range(policy.max_retries + 1):
            try:
                with span(
                    "mine.attempt", attempt=attempt + 1, engine=attempt_engine
                ):
                    try:
                        result = _make_miner(
                            attempt_config, attempt_engine, workers, policy
                        ).mine(relation, partitions=partitions, targets=targets)
                    except WorkerPoolError as error:
                        attempt_engine = "serial"
                        events.append(record_guard_event(
                            "worker_pool_failure",
                            f"parallel worker pool failed ({error}); "
                            f"degraded to the serial engine",
                        ))
                        result = DARMiner(attempt_config).mine(
                            relation, partitions=partitions, targets=targets
                        )
                    except ColumnStoreError as error:
                        if not hasattr(relation, "to_relation"):
                            raise  # not an out-of-core input; a real bug
                        events.append(record_guard_event(
                            "columnar_fallback",
                            f"columnar backend failed ({error}); "
                            f"materialized the store in memory and retried",
                        ))
                        # Materialization may raise ColumnStoreError too —
                        # then the files really are gone and it propagates.
                        relation = relation.to_relation()
                        result = DARMiner(attempt_config).mine(
                            relation, partitions=partitions, targets=targets
                        )
            except MemoryError as error:
                if attempt >= policy.max_retries:
                    exhausted = ResourceExhaustedError(
                        f"mining ran out of memory and stayed exhausted after "
                        f"{policy.max_retries} density escalation(s) of "
                        f"x{policy.escalation_factor:g}: {error}"
                    )
                    record_guard_event(
                        "memory_escalation",
                        f"memory exhausted on attempt {attempt + 1}; "
                        f"escalation budget spent",
                    )
                    obs_flight.dump_on_error("guarded-mine", exhausted)
                    raise exhausted from error
                attempt_config = _escalated(
                    attempt_config, policy.escalation_factor
                )
                events.append(record_guard_event(
                    "memory_escalation",
                    f"memory exhausted on attempt {attempt + 1}; escalated "
                    f"density thresholds x{policy.escalation_factor:g} and retried",
                ))
                if policy.backoff_seconds:
                    time.sleep(policy.backoff_seconds)
                continue
            result.phase2.events = events + result.phase2.events
            try:
                validate_result(result)
            except CorruptResultError as error:
                obs_flight.dump_on_error("guarded-mine", error)
                raise
            mine_span.set("attempts", attempt + 1)
            mine_span.set("rules", len(result.rules))
            obs_log.info(
                "mine.done",
                rules=len(result.rules),
                attempts=attempt + 1,
                degradations=len(events),
                seconds=round(result.phase2.seconds, 6),
            )
            return result
    raise AssertionError("unreachable")  # pragma: no cover
