"""Fault tolerance for the mining pipeline.

Four pieces, layered from the ground up:

- :mod:`repro.resilience.errors` — the typed error taxonomy every layer
  raises (``ReproError`` at the root; data errors double as ``ValueError``
  for backward compatibility).
- :mod:`repro.resilience.faults` — deterministic fault injection: named
  fault points in production code that tests can arm to kill a scan at an
  exact, reproducible position.
- :mod:`repro.resilience.checkpoint` — checksummed, atomically-written
  checkpoints; with ``ACFTree.state_dict`` these make streaming scans
  resumable with bit-identical results.
- :mod:`repro.resilience.sink` / :mod:`repro.resilience.guard` —
  quarantined ingestion with an error budget, and the graceful-degradation
  ladder wrapped around :func:`repro.mine`.
- :mod:`repro.resilience.runtime` — deterministic overload-control
  primitives on an injectable clock: deadlines, retry backoff, circuit
  breakers, and token-bucket load shedding (the serving layer's
  backpressure toolkit).

Only ``errors`` and ``faults`` are imported eagerly (they have no
dependency on ``repro.core``, which lets the core instrument fault points
without an import cycle); the heavier modules load on first attribute
access.
"""

from __future__ import annotations

from repro.resilience import faults
from repro.resilience.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    CircuitOpenError,
    CorruptResultError,
    DataError,
    DeadlineExceeded,
    ErrorBudgetExceeded,
    IngestError,
    InjectedFault,
    OverloadError,
    RejectedError,
    ReproError,
    ResourceExhaustedError,
    ValidationError,
)

__all__ = [
    "ReproError",
    "DataError",
    "ValidationError",
    "IngestError",
    "ErrorBudgetExceeded",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "ResourceExhaustedError",
    "CorruptResultError",
    "OverloadError",
    "RejectedError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "InjectedFault",
    "faults",
    # lazy (see __getattr__):
    "CheckpointInfo",
    "write_checkpoint",
    "read_checkpoint",
    "RowSink",
    "QuarantinedRow",
    "ErrorBudget",
    "Quarantine",
    "GuardPolicy",
    "guarded_mine",
    "validate_result",
    "Clock",
    "SystemClock",
    "FakeClock",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "Admission",
    "LoadShedder",
]

_LAZY = {
    "Clock": "repro.resilience.runtime",
    "SystemClock": "repro.resilience.runtime",
    "FakeClock": "repro.resilience.runtime",
    "Deadline": "repro.resilience.runtime",
    "RetryPolicy": "repro.resilience.runtime",
    "CircuitBreaker": "repro.resilience.runtime",
    "Admission": "repro.resilience.runtime",
    "LoadShedder": "repro.resilience.runtime",
    "CheckpointInfo": "repro.resilience.checkpoint",
    "write_checkpoint": "repro.resilience.checkpoint",
    "read_checkpoint": "repro.resilience.checkpoint",
    "RowSink": "repro.resilience.sink",
    "QuarantinedRow": "repro.resilience.sink",
    "ErrorBudget": "repro.resilience.sink",
    "Quarantine": "repro.resilience.sink",
    "GuardPolicy": "repro.resilience.guard",
    "guarded_mine": "repro.resilience.guard",
    "validate_result": "repro.resilience.guard",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
