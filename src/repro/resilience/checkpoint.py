"""Durable, checksummed checkpoints for the streaming miner.

The ACF Additivity Theorem (Eq. 7) means a serialized ACF-tree *is* a
complete checkpoint: leaf moments are the entire Phase I state, and
Phase II derives everything else from them.  This module provides the
container format; the structural state itself comes from
``ACFTree.state_dict`` / ``StreamingDARMiner`` (which serialize the exact
node graph, so a restored tree makes bit-identical routing decisions).

Container layout (all integers big-endian)::

    bytes 0..7    magic  b"REPROCKP"
    bytes 8..11   format version (uint32)
    bytes 12..15  CRC-32 of the payload (uint32)
    bytes 16..23  payload length in bytes (uint64)
    bytes 24..    payload: UTF-8 JSON of the state dict

Floats ride through JSON via Python's shortest-round-trip ``repr``, which
is exact for every finite ``float64`` — restored moments are bit-identical
to the saved ones.  Writes go to a temp file in the same directory and
are renamed into place, so a crash mid-save leaves the previous
checkpoint intact (the ``checkpoint.replace`` fault point sits between
the two steps so tests can prove it).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Union

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CheckpointInfo",
    "write_checkpoint",
    "read_checkpoint",
]

PathLike = Union[str, Path]

MAGIC = b"REPROCKP"
FORMAT_VERSION = 1
_HEADER = struct.Struct(">8sIIQ")


class CheckpointInfo:
    """What one ``write_checkpoint`` call did (for ``--stats`` reporting)."""

    __slots__ = ("path", "n_bytes", "seconds")

    def __init__(self, path: Path, n_bytes: int, seconds: float):
        self.path = path
        self.n_bytes = n_bytes
        self.seconds = seconds

    def __repr__(self) -> str:
        return (
            f"CheckpointInfo(path={str(self.path)!r}, n_bytes={self.n_bytes}, "
            f"seconds={self.seconds:.3f})"
        )


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to disk by fsyncing the containing directory.

    ``os.replace`` makes the swap atomic against concurrent readers, but
    the *rename itself* lives in the directory inode — until that is
    synced, a power loss can roll the directory back and lose a
    checkpoint the caller was told succeeded.  Directory fds are a POSIX
    notion; on platforms where opening a directory fails (Windows) the
    rename is already durable-enough by local convention and we skip.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_checkpoint(state: Dict[str, Any], path: PathLike) -> CheckpointInfo:
    """Serialize ``state`` to ``path`` atomically; returns size and timing."""
    import time

    started = time.perf_counter()
    path = Path(path)
    with span("checkpoint.save") as save_span:
        try:
            payload = json.dumps(state, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint state is not serializable: {error}"
            ) from error
        header = _HEADER.pack(MAGIC, FORMAT_VERSION, zlib.crc32(payload), len(payload))
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        # A crash between here and the rename leaves the previous checkpoint
        # untouched — that is the whole point of the temp-file dance.
        faults.fire("checkpoint.replace")
        os.replace(tmp, path)
        _fsync_directory(path.parent)
        n_bytes = len(header) + len(payload)
        seconds = time.perf_counter() - started
        save_span.set("bytes", n_bytes)
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_checkpoint_writes_total", help="Checkpoints written"
            )
            obs_metrics.inc(
                "repro_checkpoint_bytes_total",
                n_bytes,
                help="Total checkpoint bytes written",
                unit="bytes",
            )
            obs_metrics.inc(
                "repro_checkpoint_seconds_total",
                seconds,
                help="Wall seconds spent writing checkpoints",
                unit="seconds",
            )
        return CheckpointInfo(path=path, n_bytes=n_bytes, seconds=seconds)


def read_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Read and verify a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`CheckpointCorruptError` on a damaged file (bad magic,
    truncation, CRC mismatch, undecodable payload) and
    :class:`CheckpointVersionError` on an unknown format version.
    """
    path = Path(path)
    with span("checkpoint.load") as load_span:
        state = _read_verified(path, load_span)
    if obs_metrics.metrics_enabled():
        obs_metrics.inc("repro_checkpoint_reads_total", help="Checkpoints read")
    return state


def _read_verified(path: Path, load_span) -> Dict[str, Any]:
    """The body of :func:`read_checkpoint` (split out for span wrapping)."""
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"{path}: cannot read checkpoint: {error}") from error
    load_span.set("bytes", len(blob))
    if len(blob) < _HEADER.size:
        raise CheckpointCorruptError(
            f"{path}: file is {len(blob)} bytes, smaller than the "
            f"{_HEADER.size}-byte checkpoint header"
        )
    magic, version, crc, length = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointCorruptError(
            f"{path}: bad magic {magic!r} (not a repro checkpoint)"
        )
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(
            f"{path}: checkpoint format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"{path}: payload is {len(payload)} bytes, header promised {length} "
            f"(truncated or padded file)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointCorruptError(f"{path}: payload CRC mismatch (corrupt file)")
    try:
        state = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            f"{path}: payload passed CRC but is not valid JSON: {error}"
        ) from error
    if not isinstance(state, dict):
        raise CheckpointCorruptError(f"{path}: checkpoint payload is not an object")
    return state
