"""Structured degradation events shared by the guard ladder and the miner.

Historically ``result.phase2.events`` was a list of free-form strings.
:class:`GuardEvent` keeps that contract — ``str(event)`` is exactly the
old line, so ``--stats`` output and anything that greps it survive —
while adding a machine-readable ``kind`` (the same label the
``repro_degradation_events_total`` metric uses) and a UTC timestamp, and
each event is also emitted through the structured logger at WARN.

The class lives here, below both :mod:`repro.resilience.guard` and
:mod:`repro.core.miner`, because both layers record degradation events
(the guard's ladder rungs; the miner's kernel fallback) and guard
imports the miner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["GuardEvent", "record_guard_event"]


def _now_iso() -> str:
    """The current UTC time in ISO-8601 (second precision)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True, eq=False)
class GuardEvent:
    """One degradation-ladder step: what happened, as label and prose.

    ``kind`` is the stable machine label (``worker_pool_failure``,
    ``columnar_fallback``, ``memory_escalation``, ``kernel_fallback``);
    ``detail`` the human sentence older tooling shows verbatim;
    ``at_iso`` when it happened (UTC).

    The string protocol of the old free-form events is preserved:
    ``str(event)`` is the detail line, ``"memory" in event`` searches it,
    and an event compares equal to that line — so JSON exports round-trip
    and pre-existing assertions keep passing.
    """

    kind: str
    detail: str
    at_iso: str = field(default_factory=_now_iso)

    def __str__(self) -> str:
        return self.detail

    def __contains__(self, needle: str) -> bool:
        return needle in self.detail

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GuardEvent):
            return (self.kind, self.detail, self.at_iso) == (
                other.kind, other.detail, other.at_iso
            )
        if isinstance(other, str):
            return self.detail == other
        return NotImplemented

    def __hash__(self) -> int:
        # Hash like the detail string so string-equality stays consistent
        # with hashing (sets/dicts mixing events and their lines).
        return hash(self.detail)

    def to_dict(self) -> Dict[str, Any]:
        """The event as plain built-ins (JSON exports)."""
        return {"kind": self.kind, "detail": self.detail, "at_iso": self.at_iso}


def record_guard_event(kind: str, detail: str) -> GuardEvent:
    """Build a :class:`GuardEvent` and emit it through metrics + logs.

    One call site does all three things every degradation step needs:
    the ``repro_degradation_events_total{kind=}`` counter, a WARN-level
    ``mine.degraded`` log record, and the returned event object for
    ``result.phase2.events``.
    """
    from repro.obs import log as obs_log
    from repro.obs import metrics as obs_metrics

    obs_metrics.inc(
        "repro_degradation_events_total",
        help="Graceful-degradation events, by kind",
        kind=kind,
    )
    event = GuardEvent(kind=kind, detail=detail)
    obs_log.warn("mine.degraded", kind=kind, detail=detail)
    return event
