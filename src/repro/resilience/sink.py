"""Quarantined ingestion: divert bad rows instead of aborting the scan.

A :class:`RowSink` receives the rows an ingestion path could not use —
unparseable cells, wrong arity, non-finite values — together with a
structured reason, so a long scan survives dirty data without silently
dropping anything.  :class:`Quarantine` is the standard sink: it keeps
counts and reasons in memory, optionally appends one JSON line per row to
a quarantine file (flushed per record, so a crash loses nothing), and
enforces an :class:`ErrorBudget` — the scan aborts with
:class:`~repro.resilience.errors.ErrorBudgetExceeded` only once the bad
fraction of the stream passes a configured bound, never on the first
stray row.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, List, Optional, Sequence, Union

from repro.obs import metrics as obs_metrics
from repro.resilience.errors import ErrorBudgetExceeded

__all__ = ["RowSink", "QuarantinedRow", "ErrorBudget", "Quarantine"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class QuarantinedRow:
    """One diverted row: where it was, why, and what it contained."""

    row: int
    reason: str
    values: tuple = ()


class RowSink:
    """Interface for ingestion paths: where rejected rows go.

    Subclasses implement :meth:`divert`; :meth:`note_ok` lets the sink
    observe the good rows too, which is what makes a *fractional* error
    budget possible.
    """

    def divert(self, row: int, reason: str, values: Sequence = ()) -> None:
        """Record one bad row (abstract)."""
        raise NotImplementedError

    def note_ok(self, count: int = 1) -> None:  # pragma: no cover - trivial default
        """Record ``count`` good rows (default: ignore)."""
        pass


class ErrorBudget:
    """Abort-only-past-a-fraction policy for lenient ingestion.

    ``max_fraction`` is the tolerated bad-row fraction of the stream seen
    so far; ``grace_rows`` suppresses the check until enough rows have
    arrived for a fraction to be meaningful (otherwise the first row being
    bad is instantly 100%).  ``max_fraction=None`` disables the budget.
    """

    def __init__(self, max_fraction: Optional[float] = 0.05, grace_rows: int = 20):
        if max_fraction is not None and not 0.0 <= max_fraction <= 1.0:
            raise ValueError("max_fraction must be in [0, 1] (or None to disable)")
        if grace_rows < 1:
            raise ValueError("grace_rows must be positive")
        self.max_fraction = max_fraction
        self.grace_rows = grace_rows
        self.good = 0
        self.bad = 0

    @property
    def total(self) -> int:
        """Rows seen so far, good and bad."""
        return self.good + self.bad

    @property
    def bad_fraction(self) -> float:
        """Bad rows as a fraction of rows seen (0 when empty)."""
        return self.bad / self.total if self.total else 0.0

    def record_good(self, count: int = 1) -> None:
        """Count good rows."""
        self.good += count

    def record_bad(self, count: int = 1) -> None:
        """Count bad rows; raise once the budget is genuinely blown."""
        self.bad += count
        if self.max_fraction is None:
            return
        if self.total >= self.grace_rows and self.bad_fraction > self.max_fraction:
            raise ErrorBudgetExceeded(
                f"error budget exceeded: {self.bad} of {self.total} rows bad "
                f"({100.0 * self.bad_fraction:.1f}% > "
                f"{100.0 * self.max_fraction:.1f}% allowed)"
            )


@dataclass
class Quarantine(RowSink):
    """The standard row sink: in-memory record + optional JSONL file.

    >>> sink = Quarantine()
    >>> sink.divert(3, "unparseable value 'oops' for column 'age'", ("oops",))
    >>> sink.n_quarantined
    1
    """

    path: Optional[PathLike] = None
    budget: Optional[ErrorBudget] = None
    records: List[QuarantinedRow] = field(default_factory=list)
    reasons: Counter = field(default_factory=Counter)
    _handle: Optional[IO[str]] = field(default=None, repr=False)

    @property
    def n_quarantined(self) -> int:
        """Number of rows quarantined so far."""
        return len(self.records)

    def divert(self, row: int, reason: str, values: Sequence = ()) -> None:
        """Record, persist and meter one bad row; may blow the budget."""
        record = QuarantinedRow(row=row, reason=reason, values=tuple(values))
        self.records.append(record)
        obs_metrics.inc(
            "repro_quarantined_rows_total", help="Rows diverted to quarantine"
        )
        # Aggregate by the reason's shape, not its row-specific payload.
        self.reasons[reason.split(":")[0] if ":" in reason else reason] += 1
        if self.path is not None:
            if self._handle is None:
                self._handle = Path(self.path).open("a")
            self._handle.write(
                json.dumps(
                    {
                        "row": record.row,
                        "reason": record.reason,
                        "values": [str(v) for v in record.values],
                    }
                )
                + "\n"
            )
            self._handle.flush()
        if self.budget is not None:
            try:
                self.budget.record_bad()
            except ErrorBudgetExceeded:
                self.close()
                raise

    def note_ok(self, count: int = 1) -> None:
        """Meter good rows and feed the error budget."""
        obs_metrics.inc(
            "repro_rows_ok_total", count, help="Rows accepted by lenient ingestion"
        )
        if self.budget is not None:
            self.budget.record_good(count)

    def rows(self) -> List[int]:
        """Quarantined row numbers, in arrival order."""
        return [record.row for record in self.records]

    def summary(self) -> str:
        """One line for reports: count plus the leading reasons."""
        if not self.records:
            return "0 rows quarantined"
        top = ", ".join(
            f"{reason} x{count}" for reason, count in self.reasons.most_common(3)
        )
        return f"{self.n_quarantined} rows quarantined ({top})"

    def close(self) -> None:
        """Flush and close the JSONL sidecar, if open."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
