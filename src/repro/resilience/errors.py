"""The typed error taxonomy of the resilience layer.

Every failure the mining pipeline can surface deliberately derives from
:class:`ReproError`, so callers can write one ``except ReproError`` guard
around a long-running job and know that anything else escaping is a bug,
not an operating condition.  The data-shaped errors additionally derive
from ``ValueError`` so code (and tests) written against the historical
``raise ValueError`` behaviour keeps working unchanged.

Taxonomy::

    ReproError
    ├── DataError(ValueError)        — malformed input at a file/row boundary
    │   ├── ValidationError          — pre-flight relation validation failed
    │   ├── IngestError              — a specific row could not be ingested
    │   └── ErrorBudgetExceeded      — too many bad rows; lenient run aborted
    ├── CheckpointError              — a checkpoint could not be used
    │   ├── CheckpointCorruptError   — truncated payload / CRC mismatch
    │   └── CheckpointVersionError   — format version is not understood
    ├── ResourceExhaustedError       — degradation ladder ran out of rungs
    ├── WorkerPoolError              — the parallel worker pool died or jammed
    ├── ColumnStoreError             — the out-of-core columnar backend failed
    ├── CorruptResultError           — a result failed its integrity check
    ├── OverloadError                — work refused to protect the process
    │   ├── RejectedError            — admission control shed the request
    │   ├── DeadlineExceeded         — a per-request deadline expired
    │   └── CircuitOpenError         — a circuit breaker is refusing calls
    └── InjectedFault                — raised by the fault-injection harness

The three overload errors carry a ``retry_after`` hint (seconds, possibly
``None``) so transport layers can translate them into honest backpressure
(``Retry-After`` headers) instead of silent queueing.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "DataError",
    "ValidationError",
    "IngestError",
    "ErrorBudgetExceeded",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "ResourceExhaustedError",
    "WorkerPoolError",
    "ColumnStoreError",
    "CorruptResultError",
    "OverloadError",
    "RejectedError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every deliberate failure raised by this package."""


class DataError(ReproError, ValueError):
    """Malformed input data (file-level or row-level)."""


class ValidationError(DataError):
    """A relation failed pre-flight validation (empty, all-NaN column, ...)."""


class IngestError(DataError):
    """A specific input row could not be parsed or ingested."""


class ErrorBudgetExceeded(IngestError):
    """Lenient ingestion aborted: the bad-row fraction exceeded the budget."""


class CheckpointError(ReproError):
    """A checkpoint file could not be written or restored."""


class CheckpointCorruptError(CheckpointError):
    """Checkpoint payload is damaged (truncation, CRC mismatch, bad magic)."""


class CheckpointVersionError(CheckpointError):
    """Checkpoint was written by an incompatible format version."""


class ResourceExhaustedError(ReproError):
    """The memory degradation ladder retried up to its cap and still failed."""


class WorkerPoolError(ReproError):
    """The parallel worker pool failed as *infrastructure*.

    Raised when a worker process dies (``BrokenProcessPool``), the pool
    cannot be created, or a shared-memory segment cannot be attached.
    Data-shaped errors raised *inside* a worker (``ValidationError`` and
    friends) propagate as themselves — retrying them on the serial engine
    would fail identically, so the degradation ladder only catches this
    class.
    """


class ColumnStoreError(ReproError):
    """The out-of-core columnar backend failed as *infrastructure*.

    Raised when a store directory cannot be opened (missing or corrupt
    manifest, truncated column part files) or a memory-mapped read fails
    mid-scan.  Like :class:`WorkerPoolError`, this marks a backend
    problem rather than bad data: the guarded driver reacts by
    materializing the store into an in-memory relation and retrying,
    so a flaky disk degrades throughput instead of failing the job.
    """


class CorruptResultError(ReproError):
    """A mining result failed its internal consistency check.

    The guarded driver raises this instead of returning a partially
    corrupt :class:`~repro.core.miner.DARResult`.
    """


class OverloadError(ReproError):
    """Work was refused (not failed) to keep the process healthy.

    ``retry_after`` is the caller's backoff hint in seconds — ``None``
    when the refusing component cannot estimate one.  Subclasses say
    *why* the work was refused; all of them mean "try again later, the
    input was fine".
    """

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class RejectedError(OverloadError):
    """Admission control shed the request before any work started.

    ``reason`` distinguishes the two shedding mechanisms: ``"inflight"``
    (the bounded in-flight gauge was full — HTTP 503) and ``"rate"``
    (the token bucket was empty — HTTP 429).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "inflight",
        retry_after: Optional[float] = None,
    ):
        super().__init__(message, retry_after=retry_after)
        self.reason = reason


class DeadlineExceeded(OverloadError):
    """A per-request deadline expired before the work finished."""


class CircuitOpenError(OverloadError):
    """A circuit breaker is open: recent calls failed, new ones are refused."""


class InjectedFault(ReproError):
    """Deterministic failure raised by :mod:`repro.resilience.faults`."""
