"""The typed error taxonomy of the resilience layer.

Every failure the mining pipeline can surface deliberately derives from
:class:`ReproError`, so callers can write one ``except ReproError`` guard
around a long-running job and know that anything else escaping is a bug,
not an operating condition.  The data-shaped errors additionally derive
from ``ValueError`` so code (and tests) written against the historical
``raise ValueError`` behaviour keeps working unchanged.

Taxonomy::

    ReproError
    ├── DataError(ValueError)        — malformed input at a file/row boundary
    │   ├── ValidationError          — pre-flight relation validation failed
    │   ├── IngestError              — a specific row could not be ingested
    │   └── ErrorBudgetExceeded      — too many bad rows; lenient run aborted
    ├── CheckpointError              — a checkpoint could not be used
    │   ├── CheckpointCorruptError   — truncated payload / CRC mismatch
    │   └── CheckpointVersionError   — format version is not understood
    ├── ResourceExhaustedError       — degradation ladder ran out of rungs
    ├── WorkerPoolError              — the parallel worker pool died or jammed
    ├── CorruptResultError           — a result failed its integrity check
    └── InjectedFault                — raised by the fault-injection harness
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "ValidationError",
    "IngestError",
    "ErrorBudgetExceeded",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "ResourceExhaustedError",
    "WorkerPoolError",
    "CorruptResultError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every deliberate failure raised by this package."""


class DataError(ReproError, ValueError):
    """Malformed input data (file-level or row-level)."""


class ValidationError(DataError):
    """A relation failed pre-flight validation (empty, all-NaN column, ...)."""


class IngestError(DataError):
    """A specific input row could not be parsed or ingested."""


class ErrorBudgetExceeded(IngestError):
    """Lenient ingestion aborted: the bad-row fraction exceeded the budget."""


class CheckpointError(ReproError):
    """A checkpoint file could not be written or restored."""


class CheckpointCorruptError(CheckpointError):
    """Checkpoint payload is damaged (truncation, CRC mismatch, bad magic)."""


class CheckpointVersionError(CheckpointError):
    """Checkpoint was written by an incompatible format version."""


class ResourceExhaustedError(ReproError):
    """The memory degradation ladder retried up to its cap and still failed."""


class WorkerPoolError(ReproError):
    """The parallel worker pool failed as *infrastructure*.

    Raised when a worker process dies (``BrokenProcessPool``), the pool
    cannot be created, or a shared-memory segment cannot be attached.
    Data-shaped errors raised *inside* a worker (``ValidationError`` and
    friends) propagate as themselves — retrying them on the serial engine
    would fail identically, so the degradation ladder only catches this
    class.
    """


class CorruptResultError(ReproError):
    """A mining result failed its internal consistency check.

    The guarded driver raises this instead of returning a partially
    corrupt :class:`~repro.core.miner.DARResult`.
    """


class InjectedFault(ReproError):
    """Deterministic failure raised by :mod:`repro.resilience.faults`."""
