"""Deterministic overload-control primitives with an injectable clock.

The serving and parallel layers need the classic reliability toolbox —
deadlines, retries with backoff, circuit breakers, admission control —
but every one of those is a *time* construct, and tests that sleep are
slow and flaky.  This module therefore builds all four primitives on a
:class:`Clock` seam: production code uses the default
:class:`SystemClock`; tests hand a :class:`FakeClock` whose ``sleep``
returns instantly and whose readings only move when the test says so,
which is how the chaos suite drives breaker cooldowns and token-bucket
refills without a single real ``time.sleep``.

The pieces, bottom up:

* :class:`Deadline` — a fixed point on the monotonic clock; cheap
  ``remaining()`` / ``expired()`` checks plus ``raise_if_expired()``
  raising :class:`~repro.resilience.errors.DeadlineExceeded`.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  bounded jitter; :meth:`RetryPolicy.call` retries a callable through
  the clock, honoring an optional deadline.
* :class:`CircuitBreaker` — closed → open after a run of consecutive
  failures, half-open probe after a cooldown, closed again on probe
  success; refusals raise
  :class:`~repro.resilience.errors.CircuitOpenError` with a
  ``retry_after`` hint.
* :class:`LoadShedder` — token-bucket admission (rate + burst) plus a
  bounded in-flight gauge; refusals raise
  :class:`~repro.resilience.errors.RejectedError` instead of queueing,
  and :meth:`LoadShedder.drain` is the graceful-shutdown wait.

Every state change is exported as a ``repro_resilience_*`` metric (see
``docs/OBSERVABILITY.md``), so a shed, trip, or retry is never silent.
"""

from __future__ import annotations

import random
import threading
import time as _time
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.obs import metrics as obs_metrics
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    RejectedError,
)

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "Admission",
    "LoadShedder",
]


class Clock:
    """The time seam every runtime primitive reads through.

    Three methods cover everything the primitives need: ``monotonic()``
    for intervals, ``time()`` for wall-clock stamps humans read, and
    ``sleep()`` for pauses.  Subclass to control time in tests; the
    default implementations delegate to :mod:`time`.
    """

    def monotonic(self) -> float:
        """Monotonic seconds — the basis for deadlines and cooldowns."""
        return _time.monotonic()

    def time(self) -> float:
        """Wall-clock seconds since the epoch (for human-facing stamps)."""
        return _time.time()

    def sleep(self, seconds: float) -> None:
        """Pause the caller for ``seconds`` (never negative)."""
        if seconds > 0:
            _time.sleep(seconds)


class SystemClock(Clock):
    """The real clock — :class:`Clock`'s defaults, named for clarity."""


class FakeClock(Clock):
    """A manually advanced clock for deterministic tests.

    ``sleep`` does not block: it advances the clock by the requested
    amount and records the request in :attr:`sleeps`, so a test can
    assert exactly which backoff pauses a retry loop asked for.
    Thread-safe — handler threads in the chaos suite read it
    concurrently with the test advancing it.
    """

    def __init__(self, start: float = 1000.0, wall_start: float = 1.7e9):
        self._now = float(start)
        self._wall = float(wall_start)
        self._lock = threading.Lock()
        #: Every ``sleep`` request observed, in order.
        self.sleeps: list = []

    def monotonic(self) -> float:
        """The current fake monotonic reading."""
        with self._lock:
            return self._now

    def time(self) -> float:
        """The current fake wall-clock reading."""
        with self._lock:
            return self._wall

    def sleep(self, seconds: float) -> None:
        """Record the request and advance both readings instantly."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        with self._lock:
            self.sleeps.append(seconds)
            self._now += seconds
            self._wall += seconds

    def advance(self, seconds: float) -> None:
        """Move both readings forward by ``seconds`` (test-side control)."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds
            self._wall += seconds


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


class Deadline:
    """A fixed expiry point on the monotonic clock.

    ``Deadline(None)`` never expires (``remaining()`` is ``None``), so
    call sites can thread one object through unconditionally instead of
    branching on "was a timeout configured".
    """

    def __init__(self, seconds: Optional[float], clock: Optional[Clock] = None):
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        self._clock = clock or SystemClock()
        self.seconds = seconds
        self._expires_at = (
            None if seconds is None else self._clock.monotonic() + seconds
        )

    @classmethod
    def after(
        cls, seconds: Optional[float], clock: Optional[Clock] = None
    ) -> "Deadline":
        """Alias constructor reading as prose: ``Deadline.after(0.25)``."""
        return cls(seconds, clock)

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0); ``None`` for a boundless deadline."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock.monotonic())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def raise_if_expired(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.seconds:g}s deadline"
            )

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.seconds:g}s, remaining={self.remaining():.3f}s)"


# ----------------------------------------------------------------------
# Retry with backoff
# ----------------------------------------------------------------------


class RetryPolicy:
    """Capped exponential backoff with deterministic, bounded jitter.

    The un-jittered schedule is ``base_delay * multiplier**attempt``
    capped at ``max_delay`` — monotone non-decreasing by construction
    (property-tested).  Jitter then *subtracts* up to
    ``jitter * backoff`` from each pause, drawn from a private
    ``random.Random(seed)``, so delays stay within
    ``[backoff * (1 - jitter), backoff]``: the same seed replays the
    same schedule, and jitter can never stretch a pause past the cap.
    """

    def __init__(
        self,
        retries: int = 3,
        *,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff cannot shrink)")
        if max_delay < base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.retries = retries
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def backoff(self, attempt: int) -> float:
        """The un-jittered pause before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delay(self, attempt: int) -> float:
        """The jittered pause before retry ``attempt`` (0-based).

        Within ``[backoff(attempt) * (1 - jitter), backoff(attempt)]``;
        consumes one draw from the policy's private RNG.
        """
        backoff = self.backoff(attempt)
        return backoff * (1.0 - self.jitter * self._rng.random())

    def delays(self) -> Iterator[float]:
        """The full jittered schedule, one pause per permitted retry."""
        return (self.delay(attempt) for attempt in range(self.retries))

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        clock: Optional[Clock] = None,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> object:
        """Run ``fn``, retrying ``retry_on`` failures through ``clock``.

        At most ``retries`` retries (so ``retries + 1`` attempts); the
        final failure propagates unchanged.  A ``deadline`` bounds the
        whole affair: when the next pause would land past it, the last
        error is re-raised immediately instead of sleeping into a lost
        cause.  ``on_retry(attempt, error)`` observes each pause —
        the supervisor uses it to log and count.
        """
        clock = clock or SystemClock()
        for attempt in range(self.retries + 1):
            try:
                return fn()
            except retry_on as error:
                if attempt >= self.retries:
                    raise
                pause = self.delay(attempt)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None and pause >= remaining:
                        raise
                if obs_metrics.metrics_enabled():
                    obs_metrics.inc(
                        "repro_resilience_retries_total",
                        help="Retries performed by RetryPolicy.call, by error class",
                        error=type(error).__name__,
                    )
                if on_retry is not None:
                    on_retry(attempt, error)
                clock.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

#: Circuit states, also the exported gauge levels (0/1/2).
_CLOSED, _HALF_OPEN, _OPEN = "closed", "half_open", "open"
_STATE_LEVELS = {_CLOSED: 0, _HALF_OPEN: 1, _OPEN: 2}


class CircuitBreaker:
    """Stops hammering a failing dependency; probes it after a cooldown.

    Closed (normal) → open after ``failure_threshold`` *consecutive*
    failures; while open, :meth:`check` raises
    :class:`~repro.resilience.errors.CircuitOpenError` whose
    ``retry_after`` is the cooldown remainder.  After ``reset_timeout``
    seconds the next check transitions to half-open and admits a single
    probe: success closes the circuit (and clears the failure run),
    failure re-opens it with a fresh cooldown.  Thread-safe; all
    transitions are counted and the current state is exported as the
    ``repro_resilience_circuit_state{circuit=...}`` gauge
    (0=closed, 1=half-open, 2=open).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        *,
        name: str = "default",
        clock: Optional[Clock] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    # -- observation ----------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (cooldown applied)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """The current run of failures (resets on any success)."""
        with self._lock:
            return self._consecutive_failures

    def retry_after(self) -> Optional[float]:
        """Cooldown seconds remaining while open; ``None`` otherwise."""
        with self._lock:
            if self._state != _OPEN or self._opened_at is None:
                return None
            elapsed = self._clock.monotonic() - self._opened_at
            return max(0.0, self.reset_timeout - elapsed)

    # -- state machine --------------------------------------------------

    def _maybe_half_open(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if self._state == _OPEN and self._opened_at is not None:
            if self._clock.monotonic() - self._opened_at >= self.reset_timeout:
                self._transition(_HALF_OPEN)
                self._probe_in_flight = False

    def _transition(self, state: str) -> None:
        """Move to ``state`` and export the change (lock held)."""
        if state == self._state:
            return
        self._state = state
        if state == _OPEN:
            self._opened_at = self._clock.monotonic()
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_resilience_circuit_transitions_total",
                help="Circuit-breaker transitions, by circuit and new state",
                circuit=self.name,
                to=state,
            )
            obs_metrics.set_gauge(
                "repro_resilience_circuit_state",
                _STATE_LEVELS[state],
                help="Circuit state (0=closed, 1=half-open, 2=open)",
                circuit=self.name,
            )

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed.

        In half-open state only one probe is admitted at a time; a
        second concurrent caller is refused so a thundering herd cannot
        pile onto a dependency that has not proven itself yet.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == _CLOSED:
                return
            if self._state == _HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            elapsed = (
                self._clock.monotonic() - self._opened_at
                if self._opened_at is not None
                else 0.0
            )
            retry_after = max(0.0, self.reset_timeout - elapsed)
            if obs_metrics.metrics_enabled():
                obs_metrics.inc(
                    "repro_resilience_circuit_rejections_total",
                    help="Calls refused by an open circuit, by circuit",
                    circuit=self.name,
                )
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self._state} after "
                f"{self._consecutive_failures} consecutive failure(s); "
                f"retry in {retry_after:.3f}s",
                retry_after=retry_after,
            )

    def record_success(self) -> None:
        """Note a successful call: closes a probing circuit, clears the run."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != _CLOSED:
                self._transition(_CLOSED)

    def record_failure(self) -> None:
        """Note a failed call: extends the run, may trip the circuit."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == _HALF_OPEN:
                self._transition(_OPEN)
            elif (
                self._state == _CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(_OPEN)

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker: check, then record the outcome."""
        self.check()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def to_dict(self) -> dict:
        """State summary for health payloads and dashboards."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_seconds": self.reset_timeout,
            "retry_after_seconds": self.retry_after(),
        }


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------


class Admission:
    """A granted admission ticket; use as a context manager to release.

    Releasing is idempotent, so an admission is safe to release both in
    a ``finally`` and from an error path.
    """

    def __init__(self, shedder: "LoadShedder"):
        self._shedder = shedder
        self._released = False

    def release(self) -> None:
        """Return the in-flight slot (idempotent)."""
        if not self._released:
            self._released = True
            self._shedder._release()

    def __enter__(self) -> "Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class LoadShedder:
    """Token-bucket admission plus a bounded in-flight gauge.

    Two independent refusals, checked in order:

    * **rate** — a token bucket of capacity ``burst`` refilled at
      ``rate`` requests/second (through the clock).  Empty bucket →
      :class:`RejectedError` with ``reason="rate"`` and a
      ``retry_after`` of one token's refill time.  ``rate=None``
      disables the bucket.
    * **inflight** — at most ``max_inflight`` admissions outstanding.
      Full gauge → :class:`RejectedError` with ``reason="inflight"``
      and the configured ``retry_after_hint``.  ``max_inflight=None``
      means unbounded (the gauge still counts, which is what graceful
      drain watches).

    Refusing instead of queueing is the point: the caller gets an
    honest backpressure signal while admitted work keeps its latency.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        *,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        retry_after_hint: float = 1.0,
        clock: Optional[Clock] = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be positive")
        if retry_after_hint < 0:
            raise ValueError("retry_after_hint must be non-negative")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1, int(rate)) if rate is not None else 1
        )
        self.retry_after_hint = retry_after_hint
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._tokens = float(self.burst)
        self._last_refill = self._clock.monotonic()
        #: Admissions granted / refusals issued since construction.
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def inflight(self) -> int:
        """Admissions currently outstanding."""
        with self._lock:
            return self._inflight

    def _refill(self) -> None:
        """Top the bucket up for the time elapsed (lock held)."""
        if self.rate is None:
            return
        now = self._clock.monotonic()
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def _shed(self, reason: str, message: str, retry_after: float) -> None:
        """Count and raise one refusal (lock held)."""
        self.shed_total += 1
        if obs_metrics.metrics_enabled():
            obs_metrics.inc(
                "repro_resilience_shed_total",
                help="Requests shed by admission control, by reason",
                reason=reason,
            )
        raise RejectedError(message, reason=reason, retry_after=retry_after)

    def try_admit(self, cost: float = 1.0) -> Admission:
        """Admit one request or raise :class:`RejectedError`.

        The rate check runs first — a rate-shed request must not consume
        an in-flight slot.  ``cost`` weights expensive requests against
        the token bucket (admission slots are always one).
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        with self._lock:
            self._refill()
            if self.rate is not None and self._tokens < cost:
                needed = (cost - self._tokens) / self.rate
                self._shed(
                    "rate",
                    f"request rate above {self.rate:g}/s "
                    f"(burst {self.burst}); retry in {needed:.3f}s",
                    retry_after=needed,
                )
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self._shed(
                    "inflight",
                    f"{self._inflight} requests already in flight "
                    f"(limit {self.max_inflight})",
                    retry_after=self.retry_after_hint,
                )
            if self.rate is not None:
                self._tokens -= cost
            self._inflight += 1
            self.admitted_total += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.set_gauge(
                    "repro_resilience_inflight",
                    self._inflight,
                    help="Admitted requests currently in flight",
                )
        return Admission(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            if obs_metrics.metrics_enabled():
                obs_metrics.set_gauge(
                    "repro_resilience_inflight",
                    self._inflight,
                    help="Admitted requests currently in flight",
                )
            if self._inflight <= 0:
                self._idle.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait (event-driven, no polling) until nothing is in flight.

        Returns ``True`` when the gauge reached zero, ``False`` on
        timeout — the graceful-shutdown path reports which.  The wait
        uses the real condition variable regardless of the injected
        clock: drain synchronizes with live threads, not with time.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight <= 0, timeout=timeout
            )

    def to_dict(self) -> dict:
        """Admission-control state for health payloads."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "rate": self.rate,
                "burst": self.burst if self.rate is not None else None,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }
