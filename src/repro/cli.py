"""Command-line interface: mine rules from CSV relations.

Subcommands:

* ``mine``      — distance-based association rules (the paper's algorithm)
* ``baseline``  — the Srikant–Agrawal quantitative-rule baseline
* ``generate``  — write a synthetic workload to CSV
* ``describe``  — schema and per-column statistics of a relation
* ``snapshot``  — compile a versioned, queryable rule snapshot
* ``serve``     — serve a rule snapshot over HTTP (``/rules``,
  ``/healthz``, ``/metrics``)
* ``slo``       — evaluate SLO rule packs against saved or live metrics
* ``bench``     — benchmark telemetry: record trajectories, gate
  regressions, render the HTML dashboard

Examples::

    python -m repro generate planted /tmp/claims.csv --seed 7
    python -m repro mine /tmp/claims.csv --count-support --top-k 10
    python -m repro mine /tmp/claims.csv --target claims --prune-redundant
    python -m repro mine /tmp/claims.csv --report /tmp/run.html
    python -m repro mine /tmp/claims.csv --metrics-out /tmp/metrics.prom
    python -m repro mine /tmp/dirty.csv --lenient --quarantine /tmp/bad.jsonl
    python -m repro mine /tmp/big.csv --checkpoint /tmp/run.ckpt --checkpoint-every 50000
    python -m repro mine /tmp/big.csv --resume /tmp/run.ckpt --checkpoint-every 50000
    python -m repro mine /tmp/huge.csv --out-of-core --chunk-rows 65536 --memory-budget 64m
    python -m repro baseline /tmp/claims.csv --min-support 0.15
    python -m repro snapshot /tmp/claims.csv --out /tmp/rules.snap
    python -m repro serve --snapshot /tmp/rules.snap --port 8765
    python -m repro serve --snapshot /tmp/rules.snap --log - --slo-pack default
    python -m repro mine /tmp/claims.csv --log /tmp/mine.jsonl --postmortem-dir /tmp/pm
    python -m repro slo check --metrics /tmp/metrics.prom --fail-on crit
    python -m repro bench run --scenario phase1_scaling
    python -m repro bench compare --strict
    python -m repro bench report --out bench_report.html

CSV files use the schema-header format of :mod:`repro.data.io` (written by
``generate`` and by :func:`repro.data.io.save_csv`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.api import mine as mine_relation
from repro.core.config import DARConfig
from repro.data.io import load_csv, load_plain_csv, save_csv
from repro.data.relation import Relation
from repro.data.synthetic import make_clustered_relation, make_planted_rule_relation
from repro.data.wbcd import make_scaled_wbcd, make_wbcd_like
from repro.mixed.miner import MixedDARConfig, MixedDARMiner
from repro.obs.trace import span
from repro.quantitative.qar import QARConfig, QARMiner
from repro.report.describe import describe_rule
from repro.resilience import faults
from repro.resilience.errors import ReproError
from repro.serve.query import RuleQuery, apply_query

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distance-based association rules over interval data "
        "(Miller & Yang, SIGMOD 1997)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine distance-based rules from a CSV")
    mine.add_argument("csv", help="relation file written by repro (schema header)")
    mine.add_argument("--frequency", type=float, default=0.03,
                      help="frequency threshold s0 as a fraction (default 0.03)")
    mine.add_argument("--density-fraction", type=float, default=0.15,
                      help="d0 as a fraction of each column's spread (default 0.15)")
    mine.add_argument("--degree-factor", type=float, default=2.0,
                      help="D0 = degree-factor x d0 (default 2.0)")
    mine.add_argument("--metric", choices=("d1", "d2"), default="d2",
                      help="cluster distance for Phase II (default d2)")
    mine.add_argument("--engine", choices=("auto", "vector", "scalar"),
                      default="auto",
                      help="Phase II distance engine (default auto: the "
                      "vectorized kernel whenever images are CFs)")
    mine.add_argument("--workers", type=int, default=1, metavar="N",
                      help="mine with N worker processes (default 1: "
                      "serial; 0 = auto, resolving REPRO_WORKERS then "
                      "the machine's core count); falls back to serial "
                      "automatically if the pool fails, and is not "
                      "supported together with --mixed or "
                      "--checkpoint/--resume")
    mine.add_argument("--count-support", action="store_true",
                      help="post-scan: count classical support per rule")
    mine.add_argument("--mixed", action="store_true",
                      help="include nominal attributes (Section 8 extension)")
    mine.add_argument("--target", default=None,
                      help="comma-separated consequent partitions to keep")
    mine.add_argument("--prune-redundant", action="store_true",
                      help="drop rules implied by stronger shorter rules")
    mine.add_argument("--top-k", type=int, default=None,
                      help="print only the k strongest rules")
    mine.add_argument("--max-degree", type=float, default=None,
                      help="keep rules with degree at most this")
    mine.add_argument("--stats", action="store_true",
                      help="print per-partition Phase I scan statistics, "
                      "quarantine counts, degradation events and "
                      "checkpoint timings")
    mine.add_argument("--json", action="store_true",
                      help="emit the full result as JSON (not with --mixed)")
    mine.add_argument("--drop-missing", action="store_true",
                      help="drop tuples with missing values before mining")
    mine.add_argument("--impute-mean", action="store_true",
                      help="replace numeric NaNs with the column mean")
    mine.add_argument("--lenient", action="store_true",
                      help="quarantine unparseable/bad rows instead of "
                      "aborting the load")
    mine.add_argument("--quarantine", metavar="PATH", default=None,
                      help="write quarantined rows to this JSONL file "
                      "(implies --lenient)")
    mine.add_argument("--max-bad-fraction", type=float, default=0.05,
                      help="lenient mode: abort once this fraction of rows "
                      "is bad (default 0.05)")
    mine.add_argument("--out-of-core", action="store_true",
                      help="spill the CSV to a memory-mapped columnar "
                      "store and mine it chunk by chunk, so files larger "
                      "than RAM mine in bounded memory (serial engine "
                      "only; not with --mixed, --checkpoint/--resume or "
                      "the cleaning flags)")
    mine.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                      help="out-of-core spill/scan granularity in rows "
                      "(default 65536; requires --out-of-core)")
    mine.add_argument("--spill-dir", metavar="DIR", default=None,
                      help="directory for the spilled column store "
                      "(default: a temp dir removed afterwards; requires "
                      "--out-of-core)")
    mine.add_argument("--memory-budget", metavar="BYTES", default=None,
                      help="Phase I tree byte budget per partition; "
                      "accepts k/m/g suffixes (e.g. 64m).  Works with or "
                      "without --out-of-core; budgeted runs produce "
                      "bit-identical rules either way")
    mine.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="mine via the streaming engine, checkpointing "
                      "state to PATH every --checkpoint-every rows")
    mine.add_argument("--checkpoint-every", metavar="N", type=int,
                      default=10_000,
                      help="rows per streaming batch/checkpoint "
                      "(default 10000)")
    mine.add_argument("--resume", metavar="PATH", default=None,
                      help="resume a streaming mine from this checkpoint "
                      "file (continues checkpointing to the same path "
                      "unless --checkpoint overrides it)")
    mine.add_argument("--trace", metavar="PATH", default=None,
                      help="record spans for the whole run and write them "
                      "to PATH (.jsonl for JSON lines, anything else for "
                      "Chrome chrome://tracing JSON)")
    mine.add_argument("--metrics", action="store_true",
                      help="record counters/gauges/histograms and print "
                      "the metrics table after the rules")
    mine.add_argument("--profile", action="store_true",
                      help="sample per-stage numpy call counts and "
                      "allocations (adds overhead; implies a report "
                      "after the rules)")
    mine.add_argument("--report", metavar="PATH", default=None,
                      help="write a self-contained HTML run report "
                      "(span waterfall, metrics, health) to PATH; "
                      "implies tracing and metrics for the run")
    mine.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the run's metrics as Prometheus text "
                      "exposition to PATH (implies --metrics recording; "
                      "the stderr table still needs --metrics)")
    mine.add_argument("--log", metavar="PATH", default=None,
                      help="emit structured JSONL logs to PATH "
                      "('stderr' or '-' for standard error)")
    mine.add_argument("--log-level", default="info",
                      choices=("debug", "info", "warn", "error"),
                      help="minimum level recorded by --log (default: info)")
    mine.add_argument("--postmortem-dir", metavar="DIR", default=None,
                      help="arm the flight recorder: on a crash, write a "
                      "postmortem bundle (.tar.gz with recent logs/spans/"
                      "metrics, health, config) into DIR; implies tracing "
                      "and metrics for the run")

    baseline = commands.add_parser(
        "baseline", help="Srikant-Agrawal quantitative rules (equi-depth)"
    )
    baseline.add_argument("csv")
    baseline.add_argument("--min-support", type=float, default=0.1)
    baseline.add_argument("--min-confidence", type=float, default=0.5)
    baseline.add_argument("--partial-completeness", type=float, default=3.0)
    baseline.add_argument("--top-k", type=int, default=None)

    generate = commands.add_parser("generate", help="write a synthetic workload")
    generate.add_argument(
        "workload", choices=("planted", "clustered", "wbcd", "wbcd-scaled")
    )
    generate.add_argument("out", help="output CSV path")
    generate.add_argument("--size", type=int, default=None,
                          help="tuples (wbcd-scaled/clustered; see docs for defaults)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--modes", type=int, default=4,
                          help="clustered: number of modes")
    generate.add_argument("--attributes", type=int, default=3,
                          help="clustered: number of attributes")

    describe = commands.add_parser("describe", help="schema and column statistics")
    describe.add_argument("csv")
    describe.add_argument("--sketch", action="store_true",
                          help="print a text histogram per numeric column")

    snapshot = commands.add_parser(
        "snapshot", help="compile a versioned, queryable rule snapshot"
    )
    snapshot.add_argument("source",
                          help="relation CSV (mined with the flags below), "
                          "a streaming checkpoint, or an existing "
                          "rule-snapshot file")
    snapshot.add_argument("--out", required=True, metavar="PATH",
                          help="snapshot output path (versioned, "
                          "CRC-checked container)")
    snapshot.add_argument("--frequency", type=float, default=0.03,
                          help="frequency threshold s0 as a fraction "
                          "(default 0.03; CSV sources only)")
    snapshot.add_argument("--density-fraction", type=float, default=0.15,
                          help="d0 as a fraction of each column's spread "
                          "(default 0.15; CSV sources only)")
    snapshot.add_argument("--degree-factor", type=float, default=2.0,
                          help="D0 = degree-factor x d0 (default 2.0; "
                          "CSV sources only)")
    snapshot.add_argument("--metric", choices=("d1", "d2"), default="d2",
                          help="cluster distance for Phase II (default d2; "
                          "CSV sources only)")
    snapshot.add_argument("--count-support", action="store_true",
                          help="count classical support per rule so "
                          "min_support queries work (CSV sources only)")
    snapshot.add_argument("--target", default=None,
                          help="comma-separated consequent partitions to "
                          "mine toward (CSV sources only)")

    serve = commands.add_parser(
        "serve", help="serve a rule snapshot over HTTP "
        "(/rules, /healthz, /metrics)"
    )
    serve.add_argument("--snapshot", required=True, metavar="PATH",
                       help="rule-snapshot file (repro snapshot), a "
                       "streaming checkpoint, or a relation CSV to mine "
                       "with default thresholds")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default 8765; 0 binds an ephemeral "
                       "port, printed in the startup banner)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="query answers kept in the LRU cache "
                       "(default 256)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admit at most N concurrent requests; excess "
                       "is shed with 503 + Retry-After (default: unbounded)")
    serve.add_argument("--rate", type=float, default=None, metavar="R",
                       help="token-bucket admission rate in requests/sec; "
                       "excess is shed with 429 + Retry-After "
                       "(default: unlimited)")
    serve.add_argument("--burst", type=int, default=None, metavar="B",
                       help="token-bucket burst capacity "
                       "(default: max(1, int(rate)))")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="per-request deadline in milliseconds; an "
                       "admitted request that cannot finish in time "
                       "answers 503 (default: none)")
    serve.add_argument("--read-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="socket read timeout per request, the "
                       "anti-slow-loris bound (default 30)")
    serve.add_argument("--log", metavar="PATH", default=None,
                       help="emit structured JSONL logs (one access-log "
                       "record per request) to PATH ('stderr' or '-' for "
                       "standard error)")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warn", "error"),
                       help="minimum level recorded by --log (default: info)")
    serve.add_argument("--postmortem-dir", metavar="DIR", default=None,
                       help="arm the flight recorder: dump a postmortem "
                       "bundle into DIR on shutdown or crash")
    serve.add_argument("--slo-pack", metavar="PATH", default=None,
                       help="evaluate this SLO rule pack (JSON/TOML) on "
                       "every /healthz; 'default' selects the built-in "
                       "serving pack")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long shutdown waits for in-flight "
                       "requests before closing (default 5)")

    slo = commands.add_parser(
        "slo", help="evaluate SLO rule packs against recorded metrics"
    )
    slo_commands = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_commands.add_parser(
        "check",
        help="evaluate a rule pack; exit non-zero when it is violated",
    )
    slo_check.add_argument("--pack", metavar="PATH", default=None,
                           help="SLO rule pack (JSON or TOML); omit or pass "
                           "'default' for the built-in serving pack")
    slo_check.add_argument("--metrics", metavar="PATH", default=None,
                           help="Prometheus text file to evaluate against "
                           "(e.g. the output of `repro mine --metrics-out`)")
    slo_check.add_argument("--url", metavar="URL", default=None,
                           help="scrape a running server's /metrics "
                           "endpoint instead of reading a file")
    slo_check.add_argument("--fail-on", choices=("warn", "crit"),
                           default="crit",
                           help="violation severity that makes the exit "
                           "code non-zero (default: crit)")
    slo_check.add_argument("--json", action="store_true",
                           help="print the report as JSON instead of the "
                           "per-rule verdict lines")

    bench = commands.add_parser(
        "bench",
        help="benchmark telemetry: record BENCH_*.json trajectories, "
        "gate regressions, render the HTML dashboard",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_commands.add_parser(
        "run", help="execute a built-in scenario and append its record"
    )
    bench_run.add_argument("--scenario", required=True,
                           help="scenario name (see repro.obs.bench.SCENARIOS: "
                           "phase1_scaling, phase2_graph, streaming_update, "
                           "mine_smoke, serve_qps, serve_overload, "
                           "outofcore_scan)")
    bench_run.add_argument("--scale", type=float, default=1.0,
                           help="stretch/shrink the scenario's data sizes "
                           "(default 1.0)")
    bench_run.add_argument("--repeat", type=int, default=1,
                           help="record this many back-to-back runs "
                           "(default 1)")
    bench_run.add_argument("--trace-malloc", action="store_true",
                           help="also sample the tracemalloc peak (slows "
                           "allocation-heavy scenarios)")
    bench_run.add_argument("--root", default=None,
                           help="directory holding BENCH_*.json files "
                           "(default: the repo root)")

    bench_compare = bench_commands.add_parser(
        "compare", help="classify the newest record against the baseline"
    )
    bench_compare.add_argument("--scenario", action="append", default=None,
                               help="scenario to compare (repeatable; "
                               "default: every BENCH_*.json found)")
    bench_compare.add_argument("--tolerance", type=float, default=0.10,
                               help="fractional wall-time band treated as "
                               "noise (default 0.10)")
    bench_compare.add_argument("--rss-tolerance", type=float, default=0.25,
                               help="fractional peak-RSS band treated as "
                               "noise (default 0.25)")
    bench_compare.add_argument("--window", type=int, default=5,
                               help="prior records feeding the median "
                               "baseline (default 5)")
    bench_compare.add_argument("--strict", action="store_true",
                               help="exit 1 when any quantity regressed "
                               "(the blocking CI gate mode)")
    bench_compare.add_argument("--root", default=None,
                               help="directory holding BENCH_*.json files "
                               "(default: the repo root)")

    bench_report = bench_commands.add_parser(
        "report", help="render the trajectory dashboard as one HTML file"
    )
    bench_report.add_argument("--out", default="bench_report.html",
                              help="output HTML path "
                              "(default bench_report.html)")
    bench_report.add_argument("--root", default=None,
                              help="directory holding BENCH_*.json files "
                              "(default: the repo root)")

    return parser


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + rename.

    Output artifacts (traces, metrics dumps) must never exist half
    written: an interrupt between open and close would otherwise leave a
    truncated file that looks like a complete export.
    """
    import os
    from pathlib import Path

    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, target)


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional ``k``/``m``/``g`` suffix.

    Accepts ``65536``, ``64k``, ``128M``, ``2g`` (case-insensitive,
    powers of 1024).  Raises ``ValueError`` with the offending text on
    anything else, so CLI errors name the bad flag value.
    """
    raw = text.strip().lower()
    factor = 1
    for suffix, scale in (("k", 1024), ("m", 1024**2), ("g", 1024**3)):
        if raw.endswith(suffix):
            raw, factor = raw[: -len(suffix)], scale
            break
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid byte count {text!r}; expected an integer with an "
            f"optional k/m/g suffix (e.g. 65536, 64k, 128m)"
        ) from None
    if value <= 0:
        raise ValueError(f"byte count must be positive, got {text!r}")
    return value * factor


def _load_relation(path: str, sink=None) -> Relation:
    """Load a repro CSV, falling back to plain-CSV schema inference.

    ``sink`` (lenient mode) only applies to the schema-header format;
    plain CSVs load strictly because kind inference over corrupt cells is
    ill-defined.
    """
    try:
        return load_csv(path, sink=sink)
    except ValueError as error:
        if "schema header" not in str(error):
            raise
        return load_plain_csv(path)


def _mine_streaming(relation: Relation, config: DARConfig, args):
    """Mine via :class:`StreamingDARMiner` with periodic checkpoints.

    Feeds ``relation`` in ``--checkpoint-every``-row batches, saving a
    checkpoint after each.  With ``--resume`` the miner state is restored
    from the checkpoint file and already-absorbed rows are skipped, so a
    killed run picks up exactly where its last checkpoint left it; the
    final result is identical to the uninterrupted run's.  Returns the
    result, the checkpoint infos, and the miner itself (whose
    :meth:`~repro.core.streaming.StreamingDARMiner.health` report feeds
    ``--stats`` and ``--report``).
    """
    from repro.core.streaming import StreamingDARMiner
    from repro.data.relation import default_partitions

    every = args.checkpoint_every
    if every < 1:
        raise ValueError("--checkpoint-every must be at least 1")
    if args.resume:
        miner = StreamingDARMiner.from_checkpoint(args.resume)
    else:
        miner = StreamingDARMiner(default_partitions(relation.schema), config)
    path = args.checkpoint or args.resume
    matrices = {
        p.name: relation.matrix(p.attributes) for p in miner.partitions
    }
    n = len(relation)
    position = miner.rows_seen
    if position > n:
        raise ValueError(
            f"checkpoint has already seen {position} rows but {args.csv} "
            f"holds only {n}; did the input file change?"
        )
    infos = []
    while position < n:
        end = min(position + every, n)
        miner.update_arrays(
            {name: matrix[position:end] for name, matrix in matrices.items()}
        )
        if path is not None:
            infos.append(miner.save_checkpoint(path))
        position = end
    return miner.rules(), infos, miner


def _cmd_mine(args: argparse.Namespace) -> int:
    """Run ``mine``, wiring up observability when any of its flags are set.

    ``--trace``/``--metrics``/``--profile`` reset the corresponding
    recorders first, so repeated in-process invocations (tests, notebooks)
    start from a clean slate and the exported numbers describe exactly
    this run.  ``--report`` implies tracing + metrics (the dashboard needs
    both) and ``--metrics-out`` implies metrics recording.  ``--log``
    turns on the structured JSONL logger; ``--postmortem-dir`` arms the
    flight recorder (implying tracing + metrics, so a bundle has spans
    and a registry snapshot to carry) and dumps a bundle if the run
    crashes.
    """
    wants_obs = (
        args.trace or args.metrics or args.profile
        or args.report or args.metrics_out
        or args.log or args.postmortem_dir
    )
    if not wants_obs:
        return _run_mine(args)

    from repro import obs

    tracer = obs.get_tracer()
    tracer.clear()
    obs.get_registry().reset()
    obs.reset_profiles()
    obs.enable(
        trace=bool(args.trace or args.report or args.postmortem_dir),
        metrics=bool(
            args.metrics or args.report or args.metrics_out
            or args.postmortem_dir
        ),
        profile=args.profile,
    )
    if args.log:
        obs.enable_logging(level=args.log_level, path=args.log)
    if args.postmortem_dir:
        obs.enable_flight(
            directory=args.postmortem_dir,
            config={"command": "mine", "csv": args.csv},
        )
    capture: dict = {}
    try:
        with span("cli.mine", csv=args.csv):
            status = _run_mine(args, capture=capture)
    except Exception as error:
        # Cut the bundle while the recorders still hold the crash window
        # (the finally below switches them off).
        obs.dump_on_error("cli-mine", error)
        raise
    finally:
        obs.disable()
        obs.disable_flight()
    # Diagnostics go to stderr (like the trace confirmation) so that
    # ``--json`` stdout stays machine-parseable under ``--metrics``.
    if args.metrics:
        print("\n# metrics", file=sys.stderr)
        print(obs.get_registry().to_table(), file=sys.stderr)
    if args.profile:
        print("\n# profile", file=sys.stderr)
        print(obs.profile_report(), file=sys.stderr)
    if args.trace:
        if str(args.trace).endswith(".jsonl"):
            _atomic_write_text(args.trace, tracer.to_jsonl())
            n_spans = len(tracer.spans())
        else:
            import json

            document = tracer.chrome_trace()
            _atomic_write_text(args.trace, json.dumps(document))
            n_spans = len(document["traceEvents"])
        print(f"# trace: {n_spans} spans written to {args.trace}", file=sys.stderr)
    if args.metrics_out:
        _atomic_write_text(args.metrics_out, obs.get_registry().to_prometheus())
        print(f"# metrics written to {args.metrics_out}", file=sys.stderr)
    if args.report:
        from repro.report.dashboard import render_run_report, write_report

        health = capture.get("health")
        document = render_run_report(
            title=f"repro mine — {args.csv}",
            result=capture.get("result"),
            spans=tracer.spans(),
            metrics=obs.get_registry().snapshot(),
            health=health.to_dict() if health is not None else None,
            metadata={"input": args.csv},
        )
        write_report(document, args.report)
        print(f"# report written to {args.report}", file=sys.stderr)
    return status


def _result_health(result, n_rows: int, sink):
    """A :class:`~repro.obs.health.HealthReport` for a finished batch mine.

    Batch mines have no live miner to interrogate, so the report is
    reconstructed from the result's Phase I diagnostics: leaf entries and
    rebuilds per partition, threshold inflation from each partition's
    escalation history, and the quarantine rate from the load sink.
    """
    from repro.obs.health import HealthMonitor

    phase1 = getattr(result, "phase1", None) or {}
    leaf_entries = {
        name: stats.final_entry_count for name, stats in phase1.items()
    }
    inflation = {}
    for name, stats in phase1.items():
        history = getattr(stats, "threshold_history", None) or []
        if len(history) >= 2 and history[0] > 0:
            inflation[name] = history[-1] / history[0]
    rebuilds = {name: stats.rebuilds for name, stats in phase1.items()}
    quarantined = sink.n_quarantined if sink is not None else 0
    return HealthMonitor().evaluate(
        leaf_entries=leaf_entries,
        threshold_inflation=inflation,
        rebuilds=rebuilds,
        rows_seen=n_rows + quarantined,
        rows_quarantined=quarantined,
    )


def _run_mine(args: argparse.Namespace, capture: Optional[dict] = None) -> int:
    out_of_core = getattr(args, "out_of_core", False)
    if not out_of_core:
        for flag, name in ((args.chunk_rows, "--chunk-rows"),
                           (args.spill_dir, "--spill-dir")):
            if flag is not None:
                raise ValueError(f"{name} requires --out-of-core")
    else:
        if args.mixed:
            raise ValueError(
                "--out-of-core does not support --mixed (nominal images "
                "are mined from the in-memory relation)"
            )
        if args.checkpoint or args.resume:
            raise ValueError(
                "--out-of-core is not supported together with "
                "--checkpoint/--resume (the streaming engine keeps its "
                "own bounded state; spilling as well would double the I/O)"
            )
        if args.drop_missing or args.impute_mean:
            raise ValueError(
                "--drop-missing/--impute-mean rewrite columns in memory, "
                "which defeats --out-of-core; clean the CSV first or use "
                "--lenient to quarantine bad rows during the spill"
            )
    sink = None
    if args.lenient or args.quarantine is not None:
        from repro.resilience.sink import ErrorBudget, Quarantine

        sink = Quarantine(
            path=args.quarantine,
            budget=ErrorBudget(max_fraction=args.max_bad_fraction),
        )
    if out_of_core:
        # No plain-CSV fallback here: spilling needs the typed schema
        # header up front (kind inference would mean a second pass).
        relation = load_csv(
            args.csv,
            sink=sink,
            out_of_core=True,
            chunk_rows=args.chunk_rows,
            spill_dir=args.spill_dir,
        )
    else:
        relation = _load_relation(args.csv, sink=sink)
    if sink is not None:
        sink.close()
    if args.drop_missing and args.impute_mean:
        raise ValueError("choose one of --drop-missing / --impute-mean")
    if args.drop_missing:
        from repro.data.cleaning import drop_missing

        relation = drop_missing(relation)
    elif args.impute_mean:
        from repro.data.cleaning import impute_mean

        relation = impute_mean(relation)
    config = DARConfig(
        frequency_fraction=args.frequency,
        density_fraction=args.density_fraction,
        degree_factor=args.degree_factor,
        metric=args.metric,
        count_rule_support=args.count_support,
        phase2_engine=args.engine,
    )
    if args.memory_budget is not None:
        from repro.birch.birch import BirchOptions

        config = config.with_birch(
            BirchOptions(memory_limit_bytes=_parse_bytes(args.memory_budget))
        )
    targets = args.target.split(",") if args.target else None
    workers = getattr(args, "workers", 1)
    if workers is None:
        workers = 1
    if workers < 0:
        raise ValueError("--workers must be non-negative (0 = auto)")
    if workers == 0:
        from repro.parallel.executor import resolve_workers

        workers = resolve_workers(0)
    if out_of_core and workers > 1:
        raise ValueError(
            "--workers is not supported together with --out-of-core (the "
            "parallel engine would materialize every column into shared "
            "memory); drop --workers to mine out of core serially"
        )
    checkpoint_infos = []
    stream_miner = None
    if args.checkpoint or args.resume:
        if args.mixed:
            raise ValueError(
                "--checkpoint/--resume use the streaming engine, which does "
                "not support --mixed"
            )
        if workers > 1:
            raise ValueError(
                "--workers is not supported together with "
                "--checkpoint/--resume (the streaming engine is serial)"
            )
        result, checkpoint_infos, stream_miner = _mine_streaming(
            relation, config, args
        )
        if targets:
            result.rules = result.rules(RuleQuery(targets=tuple(targets)))
    elif args.mixed:
        if args.json:
            raise ValueError("--json is not supported together with --mixed")
        if workers > 1:
            raise ValueError(
                "--workers is not supported together with --mixed (nominal "
                "images are outside the parallel engine's domain); drop "
                "--workers to mine mixed data serially"
            )
        result = MixedDARMiner(MixedDARConfig(base=config)).mine_mixed(relation)
    else:
        # Targets go into the miner itself (skips non-target assoc sets).
        result = mine_relation(
            relation,
            config=config,
            targets=targets,
            engine="parallel" if workers > 1 else "serial",
            workers=workers,
        )

    health = None
    try:
        health = (
            stream_miner.health()
            if stream_miner is not None
            else _result_health(result, len(relation), sink)
        )
    except Exception:  # health is advisory — never fail the mine over it
        health = None
    if capture is not None:
        capture["result"] = result
        capture["health"] = health

    if args.json:
        from repro.report.export import result_to_json

        print(result_to_json(result))
        return 0

    # One query object drives all display-side filtering; targets are
    # already applied inside the (non-mixed) miner, so they only appear
    # here for the mixed path.
    rules = apply_query(
        list(result.rules),
        RuleQuery(
            targets=tuple(targets) if (args.mixed and targets) else None,
            prune_redundant=args.prune_redundant,
            max_degree=args.max_degree,
            top_k=args.top_k,
        ),
    )

    print(f"# {len(relation)} tuples, frequency bar {result.frequency_count}")
    for name in sorted(result.density_thresholds):
        print(
            f"# partition {name}: d0={result.density_thresholds[name]:.6g} "
            f"D0={result.degree_thresholds[name]:.6g}"
        )
    if args.stats:
        if out_of_core:
            print(
                f"# columnar: {len(relation)} rows in {relation.directory} "
                f"(chunk_rows={relation.chunk_rows}, "
                f"{relation.n_bytes} bytes on disk)"
            )
        phase1 = getattr(result, "phase1", None) or {}
        for name in sorted(phase1):
            scan = phase1[name].scan
            if scan is not None:
                print(f"# scan {name}: {scan.describe()}")
        phase2 = getattr(result, "phase2", None)
        if phase2 is not None:
            engine = f" engine={phase2.engine}" if phase2.engine else ""
            print(
                f"# phase2: {phase2.n_clusters} clusters "
                f"({phase2.n_frequent_clusters} frequent), "
                f"{phase2.n_cliques} cliques in {phase2.seconds:.3f}s{engine}"
            )
            breakdown = " ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in phase2.stage_breakdown().items()
            )
            print(
                f"# phase2 stages: {breakdown} "
                f"({phase2.comparisons} comparisons, "
                f"{phase2.comparisons_skipped} pruned)"
            )
            for event in getattr(phase2, "events", []):
                print(f"# degradation: {event}")
        if sink is not None:
            print(f"# quarantine: {sink.summary()}")
        if health is not None:
            for line in health.describe().splitlines():
                print(f"# {line}")
        if checkpoint_infos:
            total_bytes = sum(info.n_bytes for info in checkpoint_infos)
            total_seconds = sum(info.seconds for info in checkpoint_infos)
            print(
                f"# checkpoints: {len(checkpoint_infos)} written to "
                f"{checkpoint_infos[-1].path} "
                f"({total_bytes} bytes, {total_seconds:.3f}s total)"
            )
    print(f"# rules: {len(rules)}")
    for rule in rules:
        if args.mixed:
            print(str(rule))
        else:
            print(describe_rule(rule))
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    relation = _load_relation(args.csv)
    config = QARConfig(
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        partial_completeness=args.partial_completeness,
    )
    result = QARMiner(config).mine(relation)
    rules = result.rules[: args.top_k] if args.top_k else result.rules
    print(f"# {len(relation)} tuples; intervals per attribute:")
    for name, intervals in sorted(result.intervals.items()):
        print(f"#   {name}: {len(intervals)} base intervals (depth {result.depth[name]})")
    print(f"# rules: {len(rules)}")
    for rule in rules:
        print(str(rule))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.workload == "planted":
        relation, _ = make_planted_rule_relation(seed=args.seed)
    elif args.workload == "clustered":
        points_per_mode = (args.size or 800) // max(args.modes, 1)
        relation, _ = make_clustered_relation(
            n_modes=args.modes,
            points_per_mode=max(points_per_mode, 1),
            n_attributes=args.attributes,
            seed=args.seed,
        )
    elif args.workload == "wbcd":
        relation = make_wbcd_like(n_tuples=args.size or 500, seed=args.seed)
    else:  # wbcd-scaled
        relation = make_scaled_wbcd(args.size or 10_000, seed=args.seed)
    save_csv(relation, args.out)
    print(f"wrote {len(relation)} tuples x {relation.arity} attributes to {args.out}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    relation = _load_relation(args.csv)
    print(f"{args.csv}: {len(relation)} tuples, {relation.arity} attributes")
    for attribute in relation.schema:
        column = relation.column(attribute.name)
        if attribute.kind.is_numeric and len(relation):
            stats = (
                f"min={column.min():.6g} max={column.max():.6g} "
                f"mean={column.mean():.6g} std={column.std():.6g}"
            )
            if getattr(args, "sketch", False) and np.all(np.isfinite(column)):
                from repro.report.ascii import histogram

                print(f"  {attribute.name} [{attribute.kind.value}]: {stats}")
                for line in histogram(column, bins=8, width=40).splitlines():
                    print(f"      {line}")
                continue
        elif len(relation):
            values, counts = np.unique(column.astype(str), return_counts=True)
            order = np.argsort(-counts)
            top = ", ".join(
                f"{values[i]}({counts[i]})" for i in order[:4]
            )
            stats = f"{len(values)} distinct: {top}"
        else:
            stats = "(empty)"
        print(f"  {attribute.name} [{attribute.kind.value}]: {stats}")
    return 0


def _is_checkpoint_file(path: str) -> bool:
    """Whether ``path`` starts with the repro checkpoint magic bytes."""
    from repro.resilience.checkpoint import MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _snapshot_source(path: str, config: Optional[DARConfig] = None,
                     targets: Optional[Sequence[str]] = None):
    """Resolve a ``snapshot``/``serve`` source argument.

    A checkpoint file (rule snapshot or streaming miner state) passes
    through as its path for :func:`repro.serve.compile_snapshot` to
    dispatch on; anything else is loaded as a relation CSV and mined.
    """
    if _is_checkpoint_file(path):
        return path
    relation = _load_relation(path)
    return mine_relation(relation, config=config, targets=targets)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Compile ``source`` into a versioned rule snapshot at ``--out``."""
    from repro.serve import compile_snapshot

    config = DARConfig(
        frequency_fraction=args.frequency,
        density_fraction=args.density_fraction,
        degree_factor=args.degree_factor,
        metric=args.metric,
        count_rule_support=args.count_support,
    )
    targets = args.target.split(",") if args.target else None
    snapshot = compile_snapshot(
        _snapshot_source(args.source, config=config, targets=targets)
    )
    info = snapshot.save(args.out)
    print(
        f"# snapshot v{snapshot.version}: {snapshot.n_rules} rules over "
        f"{len(snapshot.partitions)} partition(s) -> {args.out} "
        f"({info.n_bytes} bytes)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve ``--snapshot`` over HTTP until SIGINT/SIGTERM.

    Metrics recording is enabled for the process so ``/metrics`` exports
    live ``repro_serve_*`` series.  The startup banner (flushed, on
    stdout) names the bound address — under ``--port 0`` it is the only
    way for a supervisor to learn the real port.  SIGINT/SIGTERM set a
    stop event; the server thread is then shut down and joined, so a
    signalled process exits 0 with the listening socket closed.
    """
    import signal
    import threading

    from repro import obs
    from repro.obs.metrics import enable_metrics, get_registry
    from repro.serve import RuleServer, ServePolicy, SnapshotPublisher

    if args.cache_size < 1:
        raise ValueError("--cache-size must be at least 1")
    policy = ServePolicy(
        max_inflight=args.max_inflight,
        rate=args.rate,
        burst=args.burst,
        deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        read_timeout_seconds=args.read_timeout,
        drain_seconds=args.drain_seconds,
    )
    get_registry().reset()
    enable_metrics()
    obs.publish_build_info()
    if args.log:
        obs.enable_logging(level=args.log_level, path=args.log)
    if args.postmortem_dir:
        obs.enable_tracing()
        obs.enable_flight(
            directory=args.postmortem_dir,
            config={"command": "serve", "snapshot": args.snapshot},
        )
    slo_pack = None
    if args.slo_pack:
        from repro.obs import slo as obs_slo

        slo_pack = (
            obs_slo.default_pack()
            if args.slo_pack == "default"
            else obs_slo.load_pack(args.slo_pack)
        )
    publisher = SnapshotPublisher(
        _snapshot_source(args.snapshot), cache_size=args.cache_size
    )
    with RuleServer(
        publisher, host=args.host, port=args.port, policy=policy,
        slo_pack=slo_pack,
    ) as server:
        server.start()
        host, port = server.address
        print(
            f"# serving {publisher.snapshot.n_rules} rules "
            f"(snapshot v{publisher.version}) on http://{host}:{port}",
            flush=True,
        )
        limits = []
        if policy.max_inflight is not None:
            limits.append(f"max-inflight={policy.max_inflight}")
        if policy.rate is not None:
            limits.append(f"rate={policy.rate:g}/s burst={server.shedder.burst}")
        if policy.deadline_seconds is not None:
            limits.append(f"deadline={policy.deadline_seconds * 1000:g}ms")
        if limits:
            print("# admission: " + " ".join(limits), flush=True)
        if slo_pack is not None:
            print(f"# slo pack: {len(slo_pack)} rule(s) on /healthz", flush=True)
        print("# endpoints: /rules /healthz /metrics", flush=True)
        stop = threading.Event()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, lambda *_: stop.set())
        stop.wait()
    print("# shut down cleanly", file=sys.stderr)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Run ``slo check``: evaluate a rule pack, exit non-zero on violation.

    The metrics to judge come from exactly one of ``--metrics`` (a saved
    Prometheus text file, e.g. ``repro mine --metrics-out``) or ``--url``
    (a live server, scraped once).  The exit code is the report's
    :meth:`~repro.obs.slo.SLOReport.exit_code` under ``--fail-on``: 0
    while healthy, 1 once the worst status reaches the chosen severity —
    which is what lets CI gate on SLO compliance.
    """
    from repro.obs import slo as obs_slo

    if (args.metrics is None) == (args.url is None):
        raise ValueError("give exactly one of --metrics or --url")
    if args.metrics is not None:
        from pathlib import Path

        text = Path(args.metrics).read_text(encoding="utf-8")
    else:
        from urllib.request import urlopen

        url = args.url.rstrip("/")
        if not url.endswith("/metrics"):
            url = f"{url}/metrics"
        with urlopen(url, timeout=10) as response:  # noqa: S310
            text = response.read().decode("utf-8")
    if args.pack in (None, "default"):
        rules = obs_slo.default_pack()
    else:
        rules = obs_slo.load_pack(args.pack)
    report = obs_slo.evaluate_pack(rules, obs_slo.parse_prometheus(text))
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return report.exit_code(fail_on=args.fail_on)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch ``bench run|compare|report`` (benchmark telemetry)."""
    from repro.obs import bench as obs_bench
    from repro.obs import regress as obs_regress

    if args.bench_command == "run":
        if args.repeat < 1:
            raise ValueError("--repeat must be at least 1")
        for _ in range(args.repeat):
            record, path = obs_bench.run_scenario(
                args.scenario,
                scale=args.scale,
                root=args.root,
                trace_malloc=args.trace_malloc,
            )
            rss = (
                f", peak rss {record.peak_rss_bytes / 2**20:.1f}MB"
                if record.peak_rss_bytes
                else ""
            )
            traced = (
                f", tracemalloc peak {record.tracemalloc_peak_bytes / 2**20:.1f}MB"
                if record.tracemalloc_peak_bytes
                else ""
            )
            print(
                f"# {args.scenario}: {record.wall_seconds:.3f}s{rss}{traced} "
                f"@ {record.git_sha[:12]}{'*' if record.git_dirty else ''}"
            )
            print(f"# appended to {path}")
        return 0

    if args.bench_command == "compare":
        policy = obs_regress.RegressionPolicy(
            tolerance=args.tolerance,
            rss_tolerance=args.rss_tolerance,
            window=args.window,
        )
        # Explicitly-requested scenarios must have usable trajectories:
        # a missing, empty, or corrupt file exits 3 with a rerun hint
        # instead of a traceback (or a silently-green "no-baseline").
        for name in args.scenario or ():
            try:
                records = obs_bench.load_trajectory(name, args.root)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                print(
                    f"hint: re-record it with "
                    f"`repro bench run --scenario {name}`",
                    file=sys.stderr,
                )
                return 3
            if not records:
                print(
                    f"error: no benchmark records for scenario {name!r}",
                    file=sys.stderr,
                )
                print(
                    f"hint: record some with "
                    f"`repro bench run --scenario {name}`",
                    file=sys.stderr,
                )
                return 3
        scenarios = args.scenario or obs_bench.list_scenarios(args.root)
        if not scenarios:
            print("# no BENCH_*.json trajectories found; run `repro bench run` first")
            return 0
        failed = False
        for name in scenarios:
            comparison = obs_regress.compare_scenario(name, args.root, policy)
            print(comparison.describe())
            failed = failed or comparison.has_regression
        if failed and args.strict:
            print("# regression detected (strict mode)", file=sys.stderr)
            return 1
        return 0

    # report
    from repro.report.dashboard import render_bench_report, write_report

    scenarios = obs_bench.list_scenarios(args.root)
    trajectories = {
        name: obs_bench.load_trajectory(name, args.root) for name in scenarios
    }
    comparisons = {
        name: obs_regress.compare_scenario(name, args.root) for name in scenarios
    }
    document = render_bench_report(trajectories, comparisons)
    write_report(document, args.out)
    print(f"# dashboard: {len(scenarios)} scenario(s) written to {args.out}")
    return 0


_COMMANDS = {
    "mine": _cmd_mine,
    "baseline": _cmd_baseline,
    "generate": _cmd_generate,
    "describe": _cmd_describe,
    "snapshot": _cmd_snapshot,
    "serve": _cmd_serve,
    "slo": _cmd_slo,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    ``REPRO_FAIL_AT`` (see :func:`repro.resilience.faults.install_from_env`)
    arms fault points before the command runs — the CI crash drill's
    switch.  A command failing with a typed error still gets a postmortem
    bundle when the flight recorder is armed, then exits 1 with a
    one-line message.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    faults.install_from_env()
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, ReproError) as error:
        from repro.obs import flight as obs_flight

        obs_flight.dump_on_error("cli-error", error)
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Worker pools and shared-memory segments are owned by context
        # managers inside the miner, so they are already released by the
        # time the interrupt unwinds to here; output files are written
        # atomically, so none is left half-finished.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
