"""Docstring-coverage gate over the library's public surface.

Walks every module under ``src/repro`` and fails (exit 1) if any public
module, class, function or method lacks a docstring.  "Public" means the
name and every ancestor scope avoids a leading underscore; ``__init__``
and other dunders are exempt, as are trivial overrides whose body is just
``pass``/``...`` under an already-documented parent method.

Run from the repository root (CI runs it on every push):

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def is_public(name: str) -> bool:
    """Public = no leading underscore (dunders are handled separately)."""
    return not name.startswith("_")


def walk_definitions(
    node: ast.AST, scope: Tuple[str, ...] = ()
) -> Iterator[Tuple[Tuple[str, ...], ast.AST]]:
    """Yield ``(qualified_scope, definition)`` for public defs under ``node``.

    Descends into classes (for methods and nested classes) but not into
    function bodies — a closure is an implementation detail, not API.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.ClassDef, *FunctionNode)):
            if not is_public(child.name):
                continue
            qualified = scope + (child.name,)
            yield qualified, child
            if isinstance(child, ast.ClassDef):
                yield from walk_definitions(child, qualified)


def missing_docstrings(path: Path) -> List[str]:
    """Fully-qualified public names in ``path`` that lack a docstring."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing = []
    relative = path.relative_to(SRC.parent)
    module_name = ".".join(relative.with_suffix("").parts)
    if module_name.endswith(".__init__"):
        module_name = module_name[: -len(".__init__")]
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}:1: module {module_name}")
    for qualified, node in walk_definitions(tree):
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "def"
            missing.append(
                f"{path}:{node.lineno}: {kind} {module_name}.{'.'.join(qualified)}"
            )
    return missing


def main() -> int:
    """Scan the tree; print offenders and return a process exit code."""
    failures: List[str] = []
    n_files = 0
    for path in sorted(SRC.rglob("*.py")):
        n_files += 1
        failures.extend(missing_docstrings(path))
    if failures:
        print(f"{len(failures)} public definition(s) lack docstrings:\n")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"docstring coverage OK: {n_files} files, no gaps")
    return 0


if __name__ == "__main__":
    sys.exit(main())
