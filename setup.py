"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose pip cannot
build PEP 517 editable wheels (no ``wheel`` package available); all real
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Distance-based association rules over interval data "
        "(Miller & Yang, SIGMOD 1997) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
