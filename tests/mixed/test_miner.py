"""Tests for mixed interval + qualitative DAR mining (Section 8 extension)."""

import numpy as np
import pytest

from repro.core.config import DARConfig
from repro.data.relation import AttributePartition, Relation, Schema
from repro.mixed.cluster import MixedCluster
from repro.mixed.features import NominalFeature
from repro.mixed.miner import MixedDARConfig, MixedDARMiner


def make_mixed_relation(n_per_mode=150, seed=5):
    """Three job modes with characteristic ages and salaries."""
    rng = np.random.default_rng(seed)
    modes = [("dba", 30, 42_000), ("mgr", 45, 90_000), ("qa", 25, 35_000)]
    jobs, ages, salaries = [], [], []
    for job, age_center, salary_center in modes:
        jobs += [job] * n_per_mode
        ages.append(rng.normal(age_center, 1.2, n_per_mode))
        salaries.append(rng.normal(salary_center, 1_200, n_per_mode))
    order = rng.permutation(3 * n_per_mode)
    schema = Schema.of(job="nominal", age="interval", salary="interval")
    return Relation(
        schema,
        {
            "job": [jobs[i] for i in order],
            "age": np.concatenate(ages)[order],
            "salary": np.concatenate(salaries)[order],
        },
    )


@pytest.fixture(scope="module")
def result():
    return MixedDARMiner().mine_mixed(make_mixed_relation())


class TestConfig:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            MixedDARConfig(nominal_density=1.5)
        with pytest.raises(ValueError):
            MixedDARConfig(nominal_degree=-0.1)


class TestMixedCluster:
    def test_own_image_required(self):
        with pytest.raises(ValueError, match="own image"):
            MixedCluster(
                uid=1,
                partition=AttributePartition("x", ("x",)),
                images={"y": NominalFeature.of_value("a")},
            )

    def test_nominal_cluster_properties(self):
        cluster = MixedCluster(
            uid=1,
            partition=AttributePartition("job", ("job",), metric="discrete"),
            images={"job": NominalFeature({"dba": 5})},
            value="dba",
        )
        assert cluster.is_nominal
        assert cluster.n == 5
        assert cluster.diameter == 0.0  # value-pure, Theorem 5.1
        with pytest.raises(TypeError):
            cluster.centroid
        with pytest.raises(TypeError):
            cluster.bounding_box()
        assert "job=dba" in str(cluster)


class TestMining:
    def test_nominal_partitions_discovered(self, result):
        assert "job" in result.clusters
        values = {cluster.value for cluster in result.clusters["job"]}
        assert values == {"dba", "mgr", "qa"}

    def test_nominal_clusters_are_pure(self, result):
        for cluster in result.clusters["job"]:
            assert cluster.diameter == 0.0

    def test_interval_to_nominal_rules(self, result):
        """salary~90K => job=mgr with degree ~0 (confidence ~1)."""
        hits = [
            rule
            for rule in result.rules
            if any(
                c.partition.name == "salary"
                and not c.is_nominal
                and abs(float(c.centroid[0]) - 90_000) < 5_000
                for c in rule.antecedent
            )
            and any(
                c.is_nominal and c.value == "mgr" for c in rule.consequent
            )
        ]
        assert hits
        assert min(rule.degree for rule in hits) < 0.05

    def test_nominal_to_interval_rules(self, result):
        """job=mgr => salary~90K."""
        hits = [
            rule
            for rule in result.rules
            if any(c.is_nominal and c.value == "mgr" for c in rule.antecedent)
            and any(
                c.partition.name == "salary"
                and abs(float(c.centroid[0]) - 90_000) < 5_000
                for c in rule.consequent
            )
        ]
        assert hits

    def test_degrees_respect_nominal_threshold(self, result):
        for rule in result.rules:
            for consequent in rule.consequent:
                if consequent.is_nominal:
                    assert (
                        rule.degrees[consequent.uid]
                        <= result.degree_thresholds["job"] + 1e-9
                    )

    def test_rule_sides_partition_disjoint(self, result):
        for rule in result.rules:
            names = [c.partition.name for c in rule.antecedent + rule.consequent]
            assert len(names) == len(set(names))

    def test_infrequent_values_excluded(self):
        relation = make_mixed_relation(n_per_mode=100)
        # Add two stray job values below any sane frequency bar.
        stray = Relation(
            relation.schema,
            {
                "job": ["intern", "ceo"],
                "age": [22.0, 60.0],
                "salary": [10_000.0, 500_000.0],
            },
        )
        combined = relation.concat(stray)
        result = MixedDARMiner().mine_mixed(combined)
        values = {cluster.value for cluster in result.clusters["job"]}
        assert "intern" not in values and "ceo" not in values

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            MixedDARMiner().mine_mixed(
                Relation.empty(Schema.of(a="interval", b="nominal"))
            )

    def test_non_nominal_attribute_rejected(self):
        relation = make_mixed_relation(n_per_mode=20)
        with pytest.raises(ValueError, match="not nominal"):
            MixedDARMiner().mine_mixed(relation, nominal_attributes=["age"])

    def test_interval_only_still_works(self):
        relation = make_mixed_relation(n_per_mode=100)
        result = MixedDARMiner().mine_mixed(relation, nominal_attributes=[])
        assert "job" not in result.clusters
        assert result.rules  # age <-> salary rules survive

    def test_strict_nominal_degree_prunes_rules(self):
        relation = make_mixed_relation(n_per_mode=100)
        loose = MixedDARMiner(MixedDARConfig(nominal_degree=0.5)).mine_mixed(relation)
        strict = MixedDARMiner(MixedDARConfig(nominal_degree=0.01)).mine_mixed(relation)

        def nominal_consequent_rules(result):
            return [
                rule
                for rule in result.rules
                if any(c.is_nominal for c in rule.consequent)
            ]

        assert len(nominal_consequent_rules(strict)) <= len(
            nominal_consequent_rules(loose)
        )

    def test_theorem52_reading_of_degree(self, result):
        """degree toward a nominal consequent == 1 - classical confidence."""
        relation = make_mixed_relation()
        jobs = relation.column("job")
        salaries = relation.column("salary")
        for rule in result.rules:
            if len(rule.antecedent) != 1 or len(rule.consequent) != 1:
                continue
            (antecedent,) = rule.antecedent
            (consequent,) = rule.consequent
            if antecedent.partition.name != "salary" or not consequent.is_nominal:
                continue
            lo = float(antecedent.centroid[0]) - 3 * 1_200
            hi = float(antecedent.centroid[0]) + 3 * 1_200
            mask = (salaries >= lo) & (salaries <= hi)
            if not mask.any():
                continue
            confidence = (jobs[mask] == consequent.value).mean()
            # The cluster's tuple set approximates the mask; allow slack.
            assert rule.degree == pytest.approx(1 - confidence, abs=0.15)


class TestTaxonomyLevels:
    """Generalized virtual partitions from a taxonomy ([SA95] levels)."""

    @staticmethod
    def make_product_relation(n_per_brand=80, seed=5):
        from repro.classic.taxonomy import Taxonomy

        rng = np.random.default_rng(seed)
        brands = [
            ("honda", 40_000), ("ford", 41_000),
            ("bmx", 25_000), ("road", 26_000),
        ]
        products, pays = [], []
        for brand, pay_center in brands:
            products += [brand] * n_per_brand
            pays.append(rng.normal(pay_center, 800, n_per_brand))
        order = rng.permutation(4 * n_per_brand)
        relation = Relation(
            Schema.of(product="nominal", pay="interval"),
            {
                "product": [products[i] for i in order],
                "pay": np.concatenate(pays)[order],
            },
        )
        taxonomy = Taxonomy(
            {"honda": "car", "ford": "car", "bmx": "bike", "road": "bike"}
        )
        return relation, taxonomy

    def test_generalized_partition_created(self):
        relation, taxonomy = self.make_product_relation()
        result = MixedDARMiner().mine_mixed(relation, taxonomies={"product": taxonomy})
        assert "product@1" in result.clusters
        values = {c.value for c in result.clusters["product@1"]}
        assert values == {"car", "bike"}

    def test_ancestor_clusters_aggregate_counts(self):
        relation, taxonomy = self.make_product_relation()
        result = MixedDARMiner().mine_mixed(relation, taxonomies={"product": taxonomy})
        car = next(c for c in result.clusters["product@1"] if c.value == "car")
        assert car.n == 160  # honda + ford

    def test_generalized_rules_stronger(self):
        """pay ~ 40-41K implies 'car' perfectly but each brand only ~50%."""
        relation, taxonomy = self.make_product_relation()
        result = MixedDARMiner().mine_mixed(relation, taxonomies={"product": taxonomy})
        car_degrees = [
            rule.degree
            for rule in result.rules
            if any(c.value == "car" for c in rule.consequent)
        ]
        brand_degrees = [
            rule.degree
            for rule in result.rules
            if any(c.value in ("honda", "ford") for c in rule.consequent)
        ]
        assert car_degrees and brand_degrees
        assert min(car_degrees) < min(brand_degrees)

    def test_no_cross_level_rules(self):
        """No rule may relate product and product@1 clusters."""
        relation, taxonomy = self.make_product_relation()
        result = MixedDARMiner().mine_mixed(relation, taxonomies={"product": taxonomy})
        for rule in result.rules:
            bases = [
                c.partition.name.split("@")[0]
                for c in rule.antecedent + rule.consequent
            ]
            assert len(bases) == len(set(bases))

    def test_taxonomy_for_unknown_attribute_rejected(self):
        from repro.classic.taxonomy import Taxonomy

        relation, taxonomy = self.make_product_relation()
        with pytest.raises(ValueError, match="not a mined"):
            MixedDARMiner().mine_mixed(
                relation, taxonomies={"missing": taxonomy}
            )

    def test_no_taxonomy_unchanged(self):
        relation, _ = self.make_product_relation()
        result = MixedDARMiner().mine_mixed(relation)
        assert "product@1" not in result.clusters


class TestMixedSupportCounting:
    def test_counts_populated_and_sane(self):
        relation = make_mixed_relation(n_per_mode=100)
        config = MixedDARConfig(base=DARConfig(count_rule_support=True))
        result = MixedDARMiner(config).mine_mixed(relation)
        assert result.rules
        for rule in result.rules:
            assert rule.support_count is not None
            assert 0 <= rule.support_count <= len(relation)

    def test_strong_mixed_rule_support_matches_mode(self):
        """salary~90K => job=mgr should be supported by ~the whole mode."""
        relation = make_mixed_relation(n_per_mode=100)
        config = MixedDARConfig(base=DARConfig(count_rule_support=True))
        result = MixedDARMiner(config).mine_mixed(relation)
        hits = [
            rule
            for rule in result.rules
            if len(rule.antecedent) == 1
            and rule.antecedent[0].partition.name == "salary"
            and abs(float(rule.antecedent[0].centroid[0]) - 90_000) < 5_000
            and any(c.is_nominal and c.value == "mgr" for c in rule.consequent)
        ]
        assert hits
        assert max(rule.support_count or 0 for rule in hits) >= 80


class TestMixedClusterIntervalKind:
    def test_interval_bounding_box_from_moments(self):
        from repro.birch.features import CF

        cf = CF.of_points(np.array([[1.0], [3.0]]))
        cluster = MixedCluster(
            uid=1,
            partition=AttributePartition("x", ("x",)),
            images={"x": cf},
        )
        lo, hi = cluster.bounding_box()
        assert lo[0] < 2.0 < hi[0]  # centroid +- rms radius brackets the mean
        assert not cluster.is_nominal
        assert "x~[2]" in str(cluster)

    def test_image_diameter_dispatch(self):
        from repro.birch.features import CF

        cluster = MixedCluster(
            uid=2,
            partition=AttributePartition("x", ("x",)),
            images={
                "x": CF.of_points(np.array([[0.0], [4.0]])),
                "label": NominalFeature.of_values(["a", "b"]),
            },
        )
        assert cluster.image_diameter("x") == pytest.approx(4.0)
        assert cluster.image_diameter("label") == pytest.approx(1.0)

    def test_unknown_image_raises(self):
        cluster = MixedCluster(
            uid=3,
            partition=AttributePartition("j", ("j",), metric="discrete"),
            images={"j": NominalFeature.of_value("a")},
            value="a",
        )
        with pytest.raises(KeyError, match="available"):
            cluster.image("nope")
