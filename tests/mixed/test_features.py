"""Tests for NominalFeature: additivity and 0/1-metric statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interest import nominal_cluster_degree, nominal_cluster_diameter
from repro.mixed.features import NominalFeature

value_lists = st.lists(st.sampled_from("abcde"), min_size=1, max_size=25)


class TestConstruction:
    def test_of_values_counts(self):
        feature = NominalFeature.of_values(["a", "b", "a"])
        assert feature.n == 3
        assert feature.counts == {"a": 2, "b": 1}

    def test_of_value_singleton(self):
        feature = NominalFeature.of_value("x")
        assert feature.n == 1 and feature.counts == {"x": 1}

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            NominalFeature({"a": -1})

    def test_copy_independent(self):
        a = NominalFeature.of_values(["a"])
        b = a.copy()
        b.add_value("a")
        assert a.n == 1 and b.n == 2


class TestAdditivity:
    @given(left=value_lists, right=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_union(self, left, right):
        merged = NominalFeature.of_values(left).merged(NominalFeature.of_values(right))
        direct = NominalFeature.of_values(left + right)
        assert merged.counts == direct.counts
        assert merged.n == direct.n

    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_batch(self, values):
        incremental = NominalFeature()
        for value in values:
            incremental.add_value(value)
        assert incremental.counts == NominalFeature.of_values(values).counts


class TestDiameter:
    def test_pure_is_zero(self):
        assert NominalFeature.of_values(["a"] * 7).diameter == 0.0

    def test_singleton_is_zero(self):
        assert NominalFeature.of_value("a").diameter == 0.0

    def test_two_distinct_values(self):
        # Pairs: (a,b) and (b,a) of 2 ordered pairs -> diameter 1.
        assert NominalFeature.of_values(["a", "b"]).diameter == 1.0

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_raw_computation(self, values):
        """Histogram formula == the raw Eq. 2 computation used elsewhere."""
        by_histogram = NominalFeature.of_values(values).diameter
        by_raw = nominal_cluster_diameter(values)
        assert by_histogram == pytest.approx(by_raw, abs=1e-12)

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_theorem51_iff(self, values):
        feature = NominalFeature.of_values(values)
        assert (feature.diameter == 0.0) == (len(set(values)) == 1)


class TestD2:
    def test_identical_pure_sets(self):
        a = NominalFeature.of_values(["x"] * 3)
        assert a.d2(a) == 0.0

    def test_disjoint_sets(self):
        a = NominalFeature.of_values(["x"])
        b = NominalFeature.of_values(["y", "z"])
        assert a.d2(b) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NominalFeature().d2(NominalFeature.of_value("a"))

    @given(left=value_lists, right=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_raw_computation(self, left, right):
        by_histogram = NominalFeature.of_values(right).d2(
            NominalFeature.of_values(left)
        )
        by_raw = nominal_cluster_degree(left, right)
        assert by_histogram == pytest.approx(by_raw, abs=1e-12)

    @given(left=value_lists, right=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_symmetric(self, left, right):
        a = NominalFeature.of_values(left)
        b = NominalFeature.of_values(right)
        assert a.d2(b) == pytest.approx(b.d2(a))


class TestModeAndPurity:
    def test_mode(self):
        assert NominalFeature.of_values(["a", "b", "b"]).mode() == "b"

    def test_mode_tie_deterministic(self):
        assert NominalFeature.of_values(["a", "b"]).mode() == "a"

    def test_purity(self):
        assert NominalFeature.of_values(["a", "a", "b", "c"]).purity() == 0.5

    def test_empty_mode_rejected(self):
        with pytest.raises(ValueError):
            NominalFeature().mode()
