"""Tests for multi-attribute partitions (Section 5.2's latitude/longitude case).

"If a semantically meaningful distance metric across a set of attributes
is available, we consider those attributes together and apply clustering
to the set of attributes."  These tests mine with a 2-d geo partition and
verify clusters, images and rules all handle dimension > 1.
"""

import numpy as np
import pytest

from repro.core.config import DARConfig
from repro.core.miner import DARMiner
from repro.data.relation import AttributePartition, Relation, Schema

CITIES = [
    # (lat, lon, risk-center)
    (40.7, -74.0, 9.0),   # dense urban, high risk
    (44.5, -89.5, 2.0),   # rural, low risk
    (33.4, -112.1, 5.0),  # desert metro, medium risk
]


def make_geo_relation(n_per_city=120, seed=23):
    rng = np.random.default_rng(seed)
    lats, lons, risks = [], [], []
    for lat, lon, risk in CITIES:
        lats.append(rng.normal(lat, 0.15, n_per_city))
        lons.append(rng.normal(lon, 0.15, n_per_city))
        risks.append(rng.normal(risk, 0.4, n_per_city))
    order = rng.permutation(len(CITIES) * n_per_city)
    schema = Schema.of(lat="interval", lon="interval", risk="interval")
    return Relation(
        schema,
        {
            "lat": np.concatenate(lats)[order],
            "lon": np.concatenate(lons)[order],
            "risk": np.concatenate(risks)[order],
        },
    )


GEO_PARTITIONS = [
    AttributePartition("geo", ("lat", "lon")),
    AttributePartition("risk", ("risk",)),
]


@pytest.fixture(scope="module")
def result():
    relation = make_geo_relation()
    return DARMiner(DARConfig(count_rule_support=True)).mine(relation, GEO_PARTITIONS)


class TestMultidimClustering:
    def test_geo_clusters_are_two_dimensional(self, result):
        for cluster in result.frequent_clusters["geo"]:
            assert cluster.dimension == 2
            assert cluster.centroid.shape == (2,)

    def test_three_cities_recovered(self, result):
        clusters = result.frequent_clusters["geo"]
        assert len(clusters) == 3
        found = {
            min(
                range(len(CITIES)),
                key=lambda i: abs(cluster.centroid[0] - CITIES[i][0])
                + abs(cluster.centroid[1] - CITIES[i][1]),
            )
            for cluster in clusters
        }
        assert found == {0, 1, 2}

    def test_bounding_boxes_cover_both_axes(self, result):
        for cluster in result.frequent_clusters["geo"]:
            lo, hi = cluster.bounding_box()
            assert lo.shape == hi.shape == (2,)
            assert np.all(lo <= hi)

    def test_cross_images_match_dimension(self, result):
        geo = result.frequent_clusters["geo"][0]
        assert geo.image("risk").dimension == 1
        risk = result.frequent_clusters["risk"][0]
        assert risk.image("geo").dimension == 2


class TestMultidimRules:
    def test_geo_to_risk_rules_found(self, result):
        rules = [
            rule
            for rule in result.rules
            if {c.partition.name for c in rule.antecedent} == {"geo"}
            and {c.partition.name for c in rule.consequent} == {"risk"}
        ]
        assert len(rules) >= 3  # each city implies its risk band

    def test_city_risk_pairing_correct(self, result):
        """The urban cluster must pair with the high-risk cluster."""
        urban_rules = [
            rule
            for rule in result.rules
            if any(
                c.partition.name == "geo" and abs(c.centroid[0] - 40.7) < 0.5
                for c in rule.antecedent
            )
            and any(c.partition.name == "risk" for c in rule.consequent)
        ]
        assert urban_rules
        best = min(urban_rules, key=lambda rule: rule.degree)
        risk_cluster = best.consequent[0]
        assert abs(risk_cluster.centroid[0] - 9.0) < 1.0

    def test_support_counted_on_multidim(self, result):
        for rule in result.rules:
            assert rule.support_count is not None
