"""Tests for the Cluster wrapper and image distances."""

import numpy as np
import pytest

from repro.birch.features import ACF
from repro.core.cluster import CLUSTER_METRICS, Cluster, image_distance
from repro.data.relation import AttributePartition


def make_cluster(uid, x_points, cross=None, partition_name="x"):
    x = np.asarray(x_points, dtype=float).reshape(len(x_points), -1)
    cross_arrays = {
        name: np.asarray(values, dtype=float).reshape(len(values), -1)
        for name, values in (cross or {}).items()
    }
    acf = ACF.of_points(x, cross_arrays)
    partition = AttributePartition(partition_name, tuple(f"{partition_name}{i}" for i in range(x.shape[1])))
    return Cluster(uid=uid, partition=partition, acf=acf)


class TestClusterBasics:
    def test_counts_and_dimension(self):
        cluster = make_cluster(1, [[1.0, 2.0], [3.0, 4.0]])
        assert cluster.n == 2
        assert cluster.dimension == 2

    def test_centroid_and_diameter(self):
        cluster = make_cluster(1, [[0.0], [4.0]])
        assert cluster.centroid[0] == 2.0
        assert cluster.diameter == pytest.approx(4.0)

    def test_bounding_box(self):
        cluster = make_cluster(1, [[0.0, 5.0], [2.0, 1.0]])
        lo, hi = cluster.bounding_box()
        assert list(lo) == [0.0, 1.0]
        assert list(hi) == [2.0, 5.0]

    def test_identity_by_uid(self):
        a = make_cluster(1, [[0.0]])
        b = make_cluster(1, [[99.0]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_cluster(2, [[0.0]])

    def test_str_mentions_bounds_and_count(self):
        cluster = make_cluster(3, [[1.0], [2.0]])
        text = str(cluster)
        assert "n=2" in text and "C3" in text


class TestImages:
    def test_own_image_is_primary_cf(self):
        cluster = make_cluster(1, [[1.0]], cross={"y": [[9.0]]})
        assert cluster.image("x") is cluster.acf.cf
        assert cluster.image("y").ls[0] == 9.0

    def test_image_diameter_of_cross(self):
        cluster = make_cluster(1, [[0.0], [0.1]], cross={"y": [[0.0], [10.0]]})
        assert cluster.image_diameter("y") == pytest.approx(10.0)
        assert cluster.image_diameter("x") == pytest.approx(0.1)


class TestImageDistance:
    def setup_method(self):
        self.a = make_cluster(1, [[0.0], [2.0]], cross={"y": [[0.0], [0.0]]})
        self.b = make_cluster(2, [[10.0], [12.0]], cross={"y": [[5.0], [5.0]]}, partition_name="x")

    def test_d1_is_centroid_manhattan(self):
        assert image_distance(self.a, self.b, on="x", metric="d1") == pytest.approx(10.0)

    def test_d2_on_cross_image(self):
        assert image_distance(self.a, self.b, on="y", metric="d2") == pytest.approx(5.0)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="d1"):
            image_distance(self.a, self.b, on="x", metric="bogus")

    def test_metric_registry_contents(self):
        assert set(CLUSTER_METRICS) == {"d1", "d2"}
