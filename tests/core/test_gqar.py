"""Tests for the generalized quantitative association rule miner (Dfn 4.4)."""

import numpy as np
import pytest

from repro.core.gqar import GQARConfig, GQARMiner
from repro.data.relation import Relation, Schema
from repro.data.synthetic import make_clustered_relation


@pytest.fixture(scope="module")
def relation_and_truth():
    return make_clustered_relation(
        n_modes=3, points_per_mode=120, n_attributes=2,
        spread=0.8, separation=40.0, outlier_fraction=0.0, seed=13,
    )


class TestConfig:
    def test_invalid_support(self):
        with pytest.raises(ValueError):
            GQARConfig(min_support=1.5)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            GQARConfig(min_confidence=-0.5)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            GQARConfig(density_fraction=0.0)


class TestMining:
    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            GQARMiner().mine(Relation.empty(Schema.of(a="interval")))

    def test_mode_rules_recovered(self, relation_and_truth):
        """Each mode's a0-cluster should imply its a1-cluster with conf ~1."""
        relation, truth = relation_and_truth
        config = GQARConfig(min_support=0.2, min_confidence=0.8)
        result = GQARMiner(config).mine(relation)
        assert len(result.clusters["a0"]) == 3
        assert len(result.clusters["a1"]) == 3
        one_to_one = [r for r in result.rules if len(r.antecedent) == 1 and len(r.consequent) == 1]
        assert len(one_to_one) >= 6  # both directions for each of 3 modes
        assert all(rule.confidence >= 0.8 for rule in one_to_one)

    def test_supports_are_plausible(self, relation_and_truth):
        relation, _ = relation_and_truth
        result = GQARMiner(GQARConfig(min_support=0.2, min_confidence=0.5)).mine(relation)
        for rule in result.rules:
            assert 0.2 <= rule.support <= 1.0

    def test_labels_cover_all_tuples(self, relation_and_truth):
        relation, _ = relation_and_truth
        result = GQARMiner(GQARConfig(min_support=0.2)).mine(relation)
        for name, labels in result.labels.items():
            assert labels.shape == (len(relation),)
            assert labels.min() >= 0
            assert labels.max() < len(result.clusters[name])

    def test_labels_agree_with_ground_truth(self, relation_and_truth):
        """Cluster labels must be consistent with the generating modes."""
        relation, truth = relation_and_truth
        result = GQARMiner(GQARConfig(min_support=0.2)).mine(relation)
        labels = result.labels["a0"]
        for mode in range(truth.n_modes):
            mode_labels = labels[truth.mode_indices(mode)]
            # All tuples of one generating mode map to one discovered cluster.
            assert len(set(mode_labels.tolist())) == 1

    def test_infrequent_partition_omitted(self):
        """A partition with no frequent clusters drops out (Section 4.3.2)."""
        rng = np.random.default_rng(3)
        schema = Schema.of(dense="interval", scattered="interval")
        relation = Relation(
            schema,
            {
                "dense": np.concatenate([np.full(50, 1.0), np.full(50, 100.0)]),
                "scattered": rng.uniform(0, 1e6, size=100),
            },
        )
        config = GQARConfig(
            min_support=0.4, density_thresholds={"scattered": 1e-3, "dense": 5.0}
        )
        result = GQARMiner(config).mine(relation)
        assert "dense" in result.clusters
        assert "scattered" not in result.clusters


class TestItemsetBackendChoice:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown itemset backend"):
            GQARConfig(itemset_backend="fpgrowth")

    @pytest.mark.parametrize("method", ["pcy", "son", "toivonen"])
    def test_backends_agree_with_apriori(self, method, relation_and_truth):
        relation, _ = relation_and_truth
        reference = GQARMiner(
            GQARConfig(min_support=0.2, min_confidence=0.7)
        ).mine(relation)
        alternative = GQARMiner(
            GQARConfig(min_support=0.2, min_confidence=0.7, itemset_backend=method)
        ).mine(relation)
        assert sorted(map(str, alternative.rules)) == sorted(map(str, reference.rules))
