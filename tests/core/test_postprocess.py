"""Tests for rule post-processing: filtering, pruning, selection."""

import numpy as np
import pytest

from repro.birch.features import ACF
from repro.core.cluster import Cluster
from repro.core.postprocess import (
    filter_by_antecedent,
    filter_by_consequent,
    prune_redundant,
    select_rules,
)
from repro.core.rules import DistanceRule
from repro.data.relation import AttributePartition


def cluster(uid, name):
    acf = ACF.of_points(np.array([[float(uid)]]), {})
    return Cluster(uid=uid, partition=AttributePartition(name, (name,)), acf=acf)


A1 = cluster(1, "age")
A2 = cluster(2, "deps")
C1 = cluster(3, "claims")
C2 = cluster(4, "income")


def rule(antecedent, consequent, degree, support=None):
    return DistanceRule(
        antecedent=tuple(antecedent),
        consequent=tuple(consequent),
        degree=degree,
        support_count=support,
    )


class TestFilters:
    def test_filter_by_consequent(self):
        rules = [
            rule([A1], [C1], 0.1),
            rule([A1], [C2], 0.2),
            rule([A2], [C1, C2], 0.3),
        ]
        kept = filter_by_consequent(rules, ["claims"])
        assert len(kept) == 1
        assert kept[0].consequent == (C1,)

    def test_filter_by_consequent_multiple_targets(self):
        rules = [rule([A1], [C1, C2], 0.3)]
        assert filter_by_consequent(rules, ["claims", "income"]) == rules

    def test_filter_requires_targets(self):
        with pytest.raises(ValueError):
            filter_by_consequent([], [])

    def test_filter_by_antecedent(self):
        rules = [rule([A1], [C1], 0.1), rule([A1, A2], [C1], 0.2)]
        kept = filter_by_antecedent(rules, ["age"])
        assert kept == [rules[0]]


class TestPruneRedundant:
    def test_longer_weaker_rule_dropped(self):
        short = rule([A1], [C1], 0.1)
        long = rule([A1, A2], [C1], 0.2)  # superset antecedent, worse degree
        assert prune_redundant([long, short]) == [short]

    def test_longer_stronger_rule_kept(self):
        short = rule([A1], [C1], 0.3)
        long = rule([A1, A2], [C1], 0.1)  # superset but strictly stronger
        kept = prune_redundant([short, long])
        assert set(kept) == {short, long}

    def test_different_consequents_independent(self):
        a = rule([A1], [C1], 0.1)
        b = rule([A1, A2], [C2], 0.5)
        assert set(prune_redundant([a, b])) == {a, b}

    def test_equal_degree_prefers_shorter(self):
        short = rule([A1], [C1], 0.2)
        long = rule([A1, A2], [C1], 0.2)
        assert prune_redundant([long, short]) == [short]

    def test_output_sorted_by_degree(self):
        a = rule([A1], [C1], 0.5)
        b = rule([A2], [C2], 0.1)
        assert prune_redundant([a, b]) == [b, a]


class TestSelectRules:
    def test_max_degree(self):
        rules = [rule([A1], [C1], 0.1), rule([A2], [C1], 0.9)]
        assert select_rules(rules, max_degree=0.5) == [rules[0]]

    def test_top_k(self):
        rules = [rule([A1], [C1], 0.3), rule([A2], [C1], 0.1)]
        assert select_rules(rules, top_k=1)[0].degree == 0.1

    def test_top_k_validated(self):
        with pytest.raises(ValueError):
            select_rules([], top_k=0)

    def test_min_support_requires_counts(self):
        rules = [rule([A1], [C1], 0.1)]  # no support_count
        with pytest.raises(ValueError, match="count_rule_support"):
            select_rules(rules, min_support=5)

    def test_min_support_filters(self):
        rules = [
            rule([A1], [C1], 0.1, support=3),
            rule([A2], [C1], 0.2, support=50),
        ]
        assert select_rules(rules, min_support=10) == [rules[1]]

    def test_support_breaks_degree_ties(self):
        weak = rule([A1], [C1], 0.2, support=5)
        strong = rule([A2], [C1], 0.2, support=80)
        assert select_rules([weak, strong])[0] is strong
