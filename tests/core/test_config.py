"""Tests for DARConfig threshold resolution and validation."""

import pytest

from repro.birch.birch import BirchOptions
from repro.core.config import DARConfig


class TestValidation:
    def test_defaults_valid(self):
        DARConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frequency_fraction": 0.0},
            {"frequency_fraction": 1.5},
            {"density_fraction": 0.0},
            {"degree_factor": 0.0},
            {"phase2_leniency": 0.5},
            {"cluster_metric": "d3"},
            {"max_antecedent": 0},
            {"max_consequent": 0},
            {"max_antecedent_candidates": 0},
            {"pruning_diameter_factor": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DARConfig(**kwargs)


class TestThresholdResolution:
    def test_density_explicit_wins(self):
        config = DARConfig(density_thresholds={"x": 7.0})
        assert config.density_threshold("x", derived=1.0) == 7.0

    def test_density_falls_back_to_derived(self):
        config = DARConfig()
        assert config.density_threshold("x", derived=1.5) == 1.5

    def test_degree_default_scales_density(self):
        config = DARConfig(degree_factor=3.0)
        assert config.degree_threshold("y", density=2.0) == 6.0

    def test_degree_explicit_wins(self):
        config = DARConfig(degree_thresholds={"y": 0.25})
        assert config.degree_threshold("y", density=100.0) == 0.25

    def test_with_birch_replaces_only_phase1(self):
        config = DARConfig(degree_factor=5.0)
        new_birch = BirchOptions(initial_threshold=9.0)
        updated = config.with_birch(new_birch)
        assert updated.birch.initial_threshold == 9.0
        assert updated.degree_factor == 5.0
