"""Tests for DARConfig threshold resolution, constructors and shims."""

import pytest

from repro.birch.birch import BirchOptions
from repro.core import config as config_module
from repro.core.config import DARConfig


@pytest.fixture
def fresh_deprecations(monkeypatch):
    """Reset the warn-once registry so each test observes its own warning.

    Also clears ``REPRO_STRICT_DEPRECATIONS`` so the warn-path assertions
    hold even under CI's strict deprecation job.
    """
    monkeypatch.delenv(config_module.STRICT_DEPRECATIONS_ENV, raising=False)
    saved = set(config_module._WARNED_DEPRECATIONS)
    config_module._WARNED_DEPRECATIONS.clear()
    yield
    config_module._WARNED_DEPRECATIONS.clear()
    config_module._WARNED_DEPRECATIONS.update(saved)


class TestValidation:
    def test_defaults_valid(self):
        DARConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frequency_fraction": 0.0},
            {"frequency_fraction": 1.5},
            {"density_fraction": 0.0},
            {"degree_factor": 0.0},
            {"phase2_leniency": 0.5},
            {"metric": "d3"},
            {"phase2_engine": "turbo"},
            {"max_antecedent": 0},
            {"max_consequent": 0},
            {"max_antecedent_candidates": 0},
            {"pruning_diameter_factor": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DARConfig(**kwargs)


class TestThresholdResolution:
    def test_density_explicit_wins(self):
        config = DARConfig(density_thresholds={"x": 7.0})
        assert config.density_threshold("x", derived=1.0) == 7.0

    def test_density_falls_back_to_derived(self):
        config = DARConfig()
        assert config.density_threshold("x", derived=1.5) == 1.5

    def test_degree_default_scales_density(self):
        config = DARConfig(degree_factor=3.0)
        assert config.degree_threshold("y", density=2.0) == 6.0

    def test_degree_explicit_wins(self):
        config = DARConfig(degree_thresholds={"y": 0.25})
        assert config.degree_threshold("y", density=100.0) == 0.25

    def test_with_birch_replaces_only_phase1(self):
        config = DARConfig(degree_factor=5.0)
        new_birch = BirchOptions(initial_threshold=9.0)
        updated = config.with_birch(new_birch)
        assert updated.birch.initial_threshold == 9.0
        assert updated.degree_factor == 5.0


class TestFromMapping:
    def test_round_trips_plain_fields(self):
        config = DARConfig.from_mapping(
            {"frequency_fraction": 0.05, "metric": "d1", "phase2_engine": "scalar"}
        )
        assert config.frequency_fraction == 0.05
        assert config.metric == "d1"
        assert config.phase2_engine == "scalar"

    def test_nested_birch_mapping(self):
        config = DARConfig.from_mapping(
            {"birch": {"branching": 4, "leaf_capacity": 16}}
        )
        assert config.birch.branching == 4
        assert config.birch.leaf_capacity == 16

    def test_unknown_key_named_in_error(self):
        with pytest.raises(ValueError, match="densty_fraction"):
            DARConfig.from_mapping({"densty_fraction": 0.1})

    def test_unknown_birch_key_named_in_error(self):
        with pytest.raises(ValueError, match="branchin"):
            DARConfig.from_mapping({"birch": {"branchin": 4}})

    def test_invalid_value_still_validated(self):
        with pytest.raises(ValueError, match="frequency_fraction"):
            DARConfig.from_mapping({"frequency_fraction": 2.0})

    def test_cluster_metric_alias_accepted_with_warning(self, fresh_deprecations):
        with pytest.warns(DeprecationWarning, match="cluster_metric"):
            config = DARConfig.from_mapping({"cluster_metric": "d1"})
        assert config.metric == "d1"

    def test_alias_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            DARConfig.from_mapping({"cluster_metric": "d1", "metric": "d2"})


class TestWithThresholds:
    def test_sets_density_and_degree(self):
        config = DARConfig().with_thresholds(
            density={"x": 2.0}, degree={"y": 0.5}
        )
        assert config.density_thresholds == {"x": 2.0}
        assert config.degree_thresholds == {"y": 0.5}

    def test_merges_over_existing(self):
        config = DARConfig(density_thresholds={"x": 1.0, "y": 2.0})
        updated = config.with_thresholds(density={"y": 9.0})
        assert updated.density_thresholds == {"x": 1.0, "y": 9.0}

    def test_original_unchanged(self):
        config = DARConfig()
        config.with_thresholds(density={"x": 1.0})
        assert config.density_thresholds == {}

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_nonpositive_or_nonfinite_rejected_naming_partition(self, bad):
        with pytest.raises(ValueError, match="'salary'"):
            DARConfig().with_thresholds(density={"salary": bad})

    def test_no_arguments_rejected(self):
        with pytest.raises(ValueError, match="with_thresholds"):
            DARConfig().with_thresholds()

    def test_non_string_key_rejected(self):
        with pytest.raises(ValueError, match="partition names"):
            DARConfig().with_thresholds(degree={3: 1.0})


class TestClusterMetricShim:
    def test_constructor_alias_warns_once_and_forwards(self, fresh_deprecations):
        with pytest.warns(DeprecationWarning, match="cluster_metric"):
            config = DARConfig(cluster_metric="d1")
        assert config.metric == "d1"
        # Second use is silent: the shim warns once per process.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert DARConfig(cluster_metric="d1").metric == "d1"

    def test_property_alias_warns_once_and_forwards(self, fresh_deprecations):
        config = DARConfig(metric="d1")
        with pytest.warns(DeprecationWarning, match="cluster_metric"):
            assert config.cluster_metric == "d1"
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.cluster_metric == "d1"

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            DARConfig(metric="d2", cluster_metric="d1")

    def test_dataclass_machinery_unaffected(self, fresh_deprecations):
        from dataclasses import replace

        with pytest.warns(DeprecationWarning):
            config = DARConfig(cluster_metric="d1")
        assert replace(config, degree_factor=3.0).metric == "d1"


class TestStrictDeprecations:
    """REPRO_STRICT_DEPRECATIONS=1 turns every shim into a hard error."""

    @pytest.fixture(autouse=True)
    def strict(self, monkeypatch, fresh_deprecations):
        monkeypatch.setenv(config_module.STRICT_DEPRECATIONS_ENV, "1")

    def test_constructor_alias_raises(self):
        with pytest.raises(DeprecationWarning, match="cluster_metric"):
            DARConfig(cluster_metric="d1")

    def test_mapping_alias_raises(self):
        with pytest.raises(DeprecationWarning, match="cluster_metric"):
            DARConfig.from_mapping({"cluster_metric": "d1"})

    def test_property_alias_raises(self):
        config = DARConfig(metric="d1")
        with pytest.raises(DeprecationWarning, match="cluster_metric"):
            config.cluster_metric

    def test_raises_every_time_not_once(self):
        config = DARConfig(metric="d1")
        for _ in range(2):
            with pytest.raises(DeprecationWarning):
                config.cluster_metric

    def test_new_spelling_unaffected(self):
        assert DARConfig(metric="d1").metric == "d1"

    @pytest.mark.parametrize("value", ["", "0", "no", "off", "false"])
    def test_disabled_values_keep_warn_path(self, monkeypatch, value):
        monkeypatch.setenv(config_module.STRICT_DEPRECATIONS_ENV, value)
        with pytest.warns(DeprecationWarning):
            assert DARConfig(cluster_metric="d1").metric == "d1"
