"""Tests for rule-interest measures and the classical bridge (Thm 5.1/5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interest import (
    classical_rule_interest,
    confidence_from_degree,
    degree_from_confidence,
    distance_rule_interest,
    nominal_cluster_degree,
    nominal_cluster_diameter,
)
from repro.data.examples import FIG2_RULE, fig2_relations
from repro.data.relation import Relation, Schema


class TestTheorem51:
    """A non-empty cluster has 0/1-metric diameter 0 iff it is value-pure."""

    def test_pure_cluster_diameter_zero(self):
        assert nominal_cluster_diameter(["dba"] * 5) == 0.0

    def test_impure_cluster_diameter_positive(self):
        assert nominal_cluster_diameter(["dba", "mgr"]) > 0.0

    def test_singleton_diameter_zero(self):
        assert nominal_cluster_diameter(["dba"]) == 0.0

    @given(values=st.lists(st.sampled_from("abc"), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_iff_property(self, values):
        is_pure = len(set(values)) == 1
        diameter = nominal_cluster_diameter(values)
        assert (diameter == 0.0) == is_pure


class TestTheorem52:
    """A=a => B=b with confidence c iff C_A => C_B holds with degree 1-c."""

    def test_known_example(self):
        # 3 of 5 antecedent tuples have the consequent value.
        antecedent_b_values = ["x", "x", "x", "y", "z"]
        consequent_b_values = ["x", "x", "x"]
        degree = nominal_cluster_degree(antecedent_b_values, consequent_b_values)
        assert degree == pytest.approx(1.0 - 3 / 5)

    @given(
        n_match=st.integers(0, 10),
        n_miss=st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_for_all_confidences(self, n_match, n_miss):
        if n_match + n_miss == 0 or n_match == 0:
            return  # empty antecedent or empty consequent cluster
        antecedent = ["b"] * n_match + [f"other{i}" for i in range(n_miss)]
        consequent = ["b"] * n_match
        confidence = n_match / (n_match + n_miss)
        degree = nominal_cluster_degree(antecedent, consequent)
        assert degree == pytest.approx(degree_from_confidence(confidence))

    def test_conversions_are_inverse(self):
        for confidence in (0.0, 0.3, 1.0):
            assert confidence_from_degree(
                degree_from_confidence(confidence)
            ) == pytest.approx(confidence)

    def test_conversion_bounds_enforced(self):
        with pytest.raises(ValueError):
            degree_from_confidence(1.2)
        with pytest.raises(ValueError):
            confidence_from_degree(-0.1)


def rule1_masks(relation):
    jobs = relation.column("job")
    ages = relation.column("age")
    salaries = relation.column("salary")
    antecedent = (jobs == FIG2_RULE["job"]) & (ages == FIG2_RULE["age"])
    consequent = antecedent & (salaries == FIG2_RULE["salary"])
    return antecedent, consequent


class TestFigure2Semantics:
    def test_classical_measures_identical_on_r1_r2(self):
        r1, r2 = fig2_relations()
        for relation in (r1, r2):
            antecedent, consequent = rule1_masks(relation)
            support, confidence = classical_rule_interest(
                relation, antecedent, consequent
            )
            assert support == pytest.approx(0.5)
            assert confidence == pytest.approx(0.6)

    def test_degree_smaller_on_r2(self):
        """Goal 3: the distance-based measure ranks R2's rule stronger."""
        r1, r2 = fig2_relations()
        interests = []
        for relation in (r1, r2):
            antecedent, consequent = rule1_masks(relation)
            interests.append(
                distance_rule_interest(
                    relation, antecedent, consequent, consequent_attributes=["salary"]
                )
            )
        assert interests[1].degree < interests[0].degree
        assert interests[1].stronger_than(interests[0])

    def test_mask_length_validated(self):
        r1, _ = fig2_relations()
        with pytest.raises(ValueError):
            classical_rule_interest(r1, [True], [False])

    def test_empty_cluster_rejected_for_degree(self):
        r1, _ = fig2_relations()
        n = len(r1)
        with pytest.raises(ValueError, match="non-empty"):
            distance_rule_interest(
                r1, [False] * n, [True] * n, consequent_attributes=["salary"]
            )


class TestDegreeScalesWithDistance:
    def test_farther_consequent_values_weaker_rule(self):
        schema = Schema.of(x="interval", y="interval")

        def relation_with_strays(stray):
            return Relation(
                schema,
                {
                    "x": [1.0, 1.0, 1.0, 1.0],
                    "y": [10.0, 10.0, 10.0, stray],
                },
            )

        masks = ([True] * 4, [True, True, True, False])
        near = distance_rule_interest(
            relation_with_strays(12.0), *masks, consequent_attributes=["y"]
        )
        far = distance_rule_interest(
            relation_with_strays(500.0), *masks, consequent_attributes=["y"]
        )
        # Same support and confidence, but distance sees the difference.
        assert near.support == far.support
        assert near.confidence == far.confidence
        assert near.degree < far.degree
